#!/usr/bin/env bash
# Bench-trajectory comparison: warns (never fails) when a benchmark's median
# moved beyond a noise threshold between two results files. Consumes both
# the criterion aggregate (BENCH_results.json) and the TCP loadgen's latency
# artifact (SERVE_net_results.json) — the loadgen emits its p50/p99/p999/
# ns_per_req rows in the same `benchmarks` shape for exactly this reason.
#
# Usage: scripts/bench_compare.sh <previous.json> <current.json>
#
# Environment:
#   BENCH_NOISE_RATIO  relative change treated as noise (default 0.35 =
#                      ±35%). Set from the measured cross-baseline spread
#                      that `bench_history.sh` prints for the committed
#                      baselines (~three quarters of ids under 35%; the
#                      noisier tail is sub-100µs micro-benches at 3
#                      samples), not from guesswork — the original ±50%
#                      predates any second baseline and let real one-third
#                      regressions pass as noise. Both passes warn, never
#                      fail, so the tighter knob costs only occasional
#                      false-positive warnings on the micro ids.
#
# Each results file has the shape
#   {"schema_version":1,…,"benchmarks":[{"id":…,"median_ns":…},…]}
# (rows from builds that predate median_ns fall back to mean_ns).
#
# Exit code is always 0: this is a trend signal, not a gate. Regressions
# print GitHub warning annotations so they surface on the run summary.
set -u

prev="${1:?usage: bench_compare.sh <previous.json> <current.json>}"
curr="${2:?usage: bench_compare.sh <previous.json> <current.json>}"
ratio="${BENCH_NOISE_RATIO:-0.35}"

if ! [ -r "$prev" ] || ! [ -r "$curr" ]; then
  echo "bench_compare: nothing to compare (missing $prev or $curr)"
  exit 0
fi

jq -r -n --slurpfile prev "$prev" --slurpfile curr "$curr" --argjson noise "$ratio" '
  def metric: (.median_ns // .mean_ns);
  ($prev[0].benchmarks | map({key: .id, value: metric}) | from_entries) as $before
  | $curr[0].benchmarks[]
  | . as $row
  | ($before[$row.id] // null) as $old
  | ($row | metric) as $new
  | if $old == null or $old == 0 then
      "::notice::bench \($row.id): no previous median to compare"
    else
      (($new - $old) / $old) as $delta
      | if ($delta | fabs) > $noise then
          if $delta > 0 then
            "::warning::bench \($row.id): median regressed \($old) ns -> \($new) ns (+\(($delta * 100 * 10 | round) / 10)%)"
          else
            "::notice::bench \($row.id): median improved \($old) ns -> \($new) ns (\(($delta * 100 * 10 | round) / 10)%)"
          end
        else
          "bench \($row.id): \($old) ns -> \($new) ns (within ±\(($noise * 100 | round))% noise)"
        end
    end
' || echo "bench_compare: comparison failed (malformed results file?)"

exit 0
