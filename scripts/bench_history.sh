#!/usr/bin/env bash
# Bench-history trend: prints each benchmark's median trajectory across the
# baselines committed under bench/history/ plus a current results file, and
# warns (never fails) when the current median regressed beyond the noise
# threshold against the newest committed baseline.
#
# Companion to bench_compare.sh, which compares two artifacts from adjacent
# CI runs; this script tracks the long-run trajectory pinned in the
# repository itself, so a slow drift that stays inside the per-run noise
# band still surfaces. Baselines are date-stamped `BENCH_<date>.json` files
# in the criterion aggregate shape
#   {"schema_version":1,…,"benchmarks":[{"id":…,"median_ns":…},…]}
# (rows from builds that predate median_ns fall back to mean_ns); lexical
# file order is chronological order.
#
# Usage: scripts/bench_history.sh <current.json> [history-dir]
#
# Environment:
#   BENCH_NOISE_RATIO  relative change treated as noise (default 0.5),
#                      same knob as bench_compare.sh.
#
# Exit code is always 0: this is a trend signal, not a gate.
set -u

curr="${1:?usage: bench_history.sh <current.json> [history-dir]}"
dir="${2:-bench/history}"
ratio="${BENCH_NOISE_RATIO:-0.5}"

if ! [ -r "$curr" ]; then
  echo "bench_history: nothing to trend (missing $curr)"
  exit 0
fi

baselines=()
for file in "$dir"/BENCH_*.json; do
  [ -r "$file" ] && baselines+=("$file")
done
if [ "${#baselines[@]}" -eq 0 ]; then
  echo "bench_history: no committed baselines under $dir"
  exit 0
fi

jq -r -n --argjson noise "$ratio" '
  def metric: (.median_ns // .mean_ns);
  [inputs] as $runs
  | ($runs | length) as $count
  | $runs[$count - 1] as $now
  | $runs[$count - 2] as $newest
  | $now.benchmarks[]
  | .id as $id
  | metric as $new
  | ([$runs[]
      | ((first(.benchmarks[] | select(.id == $id)) | metric | tostring) // "-")
     ] | join(" -> ")) as $trajectory
  | (first($newest.benchmarks[] | select(.id == $id)) | metric) as $old
  | if $old == null or $old == 0 then
      "bench \($id): \($trajectory) ns (new benchmark, no committed baseline)"
    else
      (($new - $old) / $old) as $delta
      | if ($delta | fabs) > $noise and $delta > 0 then
          "::warning::bench \($id): median \($trajectory) ns (+\(($delta * 100 * 10 | round) / 10)% vs newest committed baseline)"
        else
          "bench \($id): \($trajectory) ns"
        end
    end
' "${baselines[@]}" "$curr" || echo "bench_history: trend failed (malformed results file?)"

exit 0
