#!/usr/bin/env bash
# Bench-history trend: prints each benchmark's median trajectory across the
# baselines committed under bench/history/ plus a current results file, and
# warns (never fails) when the current median regressed beyond the noise
# threshold against the newest committed baseline.
#
# Companion to bench_compare.sh, which compares two artifacts from adjacent
# CI runs; this script tracks the long-run trajectory pinned in the
# repository itself, so a slow drift that stays inside the per-run noise
# band still surfaces. Baselines are date-stamped `BENCH_<date>.json` files
# in the criterion aggregate shape
#   {"schema_version":1,…,"benchmarks":[{"id":…,"median_ns":…},…]}
# (rows from builds that predate median_ns fall back to mean_ns); lexical
# file order is chronological order.
#
# Usage: scripts/bench_history.sh <current.json> [history-dir]
#
# Environment:
#   BENCH_NOISE_RATIO  relative change treated as noise (default 0.35),
#                      same knob as bench_compare.sh. The default comes from
#                      the noise characterisation this script prints when two
#                      or more baselines are committed: across the first two
#                      quiet 3-sample baselines, ~three quarters of the ids
#                      spread under 35% while the tail (worst ~73%) is
#                      sub-100µs micro-benches whose 3-sample medians jitter.
#                      Both passes are warn-only, so the tighter knob trades
#                      occasional false-positive warnings on the micro ids
#                      for catching real drift the old ±50% hid (a genuine
#                      one-third slowdown used to pass as noise).
#
# Exit code is always 0: this is a trend signal, not a gate.
set -u

curr="${1:?usage: bench_history.sh <current.json> [history-dir]}"
dir="${2:-bench/history}"
ratio="${BENCH_NOISE_RATIO:-0.35}"

if ! [ -r "$curr" ]; then
  echo "bench_history: nothing to trend (missing $curr)"
  exit 0
fi

baselines=()
for file in "$dir"/BENCH_*.json; do
  [ -r "$file" ] && baselines+=("$file")
done
if [ "${#baselines[@]}" -eq 0 ]; then
  echo "bench_history: no committed baselines under $dir"
  exit 0
fi

# Noise characterisation: the per-id spread of the committed baselines
# themselves (the current results file is deliberately excluded — these are
# blessed runs of blessed commits, so their disagreement IS the runner
# noise). This is the evidence the BENCH_NOISE_RATIO default rests on:
# re-run after committing a new baseline and retune the knob if the
# summary's worst spread drifts toward it.
if [ "${#baselines[@]}" -ge 2 ]; then
  echo "bench_history: cross-baseline noise over ${#baselines[@]} committed baselines (threshold ±$ratio):"
  jq -r -n '
    def metric: (.median_ns // .mean_ns);
    [inputs] as $runs
    | [ ($runs | map(.benchmarks[].id) | unique)[] as $id
        | [$runs[] | (first(.benchmarks[] | select(.id == $id)) | metric)?
           | select(. != null and . > 0)] as $m
        | select(($m | length) >= 2)
        | {id: $id, n: ($m | length), lo: ($m | min), hi: ($m | max),
           spread: ((($m | max) - ($m | min)) / ($m | min))}
      ] as $rows
    | ($rows[]
       | "  noise \(.id): spread \((.spread * 1000 | round) / 10)% over \(.n) baselines (\(.lo) -> \(.hi) ns)"),
      (if ($rows | length) > 0 then
         "  noise summary: worst cross-baseline spread \(($rows | map(.spread) | max * 1000 | round) / 10)% across \($rows | length) ids"
       else
         "  noise summary: no id appears in two or more baselines"
       end)
  ' "${baselines[@]}" || echo "bench_history: noise pass failed (malformed baseline?)"
fi

jq -r -n --argjson noise "$ratio" '
  def metric: (.median_ns // .mean_ns);
  [inputs] as $runs
  | ($runs | length) as $count
  | $runs[$count - 1] as $now
  | $runs[$count - 2] as $newest
  | $now.benchmarks[]
  | .id as $id
  | metric as $new
  | ([$runs[]
      | ((first(.benchmarks[] | select(.id == $id)) | metric | tostring) // "-")
     ] | join(" -> ")) as $trajectory
  | (first($newest.benchmarks[] | select(.id == $id)) | metric) as $old
  | if $old == null or $old == 0 then
      "bench \($id): \($trajectory) ns (new benchmark, no committed baseline)"
    else
      (($new - $old) / $old) as $delta
      | if ($delta | fabs) > $noise and $delta > 0 then
          "::warning::bench \($id): median \($trajectory) ns (+\(($delta * 100 * 10 | round) / 10)% vs newest committed baseline)"
        else
          "bench \($id): \($trajectory) ns"
        end
    end
' "${baselines[@]}" "$curr" || echo "bench_history: trend failed (malformed results file?)"

exit 0
