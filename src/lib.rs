//! # MSPT Nanowire Decoder — facade crate
//!
//! This crate re-exports the public API of the workspace crates that together
//! reproduce *"Decoding Nanowire Arrays Fabricated with the Multi-Spacer
//! Patterning Technique"* (Ben Jamaa, Leblebici, De Micheli — DAC 2009).
//!
//! The individual crates are usable on their own; this facade exists so that
//! examples, integration tests and downstream users can depend on a single
//! crate.
//!
//! * [`codes`] — n-ary code spaces (tree, Gray, balanced Gray, hot, arranged hot)
//! * [`physics`] — threshold-voltage / doping device model and Gaussian statistics
//! * [`fabrication`] — MSPT pattern/doping/step matrices, fabrication complexity Φ and variability Σ
//! * [`crossbar`] — crossbar geometry, contact groups, yield and area models
//! * [`sim`] — the paper's Section 6 simulation platform, parameter sweeps,
//!   pluggable disturbance distributions and the work-sharded parallel
//!   execution engine
//! * [`serve`] — the layered serving stack over the engine's shared,
//!   bounded, single-flight report cache: a transport-agnostic `Handler`
//!   core with JSON and framed-TCP front ends (bounded-queue backpressure,
//!   typed load-shed, graceful draining shutdown) and a p50/p99/p999 TCP
//!   loadgen
//! * [`decoder`] — the top-level decoder design and optimisation API
//!
//! # Quickstart
//!
//! ```
//! use mspt_nanowire_decoder::decoder::{CodeSelection, DecoderDesign};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = DecoderDesign::builder()
//!     .code(CodeSelection::BalancedGray)
//!     .code_length(8)
//!     .nanowires_per_half_cave(20)
//!     .build()?;
//! let report = design.evaluate()?;
//! assert!(report.crossbar_yield > 0.0 && report.crossbar_yield <= 1.0);
//! # Ok(())
//! # }
//! ```

pub use crossbar_array as crossbar;
pub use decoder_sim as sim;
pub use device_physics as physics;
pub use mspt_decoder as decoder;
pub use mspt_fabrication as fabrication;
pub use mspt_serve as serve;
pub use nanowire_codes as codes;

/// Convenience prelude importing the most commonly used types.
pub mod prelude {
    pub use crate::codes::{CodeKind, CodeSequence, CodeSpec, CodeWord, LogicLevel};
    pub use crate::crossbar::{CrossbarSpec, LayoutRules};
    pub use crate::crossbar::{DefectMap, DefectModel};
    pub use crate::decoder::{CodeSelection, DecoderDesign, DesignReport};
    pub use crate::fabrication::{
        FabricationCost, PatternMatrix, StepDopingMatrix, VariabilityMatrix,
    };
    pub use crate::physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
    pub use crate::serve::{
        Handler, LatencyHistogram, NetClient, NetServer, NetServerHandle, ReportRequest,
        ReportServer, ServeConfig, ShedPolicy, WireError, WireReply,
    };
    pub use crate::sim::{
        CacheConfig, CacheStats, DefectConfig, DefectKind, DisturbanceKind, DisturbanceModel,
        EngineConfig, ExecutionEngine, ReportCache, SimConfig, SimulationPlatform, WireErrorKind,
    };
}
