//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` headers,
//!   doc-commented `#[test]` items and `pattern in strategy` arguments);
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//!   implemented for integer and float ranges, tuples and [`strategy::Just`];
//! * [`prop_oneof!`], [`arbitrary::any`], [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! **deterministic** (a fixed base seed per test case, so CI never flakes on
//! a rare draw) and there is **no shrinking** — a failing case panics with
//! the sampled values visible in the assertion message instead. When
//! crates.io becomes reachable the real proptest is a drop-in replacement
//! for everything exercised here.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the deterministic per-case RNG.

    pub use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` sampled cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies; deterministic per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        const BASE_SEED: u64 = 0x4d53_5054_2d44_4143; // "MSPT-DAC"

        /// The generator for the `case`-th run of a property.
        #[must_use]
        pub fn for_case(case: u32) -> Self {
            TestRng(StdRng::seed_from_u64(
                Self::BASE_SEED ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply draws a value from the deterministic test RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each sampled value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between heterogeneous strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .finish()
        }
    }

    impl<T> Union<T> {
        /// A union over `options`, each chosen with equal probability.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Boxes a strategy; used by the [`prop_oneof!`] expansion so type
    /// inference unifies the option types.
    ///
    /// [`prop_oneof!`]: crate::prop_oneof!
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type" strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy for the full domain of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy producing any value of type `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::ops::Range;

    /// Length specification for [`vec()`](fn@vec): a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Discards the current case when `condition` is false.
///
/// Real proptest resamples discarded cases; this stand-in simply skips them,
/// which thins the effective case count slightly but keeps determinism.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !($condition) {
            return;
        }
    };
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(
                    let $parm =
                        $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )+
                // One closure per case so `prop_assume!` can discard the
                // case with an early return.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Color {
        Red,
        Green,
    }

    fn color_strategy() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), Just(Color::Green)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples/patterns destructure.
        #[test]
        fn ranges_and_tuples(
            x in 3usize..9,
            y in 1.5f64..2.5,
            (a, b) in (0u8..=4, any::<u64>()),
            color in color_strategy(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1.5..2.5).contains(&y));
            prop_assert!(a <= 4);
            let _ = b;
            prop_assert!(color == Color::Red || color == Color::Green);
        }

        /// prop_flat_map builds dependent strategies; collection::vec sizes.
        #[test]
        fn flat_map_and_vec(
            rows in (1usize..4).prop_flat_map(|n| collection::vec(collection::vec(0u8..3, n), 2..5)),
        ) {
            prop_assert!((2..5).contains(&rows.len()));
            for row in &rows {
                prop_assert!(row.iter().all(|&d| d < 3));
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = (0usize..1000, 0.0f64..1.0);
        let a = Strategy::sample(&s, &mut crate::test_runner::TestRng::for_case(7));
        let b = Strategy::sample(&s, &mut crate::test_runner::TestRng::for_case(7));
        assert_eq!(a, b);
    }
}
