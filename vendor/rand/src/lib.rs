//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides the surface the workspace uses — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] for the standard distribution, and [`rngs::StdRng`] — backed
//! by xoshiro256++ with a SplitMix64 seeding sequence. The statistical
//! quality is ample for the Monte-Carlo yield estimators in `decoder-sim`
//! and `crossbar-array`; swap in the real `rand` once crates.io is
//! reachable (the API below is call-compatible for this workspace).

#![forbid(unsafe_code)]

/// Low-level source of random `u64`s (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled from the "standard" distribution of a generator:
/// uniform over the full domain for integers and `bool`, uniform in `[0, 1)`
/// for floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like `rand`'s
    /// `Standard` distribution for `f64`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_samples_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
