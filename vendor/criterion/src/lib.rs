//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the criterion API the `mspt-bench` targets use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! deliberately simple measurement loop: each benchmark runs `sample_size`
//! timed samples and prints min / mean / max wall-clock time per iteration.
//!
//! There is no warm-up analysis, outlier classification or HTML report; the
//! point is that `cargo bench` (and the CI `cargo bench --no-run` smoke job)
//! compiles and runs every harness. Swapping in real criterion later needs
//! no source changes in the bench files.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Stand-in for `criterion::Criterion`, the top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            group_name: name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.group_name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`; hands the routine to time to the
/// harness.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per requested iteration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed pass absorbs cold-start effects (allocation, caches).
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        eprintln!("  {id}: no samples recorded");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    eprintln!(
        "  {id}: [{} {} {}] ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_requested_sample_count() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warm-up pass + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_function_without_group_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("standalone", |b| {
            b.iter(|| {
                ran = true;
            });
        });
        assert!(ran);
    }
}
