//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the criterion API the `mspt-bench` targets use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! deliberately simple measurement loop: each benchmark runs `sample_size`
//! timed samples and prints min / mean / max wall-clock time per iteration.
//!
//! There is no warm-up analysis, outlier classification or HTML report; the
//! point is that `cargo bench` (and the CI `cargo bench --no-run` smoke job)
//! compiles and runs every harness. Swapping in real criterion later needs
//! no source changes in the bench files.
//!
//! Two environment knobs support the CI `bench-run` job (the stand-in has
//! no CLI parsing, so `--measurement-time`-style flags arrive as env vars):
//!
//! * [`SAMPLE_SIZE_ENV`] (`MSPT_BENCH_SAMPLE_SIZE`) overrides every
//!   benchmark's sample count — quick mode for CI;
//! * [`JSON_RESULTS_ENV`] (`MSPT_BENCH_JSON`) names a JSON-lines file each
//!   benchmark appends its `{id, samples, min_ns, mean_ns, median_ns,
//!   max_ns}` row to, which CI aggregates into the uploaded
//!   `BENCH_results.json` artifact (the bench-trajectory comparison keys on
//!   the medians — robust against one slow outlier sample on a shared
//!   runner).

#![forbid(unsafe_code)]

use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Environment variable overriding every benchmark's sample count (CI quick
/// mode). Ignored unless it parses to a positive integer.
pub const SAMPLE_SIZE_ENV: &str = "MSPT_BENCH_SAMPLE_SIZE";

/// Environment variable naming a JSON-lines results file. When set and
/// non-empty, every benchmark appends one line
/// `{"id":...,"samples":N,"min_ns":...,"mean_ns":...,"median_ns":...,"max_ns":...}`.
pub const JSON_RESULTS_ENV: &str = "MSPT_BENCH_JSON";

fn effective_sample_size(requested: usize) -> usize {
    std::env::var(SAMPLE_SIZE_ENV)
        .ok()
        .and_then(|value| value.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(requested)
}

fn append_json_result(
    id: &str,
    samples: &[Duration],
    min: Duration,
    mean: Duration,
    max: Duration,
) {
    let Ok(path) = std::env::var(JSON_RESULTS_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|ch| match ch {
            '"' | '\\' => vec!['\\', ch],
            ch => vec![ch],
        })
        .collect();
    let mut sorted = samples.to_vec();
    sorted.sort();
    // Lower median for even counts: deterministic without averaging.
    let median = sorted[(sorted.len() - 1) / 2];
    let line = format!(
        "{{\"id\":\"{escaped}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"max_ns\":{}}}\n",
        samples.len(),
        min.as_nanos(),
        mean.as_nanos(),
        median.as_nanos(),
        max.as_nanos(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = written {
        eprintln!("  (could not append bench result to {path}: {error})");
    }
}

/// Stand-in for `criterion::Criterion`, the top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            group_name: name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.group_name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`; hands the routine to time to the
/// harness.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per requested iteration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed pass absorbs cold-start effects (allocation, caches).
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: effective_sample_size(sample_size),
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        eprintln!("  {id}: no samples recorded");
        return;
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    eprintln!(
        "  {id}: [{} {} {}] ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len(),
    );
    append_json_result(id, samples, min, mean, max);
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises the tests that read or write the process-global
    /// environment knobs.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn group_records_requested_sample_count() {
        let _guard = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warm-up pass + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn env_knobs_override_sample_size_and_write_json_lines() {
        let _guard = ENV_LOCK.lock().unwrap();
        let json_path = std::env::temp_dir().join(format!(
            "criterion-standin-results-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&json_path).ok();
        std::env::set_var(SAMPLE_SIZE_ENV, "2");
        std::env::set_var(JSON_RESULTS_ENV, &json_path);
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("quick \"mode\"", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        std::env::remove_var(SAMPLE_SIZE_ENV);
        std::env::remove_var(JSON_RESULTS_ENV);
        // 1 warm-up pass + 2 overridden samples (default would be 10).
        assert_eq!(runs, 3);
        let line = std::fs::read_to_string(&json_path).unwrap();
        std::fs::remove_file(&json_path).ok();
        assert!(line.starts_with("{\"id\":\"quick \\\"mode\\\"\","));
        assert!(line.contains("\"samples\":2"));
        assert!(line.trim_end().ends_with('}'));
    }

    #[test]
    fn bench_function_without_group_runs() {
        // bench_function reads the env knobs too — serialise with the test
        // that sets them, or this one flakes under parallel test threads.
        let _guard = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("standalone", |b| {
            b.iter(|| {
                ran = true;
            });
        });
        assert!(ran);
    }
}
