//! Offline stand-in for the `serde` facade crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides exactly the surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] marker traits and (behind the `derive`
//! feature) the corresponding derive macros.
//!
//! The workspace only *derives* the traits — nothing serializes values yet —
//! so the derives expand to nothing and the traits carry no methods. When
//! network access to crates.io becomes available, drop the `vendor/serde*`
//! path entries from the workspace manifest and the real serde is a drop-in
//! replacement.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
