//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its report and
//! configuration types but never calls a serializer, so the derives expand to
//! nothing. This keeps every `#[derive(Serialize, Deserialize)]` in the
//! sources compiling byte-for-byte unchanged (including on generic types)
//! without pulling in `syn`/`quote`, which are unavailable offline.

use proc_macro::TokenStream;

/// Empty expansion for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Empty expansion for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
