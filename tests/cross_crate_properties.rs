//! Property-based integration tests spanning every crate of the workspace:
//! for arbitrary valid code choices and half-cave sizes, the paper's
//! structural claims hold all the way from code generation to the platform
//! report.

use mspt_nanowire_decoder::crossbar::is_uniquely_addressable;
use mspt_nanowire_decoder::decoder::{CodeSelection, DecoderDesign};
use mspt_nanowire_decoder::prelude::*;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::Tree),
        Just(CodeKind::Gray),
        Just(CodeKind::BalancedGray),
        Just(CodeKind::Hot),
        Just(CodeKind::ArrangedHot),
    ]
}

fn valid_length(kind: CodeKind, raw: usize) -> usize {
    // Map an arbitrary integer onto a valid binary code length for the
    // family: even 4..=10 for the tree family, even 4..=8 for the hot family.
    if kind.is_hot_family() {
        4 + 2 * (raw % 3)
    } else {
        4 + 2 * (raw % 4)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid binary design evaluates to physical quantities, and its
    /// recipe pass count always equals the fabrication complexity.
    #[test]
    fn designs_evaluate_to_physical_quantities(
        kind in kind_strategy(),
        raw_length in 0usize..16,
        nanowires in 6usize..32,
    ) {
        let code_length = valid_length(kind, raw_length);
        let design = DecoderDesign::builder()
            .code(kind)
            .code_length(code_length)
            .nanowires_per_half_cave(nanowires)
            .build()
            .unwrap();
        let report = design.evaluate().unwrap();
        prop_assert!(report.cave_yield >= 0.0 && report.cave_yield <= 1.0);
        prop_assert!((report.crossbar_yield - report.cave_yield.powi(2)).abs() < 1e-12);
        prop_assert!(report.effective_bit_area >= report.raw_bit_area);
        prop_assert_eq!(report.lithography_passes, report.fabrication_steps);
        prop_assert!(report.mean_variability >= 1.0);
    }

    /// The generated code of any family addresses its code space uniquely
    /// (the antichain property the decoder relies on).
    #[test]
    fn generated_codes_are_uniquely_addressable(
        kind in kind_strategy(),
        raw_length in 0usize..16,
    ) {
        let code_length = valid_length(kind, raw_length);
        let sequence = CodeSpec::new(kind, LogicLevel::BINARY, code_length)
            .unwrap()
            .generate()
            .unwrap();
        prop_assert!(is_uniquely_addressable(&sequence));
    }

    /// Optimised arrangements never lose to their baselines in either cost
    /// function, for any half-cave size (Propositions 4 and 5 extended to the
    /// cyclic assignment used by the crossbar).
    #[test]
    fn optimised_arrangements_never_lose(
        raw_length in 0usize..16,
        nanowires in 6usize..40,
    ) {
        let ladder = DopingLadder::from_model(
            &ThresholdModel::default_mspt(),
            2,
            (Volts::new(0.0), Volts::new(1.0)),
        ).unwrap();
        let sigma = VariabilityModel::paper_default();
        let pairs = [
            (CodeSelection::Tree, CodeSelection::Gray, 4 + 2 * (raw_length % 4)),
            (CodeSelection::Hot, CodeSelection::ArrangedHot, 4 + 2 * (raw_length % 3)),
        ];
        for (baseline_kind, optimised_kind, code_length) in pairs {
            let baseline = CodeSpec::new(baseline_kind, LogicLevel::BINARY, code_length)
                .unwrap().generate().unwrap().take_cyclic(nanowires).unwrap();
            let optimised = CodeSpec::new(optimised_kind, LogicLevel::BINARY, code_length)
                .unwrap().generate().unwrap().take_cyclic(nanowires).unwrap();
            let base_pattern = PatternMatrix::from_sequence(&baseline).unwrap();
            let opt_pattern = PatternMatrix::from_sequence(&optimised).unwrap();
            let base_cost = FabricationCost::from_pattern(&base_pattern, &ladder).unwrap();
            let opt_cost = FabricationCost::from_pattern(&opt_pattern, &ladder).unwrap();
            prop_assert!(opt_cost.total() <= base_cost.total());
            let base_var = VariabilityMatrix::from_pattern(&base_pattern, &ladder, &sigma).unwrap();
            let opt_var = VariabilityMatrix::from_pattern(&opt_pattern, &ladder, &sigma).unwrap();
            prop_assert!(
                opt_var.l1_norm_in_sigma_units() <= base_var.l1_norm_in_sigma_units()
            );
        }
    }

    /// The platform report is monotone in σ_T: more per-dose variability can
    /// only reduce the yield and inflate the bit area.
    #[test]
    fn yield_is_monotone_in_sigma(
        sigma_low_mv in 10.0f64..60.0,
        sigma_delta_mv in 5.0f64..80.0,
    ) {
        let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 8).unwrap();
        let low = SimConfig::paper_defaults(code).unwrap()
            .with_sigma_per_dose(Volts::from_millivolts(sigma_low_mv)).unwrap();
        let high = SimConfig::paper_defaults(code).unwrap()
            .with_sigma_per_dose(Volts::from_millivolts(sigma_low_mv + sigma_delta_mv)).unwrap();
        let low_report = SimulationPlatform::new(low).evaluate().unwrap();
        let high_report = SimulationPlatform::new(high).evaluate().unwrap();
        prop_assert!(high_report.crossbar_yield <= low_report.crossbar_yield + 1e-12);
        prop_assert!(high_report.effective_bit_area >= low_report.effective_bit_area - 1e-9);
    }
}
