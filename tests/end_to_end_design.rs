//! Integration test: the full decoder design flow across every crate —
//! build a design, derive its fabrication recipe, audit the recipe with the
//! event-level process replay, verify the electrical address map, and use
//! the resulting crossbar as a memory.

use mspt_nanowire_decoder::crossbar::{ContactGroupLayout, CrossbarMemory, LayoutRules};
use mspt_nanowire_decoder::decoder::{AddressMap, CodeSelection, DecoderDesign, DecoderRecipe};
use mspt_nanowire_decoder::prelude::*;

fn designs_under_test() -> Vec<DecoderDesign> {
    [
        (CodeSelection::Tree, 8),
        (CodeSelection::Gray, 8),
        (CodeSelection::BalancedGray, 10),
        (CodeSelection::Hot, 6),
        (CodeSelection::ArrangedHot, 6),
    ]
    .into_iter()
    .map(|(kind, length)| {
        DecoderDesign::builder()
            .code(kind)
            .code_length(length)
            .nanowires_per_half_cave(20)
            .build()
            .expect("valid design")
    })
    .collect()
}

#[test]
fn every_design_produces_a_consistent_recipe_and_report() {
    for design in designs_under_test() {
        let report = design.evaluate().unwrap();
        let recipe = DecoderRecipe::for_design(&design).unwrap();
        assert_eq!(
            recipe.lithography_passes(),
            report.fabrication_steps,
            "{}",
            report.code
        );
        assert_eq!(recipe.cost().total(), report.fabrication_steps);
        assert!(report.crossbar_yield > 0.0 && report.crossbar_yield <= 1.0);
        assert!(report.effective_bit_area >= report.raw_bit_area);
    }
}

#[test]
fn every_design_recipe_survives_the_process_replay_audit() {
    for design in designs_under_test() {
        let platform = design.platform();
        let pattern = platform.half_cave().unwrap().pattern().unwrap();
        let ladder = design.config().doping_ladder().unwrap();
        let recipe = DecoderRecipe::for_design(&design).unwrap();
        let audit = recipe.plan().audit(&pattern, &ladder).unwrap();
        assert_eq!(audit.lithography_passes, recipe.lithography_passes());
    }
}

#[test]
fn every_design_addresses_its_nanowires_uniquely() {
    for design in designs_under_test() {
        let map = AddressMap::for_design(&design).unwrap();
        map.verify_unique_addressing().unwrap();
        // The applied voltages stay within the supply range (0..1 V plus half
        // a level separation above the top threshold).
        for assignment in map.assignments() {
            for voltage in &assignment.voltages {
                assert!(voltage.value() > 0.0 && voltage.value() < 1.3);
            }
        }
    }
}

#[test]
fn a_design_drives_a_working_crossbar_memory() {
    let design = DecoderDesign::builder()
        .code(CodeSelection::ArrangedHot)
        .code_length(6)
        .nanowires_per_half_cave(20)
        .build()
        .unwrap();
    let code = design.code_sequence().unwrap();
    let layout =
        ContactGroupLayout::new(20, design.code().space_size(), LayoutRules::paper_default())
            .unwrap();
    let mut memory = CrossbarMemory::new(&code, layout.clone(), &code, layout).unwrap();
    assert!(memory.effective_capacity() > 0);

    // Checkerboard write/read over the usable crosspoints.
    for row in 0..memory.row_count() {
        for column in 0..memory.column_count() {
            if memory.crosspoint_usable(row, column) {
                memory.write(row, column, (row ^ column) & 1 == 1).unwrap();
            }
        }
    }
    for row in 0..memory.row_count() {
        for column in 0..memory.column_count() {
            if memory.crosspoint_usable(row, column) {
                assert_eq!(memory.read(row, column).unwrap(), (row ^ column) & 1 == 1);
            }
        }
    }
}

#[test]
fn the_facade_prelude_covers_the_whole_pipeline() {
    // Exercise the prelude types together: code -> pattern -> cost/variability
    // -> platform report.
    let code = CodeSpec::new(CodeKind::Gray, LogicLevel::TERNARY, 6).unwrap();
    let sequence = code.generate().unwrap().take_cyclic(12).unwrap();
    let pattern = PatternMatrix::from_sequence(&sequence).unwrap();
    let ladder = DopingLadder::from_model(
        &ThresholdModel::default_mspt(),
        3,
        (Volts::new(0.0), Volts::new(1.0)),
    )
    .unwrap();
    let cost = FabricationCost::from_pattern(&pattern, &ladder).unwrap();
    let variability =
        VariabilityMatrix::from_pattern(&pattern, &ladder, &VariabilityModel::paper_default())
            .unwrap();
    assert!(cost.total() >= 2 * 12 - 1);
    assert!(variability.l1_norm_in_sigma_units() >= 12 * 6);

    let config = SimConfig::paper_defaults(code).unwrap();
    let report = SimulationPlatform::new(config).evaluate().unwrap();
    assert!(report.crossbar_yield > 0.0);
}
