//! Integration test: the worked examples of Sections 4 and 5 of the paper
//! (Examples 1–6), exercised end to end through the facade crate.

use mspt_nanowire_decoder::fabrication::{
    threshold_matrix, DoseCountMatrix, FabricationCost, FabricationPlan, FinalDopingMatrix,
    PatternMatrix, StepDopingMatrix, VariabilityMatrix,
};
use mspt_nanowire_decoder::physics::{DopingLadder, VariabilityModel};
use nanowire_codes::LogicLevel;

/// Example 1: the ternary pattern matrix with N = 3, M = 4.
fn example_pattern() -> PatternMatrix {
    PatternMatrix::from_rows(
        vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 0, 1, 2]],
        LogicLevel::TERNARY,
    )
    .expect("paper pattern is valid")
}

/// Example 5: the Gray-code arrangement of the same code space.
fn gray_pattern() -> PatternMatrix {
    PatternMatrix::from_rows(
        vec![vec![0, 1, 2, 1], vec![0, 2, 2, 0], vec![1, 2, 1, 0]],
        LogicLevel::TERNARY,
    )
    .expect("paper Gray pattern is valid")
}

#[test]
fn example_1_threshold_and_doping_matrices() {
    let ladder = DopingLadder::paper_example();
    let pattern = example_pattern();

    // V = P mapped through g, in units of 0.1 V.
    let v = threshold_matrix(&pattern, &ladder).unwrap();
    let v_tenths: Vec<Vec<i64>> = v
        .iter_rows()
        .map(|row| row.iter().map(|x| (x / 0.1).round() as i64).collect())
        .collect();
    assert_eq!(
        v_tenths,
        vec![vec![1, 3, 5, 3], vec![1, 5, 5, 1], vec![3, 1, 3, 5]]
    );

    // D = P mapped through h = f ∘ g, in units of 1e18 cm^-3.
    let d = FinalDopingMatrix::from_pattern(&pattern, &ladder).unwrap();
    assert_eq!(
        d.in_1e18().to_rows(),
        vec![
            vec![2.0, 4.0, 9.0, 4.0],
            vec![2.0, 9.0, 9.0, 2.0],
            vec![4.0, 2.0, 4.0, 9.0]
        ]
    );
}

#[test]
fn example_2_step_doping_matrix() {
    let steps =
        StepDopingMatrix::from_pattern(&example_pattern(), &DopingLadder::paper_example()).unwrap();
    assert_eq!(
        steps.in_1e18().to_rows(),
        vec![
            vec![0.0, -5.0, 0.0, 2.0],
            vec![-2.0, 7.0, 5.0, -7.0],
            vec![4.0, 2.0, 4.0, 9.0]
        ]
    );
    // Proposition 2: accumulating the steps recovers D.
    let recovered = steps.accumulate();
    assert_eq!(
        recovered.in_1e18().to_rows(),
        FinalDopingMatrix::from_pattern(&example_pattern(), &DopingLadder::paper_example())
            .unwrap()
            .in_1e18()
            .to_rows()
    );
}

#[test]
fn example_3_fabrication_complexity() {
    let cost =
        FabricationCost::from_pattern(&example_pattern(), &DopingLadder::paper_example()).unwrap();
    assert_eq!(cost.per_step(), &[2, 4, 3]);
    assert_eq!(cost.total(), 9);
}

#[test]
fn example_4_variability_matrix() {
    let doses =
        DoseCountMatrix::from_pattern(&example_pattern(), &DopingLadder::paper_example()).unwrap();
    assert_eq!(
        doses.as_matrix().to_rows(),
        vec![vec![2, 3, 2, 3], vec![2, 2, 2, 2], vec![1, 1, 1, 1]]
    );
    let variability = VariabilityMatrix::new(doses, &VariabilityModel::paper_default());
    assert_eq!(variability.l1_norm_in_sigma_units(), 22);
}

#[test]
fn example_5_gray_arrangement_reduces_variability() {
    let ladder = DopingLadder::paper_example();
    let sigma = VariabilityModel::paper_default();
    let gray = VariabilityMatrix::from_pattern(&gray_pattern(), &ladder, &sigma).unwrap();
    assert_eq!(gray.l1_norm_in_sigma_units(), 18);
    assert_eq!(
        gray.dose_counts().as_matrix().to_rows(),
        vec![vec![2, 2, 2, 2], vec![2, 1, 2, 1], vec![1, 1, 1, 1]]
    );
    let steps = StepDopingMatrix::from_pattern(&gray_pattern(), &ladder).unwrap();
    assert_eq!(
        steps.in_1e18().to_rows(),
        vec![
            vec![0.0, -5.0, 0.0, 2.0],
            vec![-2.0, 0.0, 5.0, 0.0],
            vec![4.0, 9.0, 4.0, 2.0]
        ]
    );
}

#[test]
fn example_6_gray_arrangement_reduces_fabrication_cost() {
    let cost =
        FabricationCost::from_pattern(&gray_pattern(), &DopingLadder::paper_example()).unwrap();
    assert_eq!(cost.per_step(), &[2, 2, 3]);
    assert_eq!(cost.total(), 7);
}

#[test]
fn the_examples_survive_an_event_level_process_replay() {
    let ladder = DopingLadder::paper_example();
    for pattern in [example_pattern(), gray_pattern()] {
        let plan = FabricationPlan::for_pattern(&pattern, &ladder).unwrap();
        let audit = plan.audit(&pattern, &ladder).unwrap();
        assert_eq!(audit.lithography_passes, audit.fabrication_cost.total());
    }
}
