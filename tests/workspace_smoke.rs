//! Workspace smoke test: the facade re-exports resolve and the README /
//! crate-root quickstart runs as a plain test (not only as a doctest), so a
//! broken workspace wiring fails `cargo test` even with doctests skipped.

use mspt_nanowire_decoder::decoder::{CodeSelection, DecoderDesign};

/// Every facade module path named in `src/lib.rs` resolves to the right
/// underlying crate type. Pure compile-time check: if a re-export breaks,
/// this file stops building.
#[test]
fn facade_reexports_resolve() {
    fn assert_type<T>() {}

    assert_type::<mspt_nanowire_decoder::codes::CodeSpec>();
    assert_type::<mspt_nanowire_decoder::physics::ThresholdModel>();
    assert_type::<mspt_nanowire_decoder::fabrication::PatternMatrix>();
    assert_type::<mspt_nanowire_decoder::crossbar::CrossbarSpec>();
    assert_type::<mspt_nanowire_decoder::sim::SimConfig>();
    assert_type::<mspt_nanowire_decoder::decoder::DecoderDesign>();
}

/// The re-exported modules are the workspace crates themselves, not copies.
#[test]
fn facade_reexports_are_the_workspace_crates() {
    let spec = nanowire_codes::CodeSpec::new(
        nanowire_codes::CodeKind::Gray,
        nanowire_codes::LogicLevel::BINARY,
        6,
    )
    .expect("valid spec");
    // A nanowire_codes value is usable where the facade path is expected.
    let _: &mspt_nanowire_decoder::codes::CodeSpec = &spec;
}

/// The quickstart from the facade's crate-level docs, verbatim, as a plain
/// `#[test]`.
#[test]
fn quickstart_builder_runs() {
    let design = DecoderDesign::builder()
        .code(CodeSelection::BalancedGray)
        .code_length(8)
        .nanowires_per_half_cave(20)
        .build()
        .expect("quickstart design builds");
    let report = design.evaluate().expect("quickstart design evaluates");
    assert!(report.crossbar_yield > 0.0 && report.crossbar_yield <= 1.0);
}

/// The prelude exposes the commonly used types without extra imports.
#[test]
fn prelude_is_usable() {
    use mspt_nanowire_decoder::prelude::*;

    let spec = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 4).expect("valid spec");
    assert_eq!(spec.code_length(), 4);
}
