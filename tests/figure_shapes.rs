//! Integration test: the qualitative claims of the paper's evaluation
//! (Section 6, Figs. 5–8) hold on the reproduction platform — orderings,
//! trends and crossover locations rather than absolute numbers.

use mspt_experiments::{fig5_report, fig6_report, fig7_report, fig8_report, headline_numbers};
use nanowire_codes::{CodeKind, LogicLevel};

#[test]
fn fig5_binary_complexity_is_flat_and_gray_cancels_the_higher_radix_overhead() {
    let report = fig5_report().unwrap();
    let phi = |kind: CodeKind, radix: LogicLevel| {
        report
            .points
            .iter()
            .find(|p| p.kind == kind && p.radix == radix)
            .unwrap()
            .fabrication_steps
    };
    // Binary: Φ is constant and equal to twice the nanowire count (2 × 10).
    assert_eq!(phi(CodeKind::Tree, LogicLevel::BINARY), 20);
    assert_eq!(phi(CodeKind::Gray, LogicLevel::BINARY), 20);
    // Higher radix costs the tree code extra steps...
    assert!(phi(CodeKind::Tree, LogicLevel::TERNARY) > 20);
    assert!(phi(CodeKind::Tree, LogicLevel::QUATERNARY) > 20);
    // ...and the Gray code removes most of that overhead.
    for radix in [LogicLevel::TERNARY, LogicLevel::QUATERNARY] {
        assert!(phi(CodeKind::Gray, radix) < phi(CodeKind::Tree, radix));
        assert!(
            phi(CodeKind::Gray, radix) <= 22,
            "GC overhead nearly cancelled"
        );
    }
}

#[test]
fn fig6_gray_codes_reduce_and_balance_the_variability() {
    let report = fig6_report().unwrap();
    let map = |kind: CodeKind, length: usize| {
        report
            .maps
            .iter()
            .find(|m| m.kind == kind && m.code_length == length)
            .unwrap()
    };
    for length in [8usize, 10] {
        let tree = map(CodeKind::Tree, length);
        let gray = map(CodeKind::Gray, length);
        let balanced = map(CodeKind::BalancedGray, length);
        // GC and BGC reduce the variability level relative to TC.
        assert!(gray.mean_variability < tree.mean_variability);
        assert!(balanced.mean_variability < tree.mean_variability);
        assert!(gray.max_normalized_sigma < tree.max_normalized_sigma);
        // BGC distributes it at least as evenly as GC (its worst region is no
        // worse).
        assert!(balanced.max_normalized_sigma <= gray.max_normalized_sigma + 1e-9);
    }
    // Longer codes have lower average variability for the same family.
    assert!(map(CodeKind::Tree, 10).mean_variability < map(CodeKind::Tree, 8).mean_variability);
}

#[test]
fn fig7_yield_grows_with_code_length_and_optimised_codes_win() {
    let report = fig7_report().unwrap();
    let series = |kind: CodeKind| &report.series.iter().find(|(k, _)| *k == kind).unwrap().1;
    let yield_at = |kind: CodeKind, length: usize| {
        series(kind)
            .iter()
            .find(|p| p.code_length == length)
            .unwrap()
            .crossbar_yield
    };
    // Yield increases with code length over the plotted range for TC and BGC.
    assert!(yield_at(CodeKind::Tree, 10) > yield_at(CodeKind::Tree, 6));
    assert!(yield_at(CodeKind::BalancedGray, 10) > yield_at(CodeKind::BalancedGray, 6));
    // The optimised codes beat their baselines at equal length.
    assert!(yield_at(CodeKind::BalancedGray, 8) > yield_at(CodeKind::Tree, 8));
    assert!(yield_at(CodeKind::ArrangedHot, 8) > yield_at(CodeKind::Hot, 8));
    assert!(yield_at(CodeKind::ArrangedHot, 6) > yield_at(CodeKind::Hot, 6));
    // Hot-code yield saturates around M ≈ 6: the gain from 6 to 8 is small
    // compared with the gain from 4 to 6.
    let hc_4_to_6 = yield_at(CodeKind::Hot, 6) - yield_at(CodeKind::Hot, 4);
    let hc_6_to_8 = yield_at(CodeKind::Hot, 8) - yield_at(CodeKind::Hot, 6);
    assert!(hc_6_to_8 < hc_4_to_6 / 2.0);
    // All yields are physical.
    for (_, points) in &report.series {
        for p in points {
            assert!(p.crossbar_yield > 0.0 && p.crossbar_yield <= 1.0);
        }
    }
}

#[test]
fn fig8_bit_area_shrinks_with_length_and_the_best_code_is_an_optimised_one() {
    let report = fig8_report().unwrap();
    let series = |kind: CodeKind| &report.series.iter().find(|(k, _)| *k == kind).unwrap().1;
    let area_at = |kind: CodeKind, length: usize| {
        series(kind)
            .iter()
            .find(|p| p.code_length == length)
            .unwrap()
            .bit_area
    };
    // Tree-family bit area decreases with code length over 6..10.
    for kind in [CodeKind::Tree, CodeKind::Gray, CodeKind::BalancedGray] {
        assert!(area_at(kind, 10) < area_at(kind, 8));
        assert!(area_at(kind, 8) < area_at(kind, 6));
    }
    // BGC is denser than GC, which is denser than TC (at M = 8).
    assert!(area_at(CodeKind::BalancedGray, 8) < area_at(CodeKind::Gray, 8));
    assert!(area_at(CodeKind::Gray, 8) < area_at(CodeKind::Tree, 8));
    // AHC beats HC at M = 6 and the hot families reach their minimum at 6.
    assert!(area_at(CodeKind::ArrangedHot, 6) < area_at(CodeKind::Hot, 6));
    assert!(area_at(CodeKind::ArrangedHot, 6) <= area_at(CodeKind::ArrangedHot, 8));
    // The overall best is an optimised code with a bit area in the paper's
    // ballpark (the paper reports 169 nm² for BGC, 175 nm² for AHC).
    let (kind, _, area) = report.best().unwrap();
    assert!(kind.is_optimised());
    assert!(area > 130.0 && area < 230.0, "best bit area {area} nm²");
}

#[test]
fn headline_numbers_are_in_the_papers_direction_and_ballpark() {
    let headline = headline_numbers().unwrap();
    // Directions: every optimisation the paper reports as a gain is a gain.
    assert!(headline.gray_complexity_saving_ternary > 0.0);
    assert!(headline.bgc_variability_reduction > 0.0);
    assert!(headline.tc_yield_gain_6_to_10 > 0.0);
    assert!(headline.bgc_vs_tc_yield_gain_at_8 > 0.0);
    assert!(headline.ahc_vs_hc_yield_gain_at_8 > 0.0);
    assert!(headline.tc_bit_area_saving_6_to_10 > 0.0);
    assert!(headline.ahc_vs_hc_area_saving_at_6 > 0.0);
    // Ballparks (generous factors — the substrate is a simulator, not the
    // authors' calibrated platform).
    assert!(
        headline.gray_complexity_saving_ternary > 0.08
            && headline.gray_complexity_saving_ternary < 0.35
    );
    assert!(headline.tc_yield_gain_6_to_10 > 0.15 && headline.tc_yield_gain_6_to_10 < 0.9);
    assert!(headline.best_bgc_bit_area > 130.0 && headline.best_bgc_bit_area < 230.0);
    assert!(headline.best_ahc_bit_area > 130.0 && headline.best_ahc_bit_area < 260.0);
}
