//! # mspt-experiments
//!
//! The experiment definitions that regenerate every figure of the DAC 2009
//! MSPT-decoder paper, plus the headline numbers quoted in its abstract and
//! conclusions. The binaries in `src/bin/` are thin wrappers that print the
//! reports produced here; integration tests and the benchmark harness call
//! the same functions so every consumer sees identical rows.
//!
//! | Experiment | Paper artefact | Function |
//! |---|---|---|
//! | FIG5 | Fig. 5 — fabrication complexity vs code & logic type | [`fig5_report`] |
//! | FIG6 | Fig. 6 — variability maps | [`fig6_report`] |
//! | FIG7 | Fig. 7 — crossbar yield vs code length | [`fig7_report`] |
//! | FIG7D | Beyond the paper — Fig. 7 defect axis (yield vs defect rate) | [`fig7_defects_report`] |
//! | FIG8 | Fig. 8 — bit area vs code type & length | [`fig8_report`] |
//! | HEAD | Abstract / Section 7 headline claims | [`headline_numbers`] |
//! | DIST | Beyond the paper — Monte-Carlo addressability under non-Gaussian disturbances | [`disturbance_report`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use serde::{Deserialize, Serialize};

use decoder_sim::{
    variability_map, DefectKind, DisturbanceKind, EngineConfig, Evaluation, ExecutionEngine,
    Fig5Report, Fig6Report, Fig7Report, Fig8Report, MonteCarloConfig, Result, SimConfig,
    SimulationPlatform, Stage,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

/// The baseline configuration every experiment starts from: the paper's
/// platform parameters with a placeholder code (each experiment swaps in the
/// codes it sweeps).
///
/// # Errors
///
/// Never fails in practice; propagates configuration validation errors.
pub fn paper_base_config() -> Result<SimConfig> {
    let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8)?;
    SimConfig::paper_defaults(code)
}

/// The execution engine the experiments run on: default knobs (thread count
/// from `MSPT_ENGINE_THREADS` or the machine's available parallelism). Share
/// one engine across several reports to reuse its memoized report cache —
/// Figs. 7 and 8 and the headline numbers revisit the same (kind, length)
/// points.
#[must_use]
pub fn paper_engine() -> ExecutionEngine {
    ExecutionEngine::new(EngineConfig::default())
}

/// Number of nanowires per half cave used by Fig. 5 (fabrication
/// complexity).
pub const FIG5_NANOWIRES: usize = 10;
/// Code length used by Fig. 5.
pub const FIG5_CODE_LENGTH: usize = 8;
/// Number of nanowires per half cave used by Fig. 6 (variability maps).
pub const FIG6_NANOWIRES: usize = 20;
/// Code lengths used by Figs. 6–8 for the tree-code family.
pub const TREE_FAMILY_LENGTHS: [usize; 3] = [6, 8, 10];
/// Code lengths used by Fig. 7 for the hot-code family.
pub const HOT_FAMILY_LENGTHS: [usize; 3] = [4, 6, 8];

/// Regenerates Fig. 5: fabrication complexity of TC and GC for binary,
/// ternary and quaternary logic with `N = 10` nanowires per half cave.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig5_report() -> Result<Fig5Report> {
    fig5_report_with(&paper_engine())
}

/// [`fig5_report`] on an explicit engine, so callers can share one engine
/// (and its report cache) across several figures.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig5_report_with(engine: &ExecutionEngine) -> Result<Fig5Report> {
    let base = paper_base_config()?;
    let points = engine.complexity_sweep(
        &base,
        &[CodeKind::Tree, CodeKind::Gray],
        &[
            LogicLevel::BINARY,
            LogicLevel::TERNARY,
            LogicLevel::QUATERNARY,
        ],
        FIG5_CODE_LENGTH,
        FIG5_NANOWIRES,
    )?;
    Ok(Fig5Report { points })
}

/// Regenerates Fig. 6: the normalised variability maps of binary TC, GC and
/// BGC at code lengths 8 and 10 with `N = 20`.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig6_report() -> Result<Fig6Report> {
    let base = paper_base_config()?;
    let mut maps = Vec::new();
    for kind in [CodeKind::Tree, CodeKind::Gray, CodeKind::BalancedGray] {
        for length in [8usize, 10] {
            maps.push(variability_map(
                &base,
                kind,
                LogicLevel::BINARY,
                length,
                FIG6_NANOWIRES,
            )?);
        }
    }
    Ok(Fig6Report { maps })
}

/// Regenerates Fig. 7: crossbar yield against code length for TC/BGC
/// (lengths 6, 8, 10) and HC/AHC (lengths 4, 6, 8).
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig7_report() -> Result<Fig7Report> {
    fig7_report_with(&paper_engine())
}

/// [`fig7_report`] on an explicit engine, so callers can share one engine
/// (and its report cache) across several figures.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig7_report_with(engine: &ExecutionEngine) -> Result<Fig7Report> {
    let base = paper_base_config()?;
    let mut series = Vec::new();
    for kind in [CodeKind::Tree, CodeKind::BalancedGray] {
        series.push((
            kind,
            engine.yield_sweep(&base, kind, LogicLevel::BINARY, &TREE_FAMILY_LENGTHS)?,
        ));
    }
    for kind in [CodeKind::Hot, CodeKind::ArrangedHot] {
        series.push((
            kind,
            engine.yield_sweep(&base, kind, LogicLevel::BINARY, &HOT_FAMILY_LENGTHS)?,
        ));
    }
    Ok(Fig7Report {
        series,
        defect_series: vec![],
    })
}

/// Nanowire-breakage rates swept by the `fig7_defects` experiment (the
/// stuck-crosspoint rate rides along at half the breakage rate — switching
/// layers fail less often than high-aspect-ratio spacers break).
pub const DEFECT_RATE_AXIS: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.1];

/// Default defect-map seed of the `fig7_defects` experiment (override with
/// the `MSPT_DEFECT_SEED` environment variable in the binary).
pub const FIG7_DEFECT_SEED: u64 = 2_009;

/// The (family, length) pairs the defect axis is swept for: the paper's
/// best-yielding configuration per optimised family, plus the tree-code
/// baseline.
pub const FIG7_DEFECT_CODES: [(CodeKind, usize); 3] = [
    (CodeKind::Tree, 10),
    (CodeKind::BalancedGray, 10),
    (CodeKind::ArrangedHot, 8),
];

/// The defect selections of one `fig7_defects` sweep: [`DefectKind::None`]
/// as the paper baseline, then one sampled selection per
/// [`DEFECT_RATE_AXIS`] rate (breakage = rate, stuck crosspoints = rate/2),
/// all drawing their maps from `seed`.
///
/// # Errors
///
/// Never fails for the built-in axis; propagates rate-validation errors.
pub fn defect_axis(seed: u64) -> Result<Vec<DefectKind>> {
    let mut axis = Vec::with_capacity(DEFECT_RATE_AXIS.len());
    for &rate in &DEFECT_RATE_AXIS {
        axis.push(if rate == 0.0 {
            DefectKind::None
        } else {
            DefectKind::sampled(rate, rate / 2.0, seed)?
        });
    }
    Ok(axis)
}

/// Beyond the paper — Fig. 7's defect axis: composite crossbar yield against
/// the fabrication-defect rate for the best code of each family, with
/// deterministic seed-sampled defect maps composed onto the decoder yield.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig7_defects_report() -> Result<Fig7Report> {
    fig7_defects_report_with(&paper_engine(), FIG7_DEFECT_SEED)
}

/// [`fig7_defects_report`] on an explicit engine and defect-map seed, so
/// callers can share one engine (and its report cache) across several
/// figures and pin or vary the sampled maps.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig7_defects_report_with(engine: &ExecutionEngine, seed: u64) -> Result<Fig7Report> {
    let base = paper_base_config()?;
    let axis = defect_axis(seed)?;
    let mut defect_series = Vec::with_capacity(FIG7_DEFECT_CODES.len());
    for (kind, code_length) in FIG7_DEFECT_CODES {
        defect_series.push((
            kind,
            engine.defect_yield_sweep(&base, kind, LogicLevel::BINARY, code_length, &axis)?,
        ));
    }
    Ok(Fig7Report {
        series: vec![],
        defect_series,
    })
}

/// Regenerates Fig. 8: effective bit area for every code family at lengths
/// 6, 8 and 10 (hot-family lengths 4, 6, 8 are included as well so the HC/AHC
/// bars exist at their valid lengths).
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig8_report() -> Result<Fig8Report> {
    fig8_report_with(&paper_engine())
}

/// [`fig8_report`] on an explicit engine, so callers can share one engine
/// (and its report cache) across several figures.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn fig8_report_with(engine: &ExecutionEngine) -> Result<Fig8Report> {
    let base = paper_base_config()?;
    let mut series = Vec::new();
    for kind in [CodeKind::Tree, CodeKind::Gray, CodeKind::BalancedGray] {
        series.push((
            kind,
            engine.bit_area_sweep(&base, kind, LogicLevel::BINARY, &TREE_FAMILY_LENGTHS)?,
        ));
    }
    for kind in [CodeKind::Hot, CodeKind::ArrangedHot] {
        let mut lengths = HOT_FAMILY_LENGTHS.to_vec();
        lengths.push(10);
        series.push((
            kind,
            engine.bit_area_sweep(&base, kind, LogicLevel::BINARY, &lengths)?,
        ));
    }
    Ok(Fig8Report { series })
}

/// Code length of the disturbance-model comparison (the paper's
/// best-yielding balanced-Gray configuration).
pub const DISTURBANCE_CODE_LENGTH: usize = 10;
/// Monte-Carlo samples per disturbance model in the comparison.
pub const DISTURBANCE_SAMPLES: usize = 4_000;
/// Fixed seed of the disturbance-model comparison — identical across models,
/// so the three estimates are common-random-number comparable where their
/// draw disciplines overlap.
pub const DISTURBANCE_SEED: u64 = 2_009;

/// One row of the disturbance-model comparison: the Monte-Carlo
/// addressability of the platform under one disturbance distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbancePoint {
    /// The sampled disturbance distribution.
    pub kind: DisturbanceKind,
    /// Mean per-nanowire addressability probability.
    pub mean_addressability: f64,
    /// Worst per-nanowire addressability probability.
    pub min_addressability: f64,
}

/// Beyond the paper: the same decoder evaluated under Gaussian, heavy-tailed
/// and correlated dose disturbances — the regimes the analytic model cannot
/// integrate in closed form (see [`disturbance_report`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceReport {
    /// The evaluated code family.
    pub code_kind: CodeKind,
    /// The evaluated code length.
    pub code_length: usize,
    /// Nanowires per half cave.
    pub nanowires: usize,
    /// Monte-Carlo samples per model.
    pub samples: usize,
    /// The analytic (closed-form Gaussian) mean addressability, the anchor
    /// the Gaussian Monte-Carlo row validates against.
    pub analytic_gaussian_mean: f64,
    /// One row per disturbance model.
    pub points: Vec<DisturbancePoint>,
}

impl fmt::Display for DisturbanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Beyond the paper — Monte-Carlo addressability per disturbance model"
        )?;
        writeln!(
            f,
            "{} (M = {}, N = {}), {} samples/model; analytic Gaussian mean: {:.1}%",
            self.code_kind.label(),
            self.code_length,
            self.nanowires,
            self.samples,
            self.analytic_gaussian_mean * 100.0
        )?;
        writeln!(f, "{:<20} {:>10} {:>12}", "model", "mean", "worst wire")?;
        for point in &self.points {
            writeln!(
                f,
                "{:<20} {:>9.1}% {:>11.1}%",
                point.kind.to_string(),
                point.mean_addressability * 100.0,
                point.min_addressability * 100.0
            )?;
        }
        Ok(())
    }
}

/// Compares the Monte-Carlo addressability of the paper's best
/// balanced-Gray decoder under the three stock disturbance models —
/// Gaussian (validating the analytic integration), heavy-tailed Laplace,
/// and correlated inter-region noise with half the variance shared per
/// nanowire. Same seed and sample count for every model.
///
/// # Errors
///
/// Propagates configuration and sampling errors.
pub fn disturbance_report() -> Result<DisturbanceReport> {
    disturbance_report_with(&paper_engine())
}

/// [`disturbance_report`] on an explicit engine, so callers can reuse a
/// shared engine's thread pool.
///
/// # Errors
///
/// Propagates configuration and sampling errors.
pub fn disturbance_report_with(engine: &ExecutionEngine) -> Result<DisturbanceReport> {
    let code_kind = CodeKind::BalancedGray;
    let code = CodeSpec::new(code_kind, LogicLevel::BINARY, DISTURBANCE_CODE_LENGTH)?;
    let base = paper_base_config()?.with_code(code);
    let analytic_gaussian_mean = SimulationPlatform::new(base.clone())
        .addressability()?
        .mean();
    let mc = MonteCarloConfig::fixed(DISTURBANCE_SAMPLES, DISTURBANCE_SEED);
    let mut points = Vec::new();
    for kind in [
        DisturbanceKind::Gaussian,
        DisturbanceKind::Laplace,
        DisturbanceKind::Correlated {
            shared_fraction: 0.5,
        },
    ] {
        // One builder run per distribution. The disturbance kind is outside
        // the variability stage's read set, so the engine's stage cache
        // derives the variability matrix once and serves the second and
        // third models from the memo slot — only the sampling pass re-runs
        // per row.
        let outcome = Evaluation::builder(base.clone())
            .disturbance(kind)
            .stages(&[Stage::MonteCarlo])
            .monte_carlo(mc)
            .run(engine)?
            .monte_carlo
            .expect("the Monte-Carlo stage was requested");
        let probabilities = outcome.profile.probabilities();
        points.push(DisturbancePoint {
            kind,
            mean_addressability: outcome.profile.mean(),
            min_addressability: probabilities.iter().copied().fold(f64::INFINITY, f64::min),
        });
    }
    Ok(DisturbanceReport {
        code_kind,
        code_length: DISTURBANCE_CODE_LENGTH,
        nanowires: base.nanowires_per_half_cave(),
        samples: DISTURBANCE_SAMPLES,
        analytic_gaussian_mean,
        points,
    })
}

/// The serving-layer stress mix: every Fig. 7/8 sweep configuration (the
/// four code families at their valid lengths) plus one Laplace-disturbance
/// variant and one sampled-defect variant, so a stress run also exercises
/// disturbance-kind and defect-kind cache keying (including the engine's
/// sharded defect-map sampling under concurrent load). This is the
/// repeated-`SimConfig` workload the shared warm cache is built for — the
/// request population of the `serve_stress` binary and the CI serving gate.
///
/// # Errors
///
/// Propagates configuration validation errors (none occur for the paper's
/// parameters).
pub fn stress_mix() -> Result<Vec<mspt_serve::ReportRequest>> {
    use mspt_serve::ReportRequest;
    let base = paper_base_config()?;
    let mut mix = Vec::new();
    for (kind, lengths) in [
        (CodeKind::Tree, &TREE_FAMILY_LENGTHS),
        (CodeKind::BalancedGray, &TREE_FAMILY_LENGTHS),
        (CodeKind::Hot, &HOT_FAMILY_LENGTHS),
        (CodeKind::ArrangedHot, &HOT_FAMILY_LENGTHS),
    ] {
        for &length in lengths {
            let code = CodeSpec::new(kind, LogicLevel::BINARY, length)?;
            mix.push(ReportRequest::new(base.clone().with_code(code)));
        }
    }
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10)?;
    mix.push(
        ReportRequest::builder(base.clone().with_code(code))
            .disturbance(DisturbanceKind::Laplace)
            .build(),
    );
    mix.push(
        ReportRequest::builder(base.with_code(code))
            .defects(DefectKind::sampled(0.02, 0.01, FIG7_DEFECT_SEED)?)
            .build(),
    );
    Ok(mix)
}

/// The headline numbers of the abstract and Section 7, computed from the same
/// sweeps that regenerate the figures. All values are fractions (0.17 means
/// 17 %), except the two bit areas which are in nm².
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineNumbers {
    /// Fabrication-complexity saving of GC over TC for ternary logic
    /// (paper: ~17 %).
    pub gray_complexity_saving_ternary: f64,
    /// Fabrication-complexity saving of GC over TC for quaternary logic.
    pub gray_complexity_saving_quaternary: f64,
    /// Average-variability reduction of BGC over TC at N = 20
    /// (paper: ~18 %).
    pub bgc_variability_reduction: f64,
    /// Relative yield gain of the tree code when the length grows from 6 to
    /// 10 (paper: ~40 %).
    pub tc_yield_gain_6_to_10: f64,
    /// Relative yield gain of the arranged hot code when the length grows
    /// from 4 to 8 (paper: ~40 %).
    pub ahc_yield_gain_4_to_8: f64,
    /// Relative yield gain of BGC over TC at length 8 (paper: ~42 %).
    pub bgc_vs_tc_yield_gain_at_8: f64,
    /// Relative yield gain of AHC over HC at length 8 (paper: ~19 %).
    pub ahc_vs_hc_yield_gain_at_8: f64,
    /// Bit-area saving of the tree code when the length grows from 6 to 10
    /// (paper: ~51 %).
    pub tc_bit_area_saving_6_to_10: f64,
    /// Density gain (bits per area) of BGC over TC at length 8
    /// (paper: ~30 %).
    pub bgc_vs_tc_density_gain_at_8: f64,
    /// Bit-area saving of AHC over HC at length 6 (paper: ~13 %).
    pub ahc_vs_hc_area_saving_at_6: f64,
    /// Smallest bit area reached by the balanced Gray code, nm²
    /// (paper: ~169 nm²).
    pub best_bgc_bit_area: f64,
    /// Smallest bit area reached by the arranged hot code, nm²
    /// (paper: ~175 nm²).
    pub best_ahc_bit_area: f64,
}

impl fmt::Display for HeadlineNumbers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline numbers (paper value in parentheses)")?;
        writeln!(
            f,
            "GC vs TC fabrication-step saving, ternary:    {:5.1}%  (17%)",
            self.gray_complexity_saving_ternary * 100.0
        )?;
        writeln!(
            f,
            "GC vs TC fabrication-step saving, quaternary: {:5.1}%  (~20%)",
            self.gray_complexity_saving_quaternary * 100.0
        )?;
        writeln!(
            f,
            "BGC vs TC average-variability reduction:      {:5.1}%  (18%)",
            self.bgc_variability_reduction * 100.0
        )?;
        writeln!(
            f,
            "TC yield gain, code length 6 -> 10:            {:5.1}%  (~40%)",
            self.tc_yield_gain_6_to_10 * 100.0
        )?;
        writeln!(
            f,
            "AHC yield gain, code length 4 -> 8:            {:5.1}%  (~40%)",
            self.ahc_yield_gain_4_to_8 * 100.0
        )?;
        writeln!(
            f,
            "BGC vs TC yield gain at M = 8:                 {:5.1}%  (42%)",
            self.bgc_vs_tc_yield_gain_at_8 * 100.0
        )?;
        writeln!(
            f,
            "AHC vs HC yield gain at M = 8:                 {:5.1}%  (19%)",
            self.ahc_vs_hc_yield_gain_at_8 * 100.0
        )?;
        writeln!(
            f,
            "TC bit-area saving, code length 6 -> 10:       {:5.1}%  (51%)",
            self.tc_bit_area_saving_6_to_10 * 100.0
        )?;
        writeln!(
            f,
            "BGC vs TC density gain at M = 8:               {:5.1}%  (30%)",
            self.bgc_vs_tc_density_gain_at_8 * 100.0
        )?;
        writeln!(
            f,
            "AHC vs HC bit-area saving at M = 6:            {:5.1}%  (13%)",
            self.ahc_vs_hc_area_saving_at_6 * 100.0
        )?;
        writeln!(
            f,
            "Best BGC bit area:                             {:5.1} nm² (169 nm²)",
            self.best_bgc_bit_area
        )?;
        writeln!(
            f,
            "Best AHC bit area:                             {:5.1} nm² (175 nm²)",
            self.best_ahc_bit_area
        )?;
        Ok(())
    }
}

/// Computes every headline number from the figure sweeps.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn headline_numbers() -> Result<HeadlineNumbers> {
    headline_numbers_with(&paper_engine())
}

/// [`headline_numbers`] on an explicit engine. The headline numbers revisit
/// the Fig. 7 and Fig. 8 sweep points, so the engine's memoized report cache
/// (and any cache warmed by earlier figure reports on the same engine)
/// evaluates each distinct (kind, length) configuration once.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn headline_numbers_with(engine: &ExecutionEngine) -> Result<HeadlineNumbers> {
    let base = paper_base_config()?;

    // Fig. 5 inputs: complexity of TC vs GC at higher radices.
    let complexity = engine.complexity_sweep(
        &base,
        &[CodeKind::Tree, CodeKind::Gray],
        &[LogicLevel::TERNARY, LogicLevel::QUATERNARY],
        FIG5_CODE_LENGTH,
        FIG5_NANOWIRES,
    )?;
    let phi = |kind: CodeKind, radix: LogicLevel| -> f64 {
        complexity
            .iter()
            .find(|p| p.kind == kind && p.radix == radix)
            .map(|p| p.fabrication_steps as f64)
            .unwrap_or(f64::NAN)
    };
    let saving = |radix: LogicLevel| -> f64 {
        let tc = phi(CodeKind::Tree, radix);
        let gc = phi(CodeKind::Gray, radix);
        (tc - gc) / tc
    };

    // Fig. 6 inputs: mean variability of TC vs BGC at N = 20, averaged over
    // the two lengths the paper plots.
    let mean_variability = |kind: CodeKind| -> Result<f64> {
        let mut total = 0.0;
        for length in [8usize, 10] {
            total += variability_map(&base, kind, LogicLevel::BINARY, length, FIG6_NANOWIRES)?
                .mean_variability;
        }
        Ok(total / 2.0)
    };
    let tc_variability = mean_variability(CodeKind::Tree)?;
    let bgc_variability = mean_variability(CodeKind::BalancedGray)?;

    // Fig. 7 inputs.
    let tc_yield = engine.yield_sweep(
        &base,
        CodeKind::Tree,
        LogicLevel::BINARY,
        &TREE_FAMILY_LENGTHS,
    )?;
    let bgc_yield = engine.yield_sweep(
        &base,
        CodeKind::BalancedGray,
        LogicLevel::BINARY,
        &TREE_FAMILY_LENGTHS,
    )?;
    let hc_yield = engine.yield_sweep(
        &base,
        CodeKind::Hot,
        LogicLevel::BINARY,
        &HOT_FAMILY_LENGTHS,
    )?;
    let ahc_yield = engine.yield_sweep(
        &base,
        CodeKind::ArrangedHot,
        LogicLevel::BINARY,
        &HOT_FAMILY_LENGTHS,
    )?;
    let yield_at = |points: &[decoder_sim::YieldPoint], length: usize| -> f64 {
        points
            .iter()
            .find(|p| p.code_length == length)
            .map(|p| p.crossbar_yield)
            .unwrap_or(f64::NAN)
    };

    // Fig. 8 inputs (cache hits: the same configurations the yield sweeps
    // above just evaluated).
    let tc_area = engine.bit_area_sweep(
        &base,
        CodeKind::Tree,
        LogicLevel::BINARY,
        &TREE_FAMILY_LENGTHS,
    )?;
    let bgc_area = engine.bit_area_sweep(
        &base,
        CodeKind::BalancedGray,
        LogicLevel::BINARY,
        &[6, 8, 10],
    )?;
    let hc_area = engine.bit_area_sweep(
        &base,
        CodeKind::Hot,
        LogicLevel::BINARY,
        &HOT_FAMILY_LENGTHS,
    )?;
    let ahc_area = engine.bit_area_sweep(
        &base,
        CodeKind::ArrangedHot,
        LogicLevel::BINARY,
        &HOT_FAMILY_LENGTHS,
    )?;
    let area_at = |points: &[decoder_sim::BitAreaPoint], length: usize| -> f64 {
        points
            .iter()
            .find(|p| p.code_length == length)
            .map(|p| p.bit_area)
            .unwrap_or(f64::NAN)
    };
    let best_area = |points: &[decoder_sim::BitAreaPoint]| -> f64 {
        points
            .iter()
            .map(|p| p.bit_area)
            .fold(f64::INFINITY, f64::min)
    };

    Ok(HeadlineNumbers {
        gray_complexity_saving_ternary: saving(LogicLevel::TERNARY),
        gray_complexity_saving_quaternary: saving(LogicLevel::QUATERNARY),
        bgc_variability_reduction: (tc_variability - bgc_variability) / tc_variability,
        tc_yield_gain_6_to_10: (yield_at(&tc_yield, 10) - yield_at(&tc_yield, 6))
            / yield_at(&tc_yield, 6),
        ahc_yield_gain_4_to_8: (yield_at(&ahc_yield, 8) - yield_at(&ahc_yield, 4))
            / yield_at(&ahc_yield, 4),
        bgc_vs_tc_yield_gain_at_8: (yield_at(&bgc_yield, 8) - yield_at(&tc_yield, 8))
            / yield_at(&tc_yield, 8),
        ahc_vs_hc_yield_gain_at_8: (yield_at(&ahc_yield, 8) - yield_at(&hc_yield, 8))
            / yield_at(&hc_yield, 8),
        tc_bit_area_saving_6_to_10: (area_at(&tc_area, 6) - area_at(&tc_area, 10))
            / area_at(&tc_area, 6),
        bgc_vs_tc_density_gain_at_8: area_at(&tc_area, 8) / area_at(&bgc_area, 8) - 1.0,
        ahc_vs_hc_area_saving_at_6: (area_at(&hc_area, 6) - area_at(&ahc_area, 6))
            / area_at(&hc_area, 6),
        best_bgc_bit_area: best_area(&bgc_area),
        best_ahc_bit_area: best_area(&ahc_area),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_has_six_points_with_the_expected_ordering() {
        let report = fig5_report().unwrap();
        assert_eq!(report.points.len(), 6);
        let phi = |kind: CodeKind, radix: LogicLevel| {
            report
                .points
                .iter()
                .find(|p| p.kind == kind && p.radix == radix)
                .unwrap()
                .fabrication_steps
        };
        assert_eq!(phi(CodeKind::Tree, LogicLevel::BINARY), 20);
        assert!(
            phi(CodeKind::Gray, LogicLevel::TERNARY) <= phi(CodeKind::Tree, LogicLevel::TERNARY)
        );
    }

    #[test]
    fn fig6_has_six_panels() {
        let report = fig6_report().unwrap();
        assert_eq!(report.maps.len(), 6);
        assert!(report.maps.iter().all(|m| m.nanowires == 20));
    }

    #[test]
    fn fig7_series_cover_four_families() {
        let report = fig7_report().unwrap();
        assert_eq!(report.series.len(), 4);
        for (_, points) in &report.series {
            assert_eq!(points.len(), 3);
        }
    }

    #[test]
    fn fig7_defects_covers_the_rate_axis_and_degrades_monotonically() {
        let report = fig7_defects_report().unwrap();
        assert!(report.series.is_empty());
        assert_eq!(report.defect_series.len(), FIG7_DEFECT_CODES.len());
        for (kind, points) in &report.defect_series {
            assert_eq!(points.len(), DEFECT_RATE_AXIS.len());
            // The rate-0 baseline is the paper's defect-free yield...
            assert_eq!(points[0].defects, DefectKind::None);
            assert_eq!(points[0].defect_survival, 1.0);
            assert_eq!(points[0].composite_yield, points[0].decoder_yield);
            // ...and the composite yield falls as the defect rate grows
            // (sampled maps, but the axis steps are far above the sampling
            // noise of a 363×363 map).
            for pair in points.windows(2) {
                assert!(
                    pair[1].composite_yield < pair[0].composite_yield,
                    "{kind:?}: composite yield did not fall from {:?} to {:?}",
                    pair[0].defects,
                    pair[1].defects
                );
            }
            // The decoder yield is the same defect-free quantity at every
            // point of a series.
            for point in points {
                assert_eq!(point.decoder_yield, points[0].decoder_yield);
            }
        }
        let text = report.to_string();
        assert!(text.contains("defect axis"));
        assert!(text.contains("BGC"));
    }

    #[test]
    fn stress_mix_exercises_disturbance_and_defect_keying() {
        let mix = stress_mix().unwrap();
        assert!(mix.iter().any(|request| request.disturbance.is_some()));
        assert!(mix.iter().any(|request| request.defects.is_some()));
    }

    #[test]
    fn fig8_best_is_an_optimised_code() {
        let report = fig8_report().unwrap();
        let (kind, _, area) = report.best().unwrap();
        assert!(kind.is_optimised(), "best code {kind:?}");
        assert!(area > 100.0 && area < 300.0, "best bit area {area}");
    }

    #[test]
    fn disturbance_report_compares_the_three_stock_models() {
        let report = disturbance_report().unwrap();
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.points[0].kind, DisturbanceKind::Gaussian);
        for point in &report.points {
            assert!(point.mean_addressability > 0.0 && point.mean_addressability <= 1.0);
            assert!(point.min_addressability <= point.mean_addressability);
        }
        // The Gaussian Monte-Carlo row validates the analytic integration.
        assert!(
            (report.points[0].mean_addressability - report.analytic_gaussian_mean).abs() < 0.02,
            "Monte-Carlo {} vs analytic {}",
            report.points[0].mean_addressability,
            report.analytic_gaussian_mean
        );
        // The non-Gaussian rows genuinely sample different distributions.
        assert_ne!(
            report.points[0].mean_addressability,
            report.points[1].mean_addressability
        );
        let text = report.to_string();
        assert!(text.contains("laplace"));
        assert!(text.contains("correlated(ρ=0.50)"));
        assert!(text.contains("worst wire"));
    }

    #[test]
    fn headline_numbers_have_the_papers_signs_and_orders() {
        let headline = headline_numbers().unwrap();
        // Savings and gains must all be positive (the optimised codes win).
        assert!(headline.gray_complexity_saving_ternary > 0.05);
        assert!(headline.gray_complexity_saving_quaternary > 0.05);
        assert!(headline.bgc_variability_reduction > 0.05);
        assert!(headline.tc_yield_gain_6_to_10 > 0.1);
        assert!(headline.ahc_yield_gain_4_to_8 > 0.0);
        assert!(headline.bgc_vs_tc_yield_gain_at_8 > 0.0);
        assert!(headline.ahc_vs_hc_yield_gain_at_8 > 0.0);
        assert!(headline.tc_bit_area_saving_6_to_10 > 0.1);
        assert!(headline.bgc_vs_tc_density_gain_at_8 > 0.0);
        assert!(headline.ahc_vs_hc_area_saving_at_6 > 0.0);
        // The best optimised-code bit areas land in the paper's ballpark.
        assert!(headline.best_bgc_bit_area > 120.0 && headline.best_bgc_bit_area < 260.0);
        assert!(headline.best_ahc_bit_area > 120.0 && headline.best_ahc_bit_area < 280.0);
        // Rendering mentions the paper values.
        let text = headline.to_string();
        assert!(text.contains("169 nm²"));
        assert!(text.contains("(42%)"));
    }
}
