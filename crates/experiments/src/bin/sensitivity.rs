//! Sensitivity (ablation) sweeps over the reproduction's calibration
//! constants: σ_T, the decision window, the contact alignment tolerance and
//! the half-cave size. The paper's qualitative conclusion — the optimised
//! arrangement wins — must hold at every swept value.

use decoder_sim::{
    alignment_sensitivity, half_cave_sensitivity, sigma_sensitivity, window_sensitivity,
    SensitivitySweep,
};

fn print_sweep(sweep: &SensitivitySweep) {
    println!("sensitivity to {}:", sweep.parameter_name);
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "value", "TC yield", "BGC yield", "TC area[nm²]", "BGC area[nm²]"
    );
    for point in &sweep.points {
        println!(
            "{:>12.1} {:>11.1}% {:>11.1}% {:>14.1} {:>14.1}",
            point.parameter,
            point.baseline_yield * 100.0,
            point.optimised_yield * 100.0,
            point.baseline_bit_area,
            point.optimised_bit_area
        );
    }
    println!(
        "optimised arrangement wins at every value: {}\n",
        sweep.optimised_always_wins()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = mspt_experiments::paper_base_config()?;
    print_sweep(&sigma_sensitivity(
        &base,
        &[20.0, 35.0, 50.0, 65.0, 80.0],
        8,
    )?);
    print_sweep(&window_sensitivity(
        &base,
        &[150.0, 200.0, 250.0, 300.0],
        8,
    )?);
    print_sweep(&alignment_sensitivity(
        &base,
        &[0.0, 8.0, 16.0, 24.0, 32.0],
        8,
    )?);
    print_sweep(&half_cave_sensitivity(&base, &[10, 20, 30, 40], 8)?);
    Ok(())
}
