//! Beyond the paper — the defect axis of Fig. 7: composite crossbar yield
//! against the fabrication-defect rate (broken nanowires + stuck
//! crosspoints) for the best code of each family, with deterministic
//! seed-sampled defect maps composed onto the decoder yield.
//!
//! Knobs (environment variables):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPT_DEFECT_SEED` | defect-map run seed | 2009 |
//! | `MSPT_ENGINE_THREADS` | engine worker threads | available parallelism |
//!
//! The table is bit-identical for any `MSPT_ENGINE_THREADS` value: defect
//! maps are assembled from independently seeded chunks, so the sharding
//! never changes the sample.

/// Environment variable overriding the defect-map run seed.
const DEFECT_SEED_ENV: &str = "MSPT_DEFECT_SEED";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::var(DEFECT_SEED_ENV)
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(mspt_experiments::FIG7_DEFECT_SEED);
    let engine = mspt_experiments::paper_engine();
    let report = mspt_experiments::fig7_defects_report_with(&engine, seed)?;
    print!("{report}");
    Ok(())
}
