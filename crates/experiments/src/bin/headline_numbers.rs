//! Computes the headline numbers of the paper's abstract and conclusions
//! (complexity saving, variability reduction, yield and area improvements)
//! from the same sweeps that regenerate the figures.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let headline = mspt_experiments::headline_numbers()?;
    print!("{headline}");
    Ok(())
}
