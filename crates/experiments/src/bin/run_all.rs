//! Regenerates every figure and the headline numbers in one run — the
//! command EXPERIMENTS.md is produced from.
//!
//! All reports share one parallel [`mspt_experiments::paper_engine`], so the
//! Fig. 7/Fig. 8 sweep points are evaluated once and the headline numbers
//! are served from the engine's memoized report cache.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = mspt_experiments::paper_engine();
    println!("==============================================================");
    println!(" Reproduction of the DAC 2009 MSPT nanowire-decoder evaluation");
    println!("==============================================================");
    println!(
        " engine: {} thread(s), {} samples per Monte-Carlo chunk\n",
        engine.config().threads,
        engine.config().chunk_size
    );
    print!("{}", mspt_experiments::fig5_report_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::fig6_report()?);
    println!();
    print!("{}", mspt_experiments::fig7_report_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::fig8_report_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::headline_numbers_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::disturbance_report_with(&engine)?);
    Ok(())
}
