//! Regenerates every figure and the headline numbers in one run — the
//! command EXPERIMENTS.md is produced from.
//!
//! All reports share one parallel [`mspt_experiments::paper_engine`], so the
//! Fig. 7/Fig. 8 sweep points are evaluated once and the headline numbers
//! are served from the engine's memoized report cache. Set `MSPT_CACHE_PATH`
//! to persist that cache across invocations: the file is loaded on start
//! (ignored when absent or stale) and rewritten on exit, so repeated runs
//! restart warm.

use std::path::Path;

use decoder_sim::CACHE_PATH_ENV;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = mspt_experiments::paper_engine();
    let cache_path = std::env::var(CACHE_PATH_ENV).ok().filter(|p| !p.is_empty());
    println!("==============================================================");
    println!(" Reproduction of the DAC 2009 MSPT nanowire-decoder evaluation");
    println!("==============================================================");
    println!(
        " engine: {} thread(s), {} samples per Monte-Carlo chunk",
        engine.config().threads,
        engine.config().chunk_size
    );
    match &cache_path {
        Some(path) => match engine.load_cache(Path::new(path)) {
            Ok(count) => println!(" warm cache: loaded {count} report(s) from {path}\n"),
            Err(error) => println!(" warm cache: starting cold ({error})\n"),
        },
        None => println!(),
    }
    print!("{}", mspt_experiments::fig5_report_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::fig6_report()?);
    println!();
    print!("{}", mspt_experiments::fig7_report_with(&engine)?);
    println!();
    print!(
        "{}",
        mspt_experiments::fig7_defects_report_with(&engine, mspt_experiments::FIG7_DEFECT_SEED)?
    );
    println!();
    print!("{}", mspt_experiments::fig8_report_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::headline_numbers_with(&engine)?);
    println!();
    print!("{}", mspt_experiments::disturbance_report_with(&engine)?);
    if let Some(path) = &cache_path {
        let saved = engine.save_cache(Path::new(path))?;
        println!("\nwarm cache: saved {saved} report(s) to {path}");
    }
    Ok(())
}
