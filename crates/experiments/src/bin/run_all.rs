//! Regenerates every figure and the headline numbers in one run — the
//! command EXPERIMENTS.md is produced from.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("==============================================================");
    println!(" Reproduction of the DAC 2009 MSPT nanowire-decoder evaluation");
    println!("==============================================================\n");
    print!("{}", mspt_experiments::fig5_report()?);
    println!();
    print!("{}", mspt_experiments::fig6_report()?);
    println!();
    print!("{}", mspt_experiments::fig7_report()?);
    println!();
    print!("{}", mspt_experiments::fig8_report()?);
    println!();
    print!("{}", mspt_experiments::headline_numbers()?);
    Ok(())
}
