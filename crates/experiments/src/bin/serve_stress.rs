//! Hammers the `mspt-serve` layer from N client threads with a Zipf-ish mix
//! of Fig. 5–8 configurations and prints throughput and hit rate — then
//! **gates** on the serving layer's contracts, so CI can run this binary
//! as-is:
//!
//! * every response must be bit-identical to a serial evaluation of the
//!   same configuration;
//! * a second pass over the same mix must be served entirely from the warm
//!   cache (100 % hit rate, zero misses).
//!
//! Knobs (all environment variables):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPT_STRESS_CLIENTS` | concurrent client threads | 8 |
//! | `MSPT_STRESS_REQUESTS` | wire requests per client per pass | 64 |
//! | `MSPT_STRESS_SEED` | run seed of the Zipf request streams | 2009 |
//! | `MSPT_ENGINE_THREADS` | engine worker threads | available parallelism |
//! | `MSPT_CACHE_CAPACITY` | report-cache bound | 4096 |
//! | `MSPT_CACHE_PATH` | warm-cache snapshot to load/save | unset |

use std::path::Path;
use std::sync::Arc;

use decoder_sim::{EngineConfig, ExecutionEngine, CACHE_PATH_ENV};
use mspt_serve::{run_stress, ReportServer, StressConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stress = StressConfig {
        clients: env_u64("MSPT_STRESS_CLIENTS", 8) as usize,
        requests_per_client: env_u64("MSPT_STRESS_REQUESTS", 64) as usize,
        seed: env_u64("MSPT_STRESS_SEED", 2_009),
    };
    let engine = Arc::new(ExecutionEngine::new(EngineConfig::default()));
    let cache_path = std::env::var(CACHE_PATH_ENV).ok().filter(|p| !p.is_empty());
    if let Some(path) = &cache_path {
        match engine.load_cache(Path::new(path)) {
            Ok(count) => println!("warm cache: loaded {count} report(s) from {path}"),
            Err(error) => println!("warm cache: starting cold ({error})"),
        }
    }
    let server = ReportServer::new(Arc::clone(&engine));
    let mix = mspt_experiments::stress_mix()?;

    println!("==========================================================");
    println!(" serve_stress — concurrent serving over the shared cache");
    println!("==========================================================");
    println!(
        " engine: {} thread(s); cache capacity {} in {} shard(s)",
        engine.config().threads,
        engine.cache_config().capacity,
        engine.cache_config().shards,
    );
    println!(
        " mix: {} distinct configuration(s); {} client(s) × {} request(s)/pass; seed {}",
        mix.len(),
        stress.clients,
        stress.requests_per_client,
        stress.seed
    );

    let first = run_stress(&server, &mix, &stress)?;
    println!(
        "pass 1 (cold): {:8.0} req/s  hit rate {:5.1}%  ({} hits / {} misses, {} mismatches)",
        first.throughput_rps(),
        first.hit_rate() * 100.0,
        first.hits,
        first.misses,
        first.mismatches
    );
    let second = run_stress(&server, &mix, &stress)?;
    println!(
        "pass 2 (warm): {:8.0} req/s  hit rate {:5.1}%  ({} hits / {} misses, {} mismatches)",
        second.throughput_rps(),
        second.hit_rate() * 100.0,
        second.hits,
        second.misses,
        second.mismatches
    );

    // The gates: bit-identical responses on both passes, fully warm second
    // pass. CI runs this binary and relies on a non-zero exit here.
    if first.mismatches != 0 || second.mismatches != 0 {
        return Err(format!(
            "served reports diverged from the serial reference ({} + {} mismatches)",
            first.mismatches, second.mismatches
        )
        .into());
    }
    if second.misses != 0 {
        return Err(format!(
            "second pass was not served entirely from the warm cache ({} misses)",
            second.misses
        )
        .into());
    }

    if let Some(path) = &cache_path {
        let saved = engine.save_cache(Path::new(path))?;
        println!("warm cache: saved {saved} report(s) to {path}");
    }
    println!(
        "serve_stress: OK — {} request(s) total, final cache: {:?}",
        server.request_count(),
        engine.cache_stats()
    );
    Ok(())
}
