//! Hammers the `mspt-serve` layer with a Zipf-ish mix of Fig. 5–8
//! configurations and **gates** on the serving layer's contracts, so CI can
//! run this binary as-is:
//!
//! * every response must be bit-identical to a serial evaluation of the
//!   same configuration;
//! * a second pass over the same mix must be served entirely from the warm
//!   cache (100 % hit rate, zero misses);
//! * over TCP, a zero-shed configuration must produce **zero** sheds, and
//!   the bounded dispatch queue must shed an over-quota connection with the
//!   framed, typed `overloaded` error — never a hang or a silent drop.
//!
//! With `MSPT_STRESS_TRANSPORT=tcp` the harness drives N real loopback
//! connections through the framed-TCP front end and reports sustained RPS
//! plus p50/p99/p999 round-trip latency from an HDR-style histogram;
//! `MSPT_STRESS_JSON=<path>` writes the numbers as a CI artifact whose
//! `benchmarks` rows feed `scripts/bench_compare.sh`.
//! `MSPT_STRESS_CODEC` picks the wire codec: `json` (rows keep the PR 6-era
//! `serve_tcp/*` ids, so trajectories stay comparable), `binary` (rows under
//! `serve_tcp_bin/*`), or `both` (one loadgen run per codec, both row sets
//! in one artifact). Every run also measures a 64-entry cache snapshot in
//! both persistence formats and **gates** on the binary one being ≥ 40 %
//! smaller than the JSON one.
//!
//! Knobs (all environment variables):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPT_STRESS_TRANSPORT` | `inproc` or `tcp` | inproc |
//! | `MSPT_STRESS_CLIENTS` | concurrent client threads / connections | 8 |
//! | `MSPT_STRESS_REQUESTS` | wire requests per client per pass | 64 |
//! | `MSPT_STRESS_SEED` | run seed of the Zipf request streams | 2009 |
//! | `MSPT_STRESS_CODEC` | TCP wire codec: `json`, `binary` or `both` | json |
//! | `MSPT_STRESS_JSON` | path of the JSON results artifact | unset |
//! | `MSPT_NET_WORKERS` | TCP worker pool size | available parallelism |
//! | `MSPT_NET_QUEUE` | TCP dispatch-queue bound | 64 |
//! | `MSPT_NET_ADDR` | TCP bind address | 127.0.0.1:0 |
//! | `MSPT_NET_SHED` | shed policy (`reply` / `close`) | reply |
//! | `MSPT_NET_DRAIN_MS` | shutdown drain grace (ms) | 250 |
//! | `MSPT_ENGINE_THREADS` | engine worker threads | available parallelism |
//! | `MSPT_CACHE_CAPACITY` | report-cache bound | 4096 |
//! | `MSPT_CACHE_PATH` | warm-cache snapshot to load/save | unset |
//! | `MSPT_CACHE_FORMAT` | snapshot encoding saved: `binary` or `json` | binary |
//! | `MSPT_CACHE_MAX_AGE_SECS` | drop binary snapshot rows older than this at load (0 = unlimited) | 0 |

use std::path::Path;
use std::sync::Arc;

use decoder_sim::codec::JsonValue;
use decoder_sim::{
    CacheConfig, CacheStats, DisturbanceKind, EngineConfig, ExecutionEngine, MonteCarloConfig,
    ReportCache, SamplingStats, SimulationPlatform, StageStats, CACHE_PATH_ENV,
};
use mspt_serve::{
    probe_shed, run_net_stress_codec, run_stress, NetServer, NetStressOutcome, ReportRequest,
    ReportServer, ServeConfig, StressConfig, WireCodec, STRESS_CODEC_ENV,
};

/// Environment variable selecting the transport (`inproc` or `tcp`).
const STRESS_TRANSPORT_ENV: &str = "MSPT_STRESS_TRANSPORT";
/// Environment variable naming the JSON results artifact path.
const STRESS_JSON_ENV: &str = "MSPT_STRESS_JSON";

/// How many entries the snapshot-size measurement fills its cache with —
/// the 64-entry figure the acceptance gate is stated against.
const SNAPSHOT_ENTRIES: usize = 64;

struct PassStats {
    hits: u64,
    misses: u64,
}

fn delta(before: &CacheStats, after: &CacheStats) -> PassStats {
    PassStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
    }
}

fn benchmark_row(id: &str, median_ns: f64) -> JsonValue {
    JsonValue::Object(vec![
        ("id".to_string(), JsonValue::String(id.to_string())),
        ("median_ns".to_string(), JsonValue::from_f64(median_ns)),
    ])
}

/// The per-stage memo rows of the engine's stage cache — one object per
/// stage, in `Stage::ALL` order. Rides alongside the aggregate report-cache
/// counters in the results artifact (new key, old fields untouched, so
/// pre-stage-cache consumers keep parsing).
fn stage_stats_json(rows: &[StageStats]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|row| {
                JsonValue::Object(vec![
                    (
                        "stage".to_string(),
                        JsonValue::String(row.stage.name().to_string()),
                    ),
                    ("hits".to_string(), JsonValue::from_u64(row.stats.hits)),
                    ("misses".to_string(), JsonValue::from_u64(row.stats.misses)),
                    (
                        "evictions".to_string(),
                        JsonValue::from_u64(row.stats.evictions),
                    ),
                ])
            })
            .collect(),
    )
}

fn print_stage_stats(rows: &[StageStats]) {
    println!("stage cache (hits / misses / evictions):");
    for row in rows {
        println!(
            "  {:<14} {:>8} / {:>6} / {:>4}",
            row.stage.name(),
            row.stats.hits,
            row.stats.misses,
            row.stats.evictions,
        );
    }
}

/// The adaptive-sampling measurement: one configuration sampled under a
/// fixed budget and again under a Wilson-score stopping target, plus the
/// engine's cumulative sampling counters.
struct SamplingDemo {
    fixed_used: usize,
    adaptive_used: usize,
    cap: usize,
    stats: SamplingStats,
}

/// The sampling demo's own defaults: a 4 096-sample budget under the
/// canonical 2009 seed, stopping at a 0.05 Wilson half-width. Any
/// `MSPT_MC_*` environment knob ([`MonteCarloConfig::from_env`]) overrides
/// the corresponding field for both arms of the comparison.
fn demo_sampling_config() -> MonteCarloConfig {
    let tuned = MonteCarloConfig::from_env();
    let defaults = MonteCarloConfig::default();
    let mut demo = MonteCarloConfig::fixed(
        if tuned.samples == defaults.samples {
            4_096
        } else {
            tuned.samples
        },
        if tuned.seed == defaults.seed {
            2_009
        } else {
            tuned.seed
        },
    )
    .with_target_half_width(tuned.target_half_width.unwrap_or(0.05))
    .with_confidence(tuned.confidence);
    if let Some(max_samples) = tuned.max_samples {
        demo = demo.with_max_samples(max_samples);
    }
    demo
}

/// Runs the fixed-vs-adaptive Monte-Carlo comparison on `engine` and
/// gates on the adaptive run never drawing more samples than the fixed one.
fn sampling_demo(
    engine: &ExecutionEngine,
    mix: &[ReportRequest],
) -> Result<SamplingDemo, Box<dyn std::error::Error>> {
    let config = mix[0].effective_config();
    let adaptive_config = demo_sampling_config();
    let fixed_config = MonteCarloConfig::fixed(adaptive_config.sample_cap(), adaptive_config.seed);
    let fixed = engine.monte_carlo_for_config(&config, fixed_config)?;
    let adaptive = engine.monte_carlo_for_config(&config, adaptive_config)?;
    if adaptive.samples_used > fixed.samples_used {
        return Err(format!(
            "adaptive sampling drew {} samples, more than the fixed budget of {}",
            adaptive.samples_used, fixed.samples_used
        )
        .into());
    }
    Ok(SamplingDemo {
        fixed_used: fixed.samples_used,
        adaptive_used: adaptive.samples_used,
        cap: adaptive.samples,
        stats: engine.sampling_stats(),
    })
}

/// The snapshot-size measurement: one cache, [`SNAPSHOT_ENTRIES`] rows,
/// both persistence encodings.
struct SnapshotSizes {
    json_bytes: u64,
    bin_bytes: u64,
}

impl SnapshotSizes {
    /// How much smaller the binary snapshot is, as a fraction of the JSON
    /// one (0.4 = 40 % smaller).
    fn saving(&self) -> f64 {
        if self.json_bytes == 0 {
            0.0
        } else {
            1.0 - self.bin_bytes as f64 / self.json_bytes as f64
        }
    }
}

/// Fills a dedicated cache with [`SNAPSHOT_ENTRIES`] distinct
/// configurations (one evaluated report, re-keyed under a sweep of
/// correlated-disturbance fractions — the snapshot encodes the full
/// config/report pair per row either way) and renders it in both snapshot
/// formats.
fn snapshot_sizes(mix: &[ReportRequest]) -> Result<SnapshotSizes, Box<dyn std::error::Error>> {
    let base = &mix[0];
    let report = SimulationPlatform::new(base.effective_config()).evaluate()?;
    let cache = ReportCache::new(CacheConfig::unsharded(SNAPSHOT_ENTRIES));
    for index in 0..SNAPSHOT_ENTRIES {
        let config = base
            .config
            .clone()
            .with_disturbance(DisturbanceKind::Correlated {
                shared_fraction: index as f64 / (2 * SNAPSHOT_ENTRIES) as f64,
            });
        let row = report.clone();
        cache.get_or_compute(&config, || Ok(row))?;
    }
    if cache.len() != SNAPSHOT_ENTRIES {
        return Err(format!(
            "snapshot-size cache holds {} entries, expected {SNAPSHOT_ENTRIES}",
            cache.len()
        )
        .into());
    }
    Ok(SnapshotSizes {
        json_bytes: cache.snapshot_json().len() as u64,
        bin_bytes: cache.snapshot_bin().len() as u64,
    })
}

/// Renders the loadgen results in the same `benchmarks` shape as
/// `BENCH_results.json`, so `scripts/bench_compare.sh` can diff two runs'
/// latency trajectories unchanged. `labeled` holds one `(row prefix,
/// outcome)` pair per codec run; the first is the primary outcome the
/// top-level scalars describe.
fn results_json(
    transport: &str,
    labeled: &[(String, NetStressOutcome)],
    sheds_exercised: bool,
    snapshot: &SnapshotSizes,
    stage_rows: &[StageStats],
    sampling: &SamplingDemo,
) -> String {
    let (_, outcome) = &labeled[0];
    let latency = &outcome.latency;
    let mut benchmarks = Vec::new();
    for (prefix, outcome) in labeled {
        let latency = &outcome.latency;
        let rps = outcome.throughput_rps();
        let ns_per_req = if rps > 0.0 && rps.is_finite() {
            1e9 / rps
        } else {
            0.0
        };
        let bytes_per_req = if outcome.requests == 0 {
            0.0
        } else {
            (outcome.bytes_sent + outcome.bytes_received) as f64 / outcome.requests as f64
        };
        benchmarks.push(benchmark_row(
            &format!("{prefix}/p50"),
            latency.quantile(0.5) as f64,
        ));
        benchmarks.push(benchmark_row(
            &format!("{prefix}/p99"),
            latency.quantile(0.99) as f64,
        ));
        benchmarks.push(benchmark_row(
            &format!("{prefix}/p999"),
            latency.quantile(0.999) as f64,
        ));
        benchmarks.push(benchmark_row(&format!("{prefix}/mean"), latency.mean()));
        benchmarks.push(benchmark_row(&format!("{prefix}/ns_per_req"), ns_per_req));
        benchmarks.push(benchmark_row(
            &format!("{prefix}/bytes_per_req"),
            bytes_per_req,
        ));
    }
    // The snapshot sizes ride along as benchmark rows too (the "ns" in the
    // field name is historical; bench_compare.sh only diffs medians by id).
    benchmarks.push(benchmark_row(
        "snapshot/json_bytes",
        snapshot.json_bytes as f64,
    ));
    benchmarks.push(benchmark_row(
        "snapshot/bin_bytes",
        snapshot.bin_bytes as f64,
    ));
    // The sampling comparison rides along the same way: medians by id.
    benchmarks.push(benchmark_row(
        "sampling/fixed_samples_used",
        sampling.fixed_used as f64,
    ));
    benchmarks.push(benchmark_row(
        "sampling/adaptive_samples_used",
        sampling.adaptive_used as f64,
    ));
    JsonValue::Object(vec![
        ("schema_version".to_string(), JsonValue::from_u64(1)),
        (
            "transport".to_string(),
            JsonValue::String(transport.to_string()),
        ),
        (
            "requests".to_string(),
            JsonValue::from_u64(outcome.requests),
        ),
        (
            "mismatches".to_string(),
            JsonValue::from_u64(outcome.mismatches),
        ),
        ("sheds".to_string(), JsonValue::from_u64(outcome.sheds)),
        (
            "wire_failures".to_string(),
            JsonValue::from_u64(outcome.wire_failures),
        ),
        (
            "shed_path_exercised".to_string(),
            JsonValue::Bool(sheds_exercised),
        ),
        (
            "rps".to_string(),
            JsonValue::from_f64(outcome.throughput_rps()),
        ),
        (
            "p50_ns".to_string(),
            JsonValue::from_u64(latency.quantile(0.5)),
        ),
        (
            "p99_ns".to_string(),
            JsonValue::from_u64(latency.quantile(0.99)),
        ),
        (
            "p999_ns".to_string(),
            JsonValue::from_u64(latency.quantile(0.999)),
        ),
        ("max_ns".to_string(), JsonValue::from_u64(latency.max())),
        ("mean_ns".to_string(), JsonValue::from_f64(latency.mean())),
        (
            "snapshot_size".to_string(),
            JsonValue::Object(vec![
                (
                    "entries".to_string(),
                    JsonValue::from_u64(SNAPSHOT_ENTRIES as u64),
                ),
                (
                    "json_bytes".to_string(),
                    JsonValue::from_u64(snapshot.json_bytes),
                ),
                (
                    "bin_bytes".to_string(),
                    JsonValue::from_u64(snapshot.bin_bytes),
                ),
            ]),
        ),
        ("stage_cache".to_string(), stage_stats_json(stage_rows)),
        (
            "sampling".to_string(),
            JsonValue::Object(vec![
                (
                    "fixed_samples_used".to_string(),
                    JsonValue::from_u64(sampling.fixed_used as u64),
                ),
                (
                    "adaptive_samples_used".to_string(),
                    JsonValue::from_u64(sampling.adaptive_used as u64),
                ),
                (
                    "sample_cap".to_string(),
                    JsonValue::from_u64(sampling.cap as u64),
                ),
                ("runs".to_string(), JsonValue::from_u64(sampling.stats.runs)),
                (
                    "samples_requested".to_string(),
                    JsonValue::from_u64(sampling.stats.samples_requested),
                ),
                (
                    "samples_used".to_string(),
                    JsonValue::from_u64(sampling.stats.samples_used),
                ),
            ]),
        ),
        ("benchmarks".to_string(), JsonValue::Array(benchmarks)),
    ])
    .render()
}

fn print_pass(label: &str, outcome: &NetStressOutcome, pass: &PassStats) {
    println!(
        "{label}: {:8.0} req/s  p50 {:7.1}µs  p99 {:7.1}µs  p999 {:7.1}µs  hit rate {:5.1}%  ({} hits / {} misses, {} mismatches, {} sheds)",
        outcome.throughput_rps(),
        outcome.latency.quantile(0.5) as f64 / 1e3,
        outcome.latency.quantile(0.99) as f64 / 1e3,
        outcome.latency.quantile(0.999) as f64 / 1e3,
        hit_rate(pass) * 100.0,
        pass.hits,
        pass.misses,
        outcome.mismatches,
        outcome.sheds,
    );
}

fn hit_rate(pass: &PassStats) -> f64 {
    let total = pass.hits + pass.misses;
    if total == 0 {
        0.0
    } else {
        pass.hits as f64 / total as f64
    }
}

fn gate(outcome: &NetStressOutcome, label: &str) -> Result<(), String> {
    if outcome.mismatches != 0 {
        return Err(format!(
            "{label}: served reports diverged from the serial reference ({} mismatches)",
            outcome.mismatches
        ));
    }
    if outcome.sheds != 0 {
        return Err(format!(
            "{label}: a zero-shed configuration shed {} request(s)",
            outcome.sheds
        ));
    }
    if outcome.wire_failures != 0 {
        return Err(format!(
            "{label}: {} non-overloaded wire error(s)",
            outcome.wire_failures
        ));
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every knob is read exactly once, here, through the typed configs.
    let stress = StressConfig::from_env();
    let transport = std::env::var(STRESS_TRANSPORT_ENV).unwrap_or_else(|_| "inproc".to_string());
    let artifact = std::env::var(STRESS_JSON_ENV)
        .ok()
        .filter(|p| !p.is_empty());

    let engine = Arc::new(ExecutionEngine::new(EngineConfig::default()));
    let cache_path = std::env::var(CACHE_PATH_ENV).ok().filter(|p| !p.is_empty());
    if let Some(path) = &cache_path {
        match engine.load_cache(Path::new(path)) {
            Ok(count) => println!("warm cache: loaded {count} report(s) from {path}"),
            Err(error) => println!("warm cache: starting cold ({error})"),
        }
    }
    let server = ReportServer::new(Arc::clone(&engine));
    let mix = mspt_experiments::stress_mix()?;

    println!("==========================================================");
    println!(" serve_stress — {transport} serving over the shared cache");
    println!("==========================================================");
    println!(
        " engine: {} thread(s); cache capacity {} in {} shard(s)",
        engine.config().threads,
        engine.cache_config().capacity,
        engine.cache_config().shards,
    );
    println!(
        " mix: {} distinct configuration(s); {} client(s) × {} request(s)/pass; seed {}",
        mix.len(),
        stress.clients,
        stress.requests_per_client,
        stress.seed
    );

    let (labeled, shed_exercised) = match transport.trim() {
        "tcp" => {
            let serve_config = ServeConfig::from_env();
            let codecs: Vec<WireCodec> = match std::env::var(STRESS_CODEC_ENV)
                .unwrap_or_default()
                .trim()
                .to_ascii_lowercase()
                .as_str()
            {
                "" | "json" => vec![WireCodec::Json],
                "binary" => vec![WireCodec::Binary],
                "both" => vec![WireCodec::Json, WireCodec::Binary],
                other => {
                    return Err(format!(
                        "unknown {STRESS_CODEC_ENV} value {other:?} (expected json, binary or both)"
                    )
                    .into());
                }
            };
            println!(
                " tcp: {} worker(s), queue bound {}, shed {:?}, drain {:?}, codec(s) {:?}",
                serve_config.workers,
                serve_config.queue_bound,
                serve_config.shed_policy,
                serve_config.drain_grace,
                codecs,
            );
            let handle = NetServer::bind(serve_config, Arc::new(server.clone()))?;
            println!(" tcp: listening on {}", handle.local_addr());

            let mut labeled: Vec<(String, NetStressOutcome)> = Vec::new();
            for (run, codec) in codecs.iter().enumerate() {
                let name = codec.as_str();
                let before = engine.cache_stats();
                let first = run_net_stress_codec(handle.local_addr(), &mix, &stress, *codec)?;
                let mid = engine.cache_stats();
                // Only the very first pass of the very first codec runs
                // cold; later codec runs reuse the warm cache, which is the
                // point — the codec delta is pure wire cost.
                let cold = if run == 0 { "cold" } else { "warm" };
                print_pass(
                    &format!("{name} pass 1 ({cold})"),
                    &first,
                    &delta(&before, &mid),
                );
                let second = run_net_stress_codec(handle.local_addr(), &mix, &stress, *codec)?;
                let after = engine.cache_stats();
                let warm = delta(&mid, &after);
                print_pass(&format!("{name} pass 2 (warm)"), &second, &warm);
                if warm.misses != 0 {
                    return Err(format!(
                        "{name} second pass was not served entirely from the warm cache ({} misses)",
                        warm.misses
                    )
                    .into());
                }
                gate(&first, &format!("{name} pass 1")).map_err(std::io::Error::other)?;
                gate(&second, &format!("{name} pass 2")).map_err(std::io::Error::other)?;
                // JSON keeps the PR 6-era row ids so bench trajectories stay
                // comparable; binary rows ride alongside under their own ids.
                let prefix = match codec {
                    WireCodec::Json => "serve_tcp".to_string(),
                    WireCodec::Binary => "serve_tcp_bin".to_string(),
                };
                println!(
                    "{name} wire cost: {:.0} bytes/request ({} sent + {} received over {} requests)",
                    (second.bytes_sent + second.bytes_received) as f64 / second.requests as f64,
                    second.bytes_sent,
                    second.bytes_received,
                    second.requests,
                );
                labeled.push((prefix, second));
            }

            // Exercise the backpressure path against a deliberately tiny
            // dedicated server: 1 worker, queue bound 1 — the third
            // connection must receive the framed, typed overloaded error.
            let tiny = NetServer::bind(
                ServeConfig {
                    workers: 1,
                    queue_bound: 1,
                    ..ServeConfig::default()
                },
                Arc::new(server.clone()),
            )?;
            let shed = probe_shed(&tiny, &mix[0].to_json_string())?;
            println!("shed probe: over-quota connection refused with typed {shed}");
            tiny.shutdown();

            let served = handle.served();
            handle.shutdown();
            println!("tcp: {served} frame(s) served, graceful shutdown drained");
            (labeled, true)
        }
        "inproc" => {
            let first = run_stress(&server, &mix, &stress)?;
            let second = run_stress(&server, &mix, &stress)?;
            for (label, pass) in [("pass 1 (cold)", &first), ("pass 2 (warm)", &second)] {
                println!(
                    "{label}: {:8.0} req/s  hit rate {:5.1}%  ({} hits / {} misses, {} mismatches)",
                    pass.throughput_rps(),
                    pass.hit_rate() * 100.0,
                    pass.hits,
                    pass.misses,
                    pass.mismatches
                );
            }
            // Adapt to the common gate/report shape (no sheds in-process;
            // per-request latency and wire bytes are not measured on this
            // transport).
            let adapt = |pass: &mspt_serve::StressOutcome| NetStressOutcome {
                requests: pass.requests,
                mismatches: pass.mismatches,
                sheds: 0,
                wire_failures: 0,
                elapsed: pass.elapsed,
                latency: mspt_serve::LatencyHistogram::new(),
                bytes_sent: 0,
                bytes_received: 0,
            };
            if second.misses != 0 {
                return Err(format!(
                    "second pass was not served entirely from the warm cache ({} misses)",
                    second.misses
                )
                .into());
            }
            gate(&adapt(&first), "pass 1").map_err(std::io::Error::other)?;
            let outcome = adapt(&second);
            gate(&outcome, "pass 2").map_err(std::io::Error::other)?;
            (vec![("serve_inproc".to_string(), outcome)], false)
        }
        other => {
            return Err(format!(
                "unknown {STRESS_TRANSPORT_ENV} value {other:?} (expected inproc or tcp)"
            )
            .into());
        }
    };

    // The snapshot-size gate: the binary persistence format must stay at
    // least 40 % smaller than JSON for a 64-entry cache.
    let snapshot = snapshot_sizes(&mix)?;
    println!(
        "snapshot size: {SNAPSHOT_ENTRIES} entries — json {} bytes, binary {} bytes ({:.1}% smaller)",
        snapshot.json_bytes,
        snapshot.bin_bytes,
        snapshot.saving() * 100.0,
    );
    if snapshot.saving() < 0.40 {
        return Err(format!(
            "binary snapshot is only {:.1}% smaller than JSON (gate: >= 40%)",
            snapshot.saving() * 100.0
        )
        .into());
    }

    // The adaptive-sampling demonstration: the same configuration under a
    // fixed budget vs a Wilson-score target, plus the engine's counters.
    let sampling = sampling_demo(&engine, &mix)?;
    println!(
        "monte-carlo sampling: fixed used {} / {}, adaptive used {} / {} ({:.1}x fewer)",
        sampling.fixed_used,
        sampling.cap,
        sampling.adaptive_used,
        sampling.cap,
        sampling.fixed_used as f64 / sampling.adaptive_used.max(1) as f64,
    );
    println!(
        "sampling stats: {} run(s), {} sample(s) requested, {} drawn",
        sampling.stats.runs, sampling.stats.samples_requested, sampling.stats.samples_used,
    );

    if let Some(path) = &artifact {
        let rendered = results_json(
            transport.trim(),
            &labeled,
            shed_exercised,
            &snapshot,
            &server.stage_stats(),
            &sampling,
        );
        std::fs::write(path, rendered.as_bytes())?;
        println!("results artifact: wrote {path}");
    }

    if let Some(path) = &cache_path {
        let saved = engine.save_cache(Path::new(path))?;
        println!("warm cache: saved {saved} report(s) to {path}");
    }
    print_stage_stats(&server.stage_stats());
    println!(
        "serve_stress: OK — {} request(s) total, final cache: {:?}",
        server.request_count(),
        engine.cache_stats()
    );
    Ok(())
}
