//! Hammers the `mspt-serve` layer with a Zipf-ish mix of Fig. 5–8
//! configurations and **gates** on the serving layer's contracts, so CI can
//! run this binary as-is:
//!
//! * every response must be bit-identical to a serial evaluation of the
//!   same configuration;
//! * a second pass over the same mix must be served entirely from the warm
//!   cache (100 % hit rate, zero misses);
//! * over TCP, a zero-shed configuration must produce **zero** sheds, and
//!   the bounded dispatch queue must shed an over-quota connection with the
//!   framed, typed `overloaded` error — never a hang or a silent drop.
//!
//! With `MSPT_STRESS_TRANSPORT=tcp` the harness drives N real loopback
//! connections through the framed-TCP front end and reports sustained RPS
//! plus p50/p99/p999 round-trip latency from an HDR-style histogram;
//! `MSPT_STRESS_JSON=<path>` writes the numbers as a CI artifact whose
//! `benchmarks` rows feed `scripts/bench_compare.sh`.
//!
//! Knobs (all environment variables):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPT_STRESS_TRANSPORT` | `inproc` or `tcp` | inproc |
//! | `MSPT_STRESS_CLIENTS` | concurrent client threads / connections | 8 |
//! | `MSPT_STRESS_REQUESTS` | wire requests per client per pass | 64 |
//! | `MSPT_STRESS_SEED` | run seed of the Zipf request streams | 2009 |
//! | `MSPT_STRESS_JSON` | path of the JSON results artifact | unset |
//! | `MSPT_NET_WORKERS` | TCP worker pool size | available parallelism |
//! | `MSPT_NET_QUEUE` | TCP dispatch-queue bound | 64 |
//! | `MSPT_NET_ADDR` | TCP bind address | 127.0.0.1:0 |
//! | `MSPT_NET_SHED` | shed policy (`reply` / `close`) | reply |
//! | `MSPT_NET_DRAIN_MS` | shutdown drain grace (ms) | 250 |
//! | `MSPT_ENGINE_THREADS` | engine worker threads | available parallelism |
//! | `MSPT_CACHE_CAPACITY` | report-cache bound | 4096 |
//! | `MSPT_CACHE_PATH` | warm-cache snapshot to load/save | unset |

use std::path::Path;
use std::sync::Arc;

use decoder_sim::codec::JsonValue;
use decoder_sim::{CacheStats, EngineConfig, ExecutionEngine, CACHE_PATH_ENV};
use mspt_serve::{
    probe_shed, run_net_stress, run_stress, NetServer, NetStressOutcome, ReportServer, ServeConfig,
    StressConfig,
};

/// Environment variable selecting the transport (`inproc` or `tcp`).
const STRESS_TRANSPORT_ENV: &str = "MSPT_STRESS_TRANSPORT";
/// Environment variable naming the JSON results artifact path.
const STRESS_JSON_ENV: &str = "MSPT_STRESS_JSON";

struct PassStats {
    hits: u64,
    misses: u64,
}

fn delta(before: &CacheStats, after: &CacheStats) -> PassStats {
    PassStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
    }
}

fn benchmark_row(id: &str, median_ns: f64) -> JsonValue {
    JsonValue::Object(vec![
        ("id".to_string(), JsonValue::String(id.to_string())),
        ("median_ns".to_string(), JsonValue::from_f64(median_ns)),
    ])
}

/// Renders the loadgen results in the same `benchmarks` shape as
/// `BENCH_results.json`, so `scripts/bench_compare.sh` can diff two runs'
/// latency trajectories unchanged.
fn results_json(transport: &str, outcome: &NetStressOutcome, sheds_exercised: bool) -> String {
    let latency = &outcome.latency;
    let prefix = format!("serve_{transport}");
    let rps = outcome.throughput_rps();
    let ns_per_req = if rps > 0.0 && rps.is_finite() {
        1e9 / rps
    } else {
        0.0
    };
    JsonValue::Object(vec![
        ("schema_version".to_string(), JsonValue::from_u64(1)),
        (
            "transport".to_string(),
            JsonValue::String(transport.to_string()),
        ),
        (
            "requests".to_string(),
            JsonValue::from_u64(outcome.requests),
        ),
        (
            "mismatches".to_string(),
            JsonValue::from_u64(outcome.mismatches),
        ),
        ("sheds".to_string(), JsonValue::from_u64(outcome.sheds)),
        (
            "wire_failures".to_string(),
            JsonValue::from_u64(outcome.wire_failures),
        ),
        (
            "shed_path_exercised".to_string(),
            JsonValue::Bool(sheds_exercised),
        ),
        ("rps".to_string(), JsonValue::from_f64(rps)),
        (
            "p50_ns".to_string(),
            JsonValue::from_u64(latency.quantile(0.5)),
        ),
        (
            "p99_ns".to_string(),
            JsonValue::from_u64(latency.quantile(0.99)),
        ),
        (
            "p999_ns".to_string(),
            JsonValue::from_u64(latency.quantile(0.999)),
        ),
        ("max_ns".to_string(), JsonValue::from_u64(latency.max())),
        ("mean_ns".to_string(), JsonValue::from_f64(latency.mean())),
        (
            "benchmarks".to_string(),
            JsonValue::Array(vec![
                benchmark_row(&format!("{prefix}/p50"), latency.quantile(0.5) as f64),
                benchmark_row(&format!("{prefix}/p99"), latency.quantile(0.99) as f64),
                benchmark_row(&format!("{prefix}/p999"), latency.quantile(0.999) as f64),
                benchmark_row(&format!("{prefix}/mean"), latency.mean()),
                benchmark_row(&format!("{prefix}/ns_per_req"), ns_per_req),
            ]),
        ),
    ])
    .render()
}

fn print_pass(label: &str, outcome: &NetStressOutcome, pass: &PassStats) {
    println!(
        "{label}: {:8.0} req/s  p50 {:7.1}µs  p99 {:7.1}µs  p999 {:7.1}µs  hit rate {:5.1}%  ({} hits / {} misses, {} mismatches, {} sheds)",
        outcome.throughput_rps(),
        outcome.latency.quantile(0.5) as f64 / 1e3,
        outcome.latency.quantile(0.99) as f64 / 1e3,
        outcome.latency.quantile(0.999) as f64 / 1e3,
        hit_rate(pass) * 100.0,
        pass.hits,
        pass.misses,
        outcome.mismatches,
        outcome.sheds,
    );
}

fn hit_rate(pass: &PassStats) -> f64 {
    let total = pass.hits + pass.misses;
    if total == 0 {
        0.0
    } else {
        pass.hits as f64 / total as f64
    }
}

fn gate(outcome: &NetStressOutcome, label: &str) -> Result<(), String> {
    if outcome.mismatches != 0 {
        return Err(format!(
            "{label}: served reports diverged from the serial reference ({} mismatches)",
            outcome.mismatches
        ));
    }
    if outcome.sheds != 0 {
        return Err(format!(
            "{label}: a zero-shed configuration shed {} request(s)",
            outcome.sheds
        ));
    }
    if outcome.wire_failures != 0 {
        return Err(format!(
            "{label}: {} non-overloaded wire error(s)",
            outcome.wire_failures
        ));
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every knob is read exactly once, here, through the typed configs.
    let stress = StressConfig::from_env();
    let transport = std::env::var(STRESS_TRANSPORT_ENV).unwrap_or_else(|_| "inproc".to_string());
    let artifact = std::env::var(STRESS_JSON_ENV)
        .ok()
        .filter(|p| !p.is_empty());

    let engine = Arc::new(ExecutionEngine::new(EngineConfig::default()));
    let cache_path = std::env::var(CACHE_PATH_ENV).ok().filter(|p| !p.is_empty());
    if let Some(path) = &cache_path {
        match engine.load_cache(Path::new(path)) {
            Ok(count) => println!("warm cache: loaded {count} report(s) from {path}"),
            Err(error) => println!("warm cache: starting cold ({error})"),
        }
    }
    let server = ReportServer::new(Arc::clone(&engine));
    let mix = mspt_experiments::stress_mix()?;

    println!("==========================================================");
    println!(" serve_stress — {transport} serving over the shared cache");
    println!("==========================================================");
    println!(
        " engine: {} thread(s); cache capacity {} in {} shard(s)",
        engine.config().threads,
        engine.cache_config().capacity,
        engine.cache_config().shards,
    );
    println!(
        " mix: {} distinct configuration(s); {} client(s) × {} request(s)/pass; seed {}",
        mix.len(),
        stress.clients,
        stress.requests_per_client,
        stress.seed
    );

    let (first, second, shed_exercised) = match transport.trim() {
        "tcp" => {
            let serve_config = ServeConfig::from_env();
            println!(
                " tcp: {} worker(s), queue bound {}, shed {:?}, drain {:?}",
                serve_config.workers,
                serve_config.queue_bound,
                serve_config.shed_policy,
                serve_config.drain_grace,
            );
            let handle = NetServer::bind(serve_config, Arc::new(server.clone()))?;
            println!(" tcp: listening on {}", handle.local_addr());

            let before = engine.cache_stats();
            let first = run_net_stress(handle.local_addr(), &mix, &stress)?;
            let mid = engine.cache_stats();
            print_pass("pass 1 (cold)", &first, &delta(&before, &mid));
            let second = run_net_stress(handle.local_addr(), &mix, &stress)?;
            let after = engine.cache_stats();
            let warm = delta(&mid, &after);
            print_pass("pass 2 (warm)", &second, &warm);
            if warm.misses != 0 {
                return Err(format!(
                    "second pass was not served entirely from the warm cache ({} misses)",
                    warm.misses
                )
                .into());
            }

            // Exercise the backpressure path against a deliberately tiny
            // dedicated server: 1 worker, queue bound 1 — the third
            // connection must receive the framed, typed overloaded error.
            let tiny = NetServer::bind(
                ServeConfig {
                    workers: 1,
                    queue_bound: 1,
                    ..ServeConfig::default()
                },
                Arc::new(server.clone()),
            )?;
            let shed = probe_shed(&tiny, &mix[0].to_json_string())?;
            println!("shed probe: over-quota connection refused with typed {shed}");
            tiny.shutdown();

            let served = handle.served();
            handle.shutdown();
            println!("tcp: {served} frame(s) served, graceful shutdown drained");
            (first, second, true)
        }
        "inproc" => {
            let first = run_stress(&server, &mix, &stress)?;
            let second = run_stress(&server, &mix, &stress)?;
            for (label, pass) in [("pass 1 (cold)", &first), ("pass 2 (warm)", &second)] {
                println!(
                    "{label}: {:8.0} req/s  hit rate {:5.1}%  ({} hits / {} misses, {} mismatches)",
                    pass.throughput_rps(),
                    pass.hit_rate() * 100.0,
                    pass.hits,
                    pass.misses,
                    pass.mismatches
                );
            }
            // Adapt to the common gate/report shape (no sheds in-process;
            // per-request latency is not measured on this transport).
            let adapt = |pass: &mspt_serve::StressOutcome| NetStressOutcome {
                requests: pass.requests,
                mismatches: pass.mismatches,
                sheds: 0,
                wire_failures: 0,
                elapsed: pass.elapsed,
                latency: mspt_serve::LatencyHistogram::new(),
            };
            if second.misses != 0 {
                return Err(format!(
                    "second pass was not served entirely from the warm cache ({} misses)",
                    second.misses
                )
                .into());
            }
            (adapt(&first), adapt(&second), false)
        }
        other => {
            return Err(format!(
                "unknown {STRESS_TRANSPORT_ENV} value {other:?} (expected inproc or tcp)"
            )
            .into());
        }
    };

    // The gates: bit-identical responses on both passes, zero unexpected
    // sheds, fully warm second pass. CI runs this binary and relies on a
    // non-zero exit here.
    gate(&first, "pass 1").map_err(std::io::Error::other)?;
    gate(&second, "pass 2").map_err(std::io::Error::other)?;

    if let Some(path) = &artifact {
        let rendered = results_json(transport.trim(), &second, shed_exercised);
        std::fs::write(path, rendered.as_bytes())?;
        println!("results artifact: wrote {path}");
    }

    if let Some(path) = &cache_path {
        let saved = engine.save_cache(Path::new(path))?;
        println!("warm cache: saved {saved} report(s) to {path}");
    }
    println!(
        "serve_stress: OK — {} request(s) total, final cache: {:?}",
        server.request_count(),
        engine.cache_stats()
    );
    Ok(())
}
