//! Regenerates Fig. 6 of the paper: normalised variability maps
//! sqrt(Σ)/σ_T for binary TC, GC and BGC at code lengths 8 and 10,
//! N = 20 nanowires per half cave.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = mspt_experiments::fig6_report()?;
    print!("{report}");
    Ok(())
}
