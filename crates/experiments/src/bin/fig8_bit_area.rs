//! Regenerates Fig. 8 of the paper: average area per functional bit for
//! every code family and length on the 16 kB crossbar platform.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = mspt_experiments::fig8_report()?;
    print!("{report}");
    Ok(())
}
