//! Regenerates Fig. 7 of the paper: crossbar yield (percentage of
//! addressable crosspoints) against code length for TC/BGC and HC/AHC on the
//! 16 kB crossbar platform.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = mspt_experiments::fig7_report()?;
    print!("{report}");
    Ok(())
}
