//! Regenerates Fig. 5 of the paper: fabrication complexity (number of
//! additional lithography/doping steps) for tree and Gray codes at binary,
//! ternary and quaternary logic, N = 10 nanowires per half cave.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = mspt_experiments::fig5_report()?;
    print!("{report}");
    Ok(())
}
