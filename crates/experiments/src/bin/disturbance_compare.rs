//! Beyond the paper's scope: compares the Monte-Carlo addressability of the
//! best balanced-Gray decoder under Gaussian, heavy-tailed Laplace and
//! correlated inter-region dose disturbances — the distributions the
//! analytic model cannot integrate in closed form.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = mspt_experiments::disturbance_report()?;
    print!("{report}");
    Ok(())
}
