//! Cross-thread equivalence and RNG-discipline regression tests for the
//! parallel execution engine: the engine must be bit-identical to the serial
//! path for Monte-Carlo at any thread count, element-identical for sweeps,
//! and the exact Monte-Carlo outcome for a fixed seed is pinned so future
//! changes to the sampling discipline are loud.

use crossbar_array::DefectModel;
use decoder_sim::{
    full_sweep, monte_carlo_addressability, monte_carlo_with_disturbance, DefectKind,
    DisturbanceKind, EngineConfig, ExecutionEngine, GaussianDisturbance, MonteCarloConfig,
    SimConfig, DEFAULT_CHUNK_SIZE,
};
use device_physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
use mspt_fabrication::{PatternMatrix, VariabilityMatrix};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn variability(kind: CodeKind, length: usize, nanowires: usize) -> VariabilityMatrix {
    let seq = CodeSpec::new(kind, LogicLevel::BINARY, length)
        .unwrap()
        .generate()
        .unwrap()
        .take_cyclic(nanowires)
        .unwrap();
    let ladder = DopingLadder::from_model(
        &ThresholdModel::default_mspt(),
        2,
        (Volts::new(0.0), Volts::new(1.0)),
    )
    .unwrap();
    VariabilityMatrix::from_pattern(
        &PatternMatrix::from_sequence(&seq).unwrap(),
        &ladder,
        &VariabilityModel::paper_default(),
    )
    .unwrap()
}

fn engine(threads: usize) -> ExecutionEngine {
    ExecutionEngine::new(EngineConfig {
        threads,
        chunk_size: DEFAULT_CHUNK_SIZE,
    })
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let variability = variability(CodeKind::Tree, 8, 10);
    let model = VariabilityModel::paper_default();
    let window = Volts::new(0.25);
    let config = MonteCarloConfig::fixed(1_000, 42);
    let serial = monte_carlo_addressability(&variability, &model, window, config).unwrap();
    for threads in [1usize, 2, 4] {
        let parallel = engine(threads)
            .monte_carlo_addressability(&variability, &model, window, config)
            .unwrap();
        assert_eq!(
            serial, parallel,
            "outcome diverged at {threads} engine threads"
        );
    }
}

/// The adaptive stopping decision is evaluated in deterministic chunk order
/// over thread-independent per-chunk counts, so `samples_used`, the profile,
/// and the CI bounds must all be bit-identical at 1, 4 and 8 engine threads —
/// the adaptive extension of the cross-thread determinism gate.
#[test]
fn adaptive_stopping_is_bit_identical_across_thread_counts() {
    let variability = variability(CodeKind::Gray, 8, 16);
    let model = VariabilityModel::paper_default();
    let window = Volts::new(0.25);
    let config = MonteCarloConfig::fixed(20_000, 42).with_target_half_width(0.05);
    let reference = engine(1)
        .monte_carlo_addressability(&variability, &model, window, config)
        .unwrap();
    assert!(
        reference.samples_used < reference.samples,
        "the target must stop sampling before the cap for this gate to bite"
    );
    for threads in [4usize, 8] {
        let parallel = engine(threads)
            .monte_carlo_addressability(&variability, &model, window, config)
            .unwrap();
        assert_eq!(
            reference.samples_used, parallel.samples_used,
            "adaptive stopping point diverged at {threads} engine threads"
        );
        assert_eq!(
            reference, parallel,
            "adaptive outcome diverged at {threads} engine threads"
        );
    }
}

#[test]
fn full_sweep_is_element_identical_across_thread_counts() {
    let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
    let base = SimConfig::paper_defaults(code).unwrap();
    let kinds = [CodeKind::Tree, CodeKind::Gray, CodeKind::Hot];
    let lengths = [4usize, 6, 8];
    let serial = full_sweep(&base, &kinds, LogicLevel::BINARY, &lengths).unwrap();
    for threads in [2usize, 4] {
        let parallel = engine(threads)
            .full_sweep(&base, &kinds, LogicLevel::BINARY, &lengths)
            .unwrap();
        assert_eq!(serial, parallel, "sweep diverged at {threads} threads");
    }
}

/// Pins the exact per-nanowire acceptance counts for a fixed seed. Any change
/// to the RNG discipline — chunk seeding, Box–Muller pair handling, draw
/// order, chunk size — shows up here as a loud, exact failure rather than a
/// silent statistical drift.
#[test]
fn fixed_seed_outcome_is_pinned() {
    let variability = variability(CodeKind::Tree, 8, 10);
    let model = VariabilityModel::paper_default();
    let config = MonteCarloConfig::fixed(500, 42);
    let outcome =
        monte_carlo_addressability(&variability, &model, Volts::new(0.25), config).unwrap();
    assert_eq!(outcome.samples, 500);
    let counts: Vec<usize> = outcome
        .profile
        .probabilities()
        .iter()
        .map(|p| (p * 500.0).round() as usize)
        .collect();
    let pinned: Vec<usize> = vec![373, 394, 405, 421, 453, 476, 487, 494, 500, 500];
    assert_eq!(counts, pinned, "probabilities: {:?}", outcome.profile);

    // The trait-based Gaussian path is the *same* path: explicitly threading
    // GaussianDisturbance must reproduce the pre-refactor RNG stream (and
    // therefore the pinned counts above) bit-for-bit.
    let via_trait = monte_carlo_with_disturbance(
        &variability,
        &model,
        Volts::new(0.25),
        config,
        &GaussianDisturbance,
    )
    .unwrap();
    assert_eq!(outcome, via_trait);
}

#[test]
fn non_gaussian_disturbances_are_bit_identical_across_thread_counts() {
    let variability = variability(CodeKind::Gray, 8, 12);
    let model = VariabilityModel::paper_default();
    let window = Volts::new(0.25);
    let config = MonteCarloConfig::fixed(1_000, 7);
    for kind in [
        DisturbanceKind::Laplace,
        DisturbanceKind::Correlated {
            shared_fraction: 0.5,
        },
    ] {
        let disturbance = kind.model().unwrap();
        let serial = monte_carlo_with_disturbance(
            &variability,
            &model,
            window,
            config,
            disturbance.as_ref(),
        )
        .unwrap();
        for threads in [2usize, 4] {
            let parallel = engine(threads)
                .monte_carlo_with_disturbance(
                    &variability,
                    &model,
                    window,
                    config,
                    disturbance.as_ref(),
                )
                .unwrap();
            assert_eq!(
                serial, parallel,
                "{kind} outcome diverged at {threads} engine threads"
            );
        }
    }
}

#[test]
fn config_carried_disturbance_reaches_the_sampler() {
    let code = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap();
    let base = SimConfig::paper_defaults(code).unwrap();
    let config = MonteCarloConfig::fixed(500, 3);
    let engine = engine(2);
    // A Gaussian-configured SimConfig goes through the identical stream as
    // the plain entry point...
    let platform = decoder_sim::SimulationPlatform::new(base.clone());
    let direct = engine
        .monte_carlo_addressability(
            &platform.variability().unwrap(),
            &base.variability_model().unwrap(),
            base.decision_window().unwrap(),
            config,
        )
        .unwrap();
    assert_eq!(
        engine.monte_carlo_for_config(&base, config).unwrap(),
        direct
    );
    // ...while a heavy-tailed configuration samples a different stream.
    let heavy = base.with_disturbance(DisturbanceKind::Laplace);
    assert_ne!(
        engine.monte_carlo_for_config(&heavy, config).unwrap(),
        direct
    );
}

#[test]
fn defect_maps_are_bit_identical_across_thread_counts() {
    let model = DefectModel::new(0.05, 0.02).unwrap();
    // 300 rows spans five 64-row bands, the last one partial.
    let (rows, columns, seed) = (300usize, 70usize, 42u64);
    let serial = model.sample_map(rows, columns, seed).unwrap();
    for threads in [1usize, 2, 4] {
        let sharded = engine(threads)
            .sample_defect_map(&model, rows, columns, seed)
            .unwrap();
        assert_eq!(serial, sharded, "map diverged at {threads} engine threads");
    }
    assert!(engine(2).sample_defect_map(&model, 0, 4, seed).is_err());
}

/// The whole-report determinism gate for the defect pipeline: a
/// defect-composed `PlatformReport` — engine-sharded map sampling composed
/// with the decoder yield through the report cache — must be bit-identical
/// to the serial platform evaluation at every thread count, and across the
/// defect axis the decoder quantities must stay pinned to the defect-free
/// run.
#[test]
fn defect_composed_reports_are_bit_identical_across_thread_counts() {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
    let base = SimConfig::paper_defaults(code).unwrap();
    for defects in [
        DefectKind::None,
        DefectKind::sampled(0.05, 0.02, 2_009).unwrap(),
        DefectKind::sampled(0.1, 0.05, 7).unwrap(),
    ] {
        let config = base.clone().with_defects(defects);
        // Serial reference: platform evaluation, no engine, no cache.
        let serial = decoder_sim::SimulationPlatform::new(config.clone())
            .evaluate()
            .unwrap();
        for threads in [1usize, 2, 4] {
            let report = engine(threads).report_for(&config).unwrap();
            assert_eq!(
                serial, report,
                "defect-composed report diverged at {threads} engine threads ({defects:?})"
            );
            assert_eq!(
                serial.composite_yield.to_bits(),
                report.composite_yield.to_bits()
            );
        }
    }
    // The decoder quantities never depend on the defect selection.
    let clean = engine(2).report_for(&base).unwrap();
    let defective = engine(2)
        .report_for(
            &base
                .clone()
                .with_defects(DefectKind::sampled(0.05, 0.02, 2_009).unwrap()),
        )
        .unwrap();
    assert_eq!(
        clean.crossbar_yield.to_bits(),
        defective.crossbar_yield.to_bits()
    );
    assert!(defective.composite_yield < clean.composite_yield);
}

/// Pins the content of a fixed-seed defect map, including positions. Any
/// change to the chunked map layout — band size, chunk-seed derivation,
/// draw order, band order — shows up here as a loud, exact failure rather
/// than a silent reshuffle.
#[test]
fn fixed_seed_defect_map_is_pinned() {
    let model = DefectModel::new(0.1, 0.05).unwrap();
    let map = model.sample_map(100, 80, 42).unwrap();
    let broken_rows: Vec<usize> = (0..100).filter(|&r| map.row_broken(r)).collect();
    let broken_columns: Vec<usize> = (0..80).filter(|&c| map.column_broken(c)).collect();
    let defects: Vec<(usize, usize)> = (0..100)
        .flat_map(|r| (0..80).map(move |c| (r, c)))
        .filter(|&(r, c)| map.crosspoint_defective(r, c))
        .collect();
    // A position-sensitive checksum over the flattened defect coordinates:
    // permuting which crosspoints are defective changes it even when the
    // defect count stays the same.
    let checksum = defects.iter().fold(0u64, |acc, &(r, c)| {
        acc.wrapping_mul(31).wrapping_add((r * 80 + c) as u64)
    });
    assert_eq!(broken_rows, vec![13, 19, 21, 30, 48, 67, 68, 70, 86, 90]);
    assert_eq!(broken_columns, vec![0, 9, 22, 33, 34, 40, 41, 61, 78]);
    assert_eq!(
        (defects.len(), checksum),
        (403, 11_250_109_737_314_579_149),
        "usable fraction: {}",
        map.usable_fraction()
    );
}
