//! Cross-thread equivalence and RNG-discipline regression tests for the
//! parallel execution engine: the engine must be bit-identical to the serial
//! path for Monte-Carlo at any thread count, element-identical for sweeps,
//! and the exact Monte-Carlo outcome for a fixed seed is pinned so future
//! changes to the sampling discipline are loud.

use decoder_sim::{
    full_sweep, monte_carlo_addressability, EngineConfig, ExecutionEngine, MonteCarloConfig,
    SimConfig, DEFAULT_CHUNK_SIZE,
};
use device_physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
use mspt_fabrication::{PatternMatrix, VariabilityMatrix};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn variability(kind: CodeKind, length: usize, nanowires: usize) -> VariabilityMatrix {
    let seq = CodeSpec::new(kind, LogicLevel::BINARY, length)
        .unwrap()
        .generate()
        .unwrap()
        .take_cyclic(nanowires)
        .unwrap();
    let ladder = DopingLadder::from_model(
        &ThresholdModel::default_mspt(),
        2,
        (Volts::new(0.0), Volts::new(1.0)),
    )
    .unwrap();
    VariabilityMatrix::from_pattern(
        &PatternMatrix::from_sequence(&seq).unwrap(),
        &ladder,
        &VariabilityModel::paper_default(),
    )
    .unwrap()
}

fn engine(threads: usize) -> ExecutionEngine {
    ExecutionEngine::new(EngineConfig {
        threads,
        chunk_size: DEFAULT_CHUNK_SIZE,
    })
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let variability = variability(CodeKind::Tree, 8, 10);
    let model = VariabilityModel::paper_default();
    let window = Volts::new(0.25);
    let config = MonteCarloConfig {
        samples: 1_000,
        seed: 42,
    };
    let serial = monte_carlo_addressability(&variability, &model, window, config).unwrap();
    for threads in [1usize, 2, 4] {
        let parallel = engine(threads)
            .monte_carlo_addressability(&variability, &model, window, config)
            .unwrap();
        assert_eq!(
            serial, parallel,
            "outcome diverged at {threads} engine threads"
        );
    }
}

#[test]
fn full_sweep_is_element_identical_across_thread_counts() {
    let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
    let base = SimConfig::paper_defaults(code).unwrap();
    let kinds = [CodeKind::Tree, CodeKind::Gray, CodeKind::Hot];
    let lengths = [4usize, 6, 8];
    let serial = full_sweep(&base, &kinds, LogicLevel::BINARY, &lengths).unwrap();
    for threads in [2usize, 4] {
        let parallel = engine(threads)
            .full_sweep(&base, &kinds, LogicLevel::BINARY, &lengths)
            .unwrap();
        assert_eq!(serial, parallel, "sweep diverged at {threads} threads");
    }
}

/// Pins the exact per-nanowire acceptance counts for a fixed seed. Any change
/// to the RNG discipline — chunk seeding, Box–Muller pair handling, draw
/// order, chunk size — shows up here as a loud, exact failure rather than a
/// silent statistical drift.
#[test]
fn fixed_seed_outcome_is_pinned() {
    let variability = variability(CodeKind::Tree, 8, 10);
    let model = VariabilityModel::paper_default();
    let config = MonteCarloConfig {
        samples: 500,
        seed: 42,
    };
    let outcome =
        monte_carlo_addressability(&variability, &model, Volts::new(0.25), config).unwrap();
    assert_eq!(outcome.samples, 500);
    let counts: Vec<usize> = outcome
        .profile
        .probabilities()
        .iter()
        .map(|p| (p * 500.0).round() as usize)
        .collect();
    let pinned: Vec<usize> = vec![373, 394, 405, 421, 453, 476, 487, 494, 500, 500];
    assert_eq!(counts, pinned, "probabilities: {:?}", outcome.profile);
}
