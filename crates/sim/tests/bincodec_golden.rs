//! Golden-fixture pinning for both codecs: the exact bytes (binary) and
//! text (JSON) of a hand-built configuration and report are committed under
//! `tests/fixtures/` and asserted byte-for-byte. Any layout change — a
//! reordered section, a widened integer, a renamed key — fails these tests
//! until the schema version is bumped **and** the fixtures are deliberately
//! re-blessed with `MSPT_BLESS=1 cargo test --test bincodec_golden`.
//!
//! The golden report is built from literal field values rather than an
//! evaluation, so the fixtures pin only the *codec* layout, never the
//! numerics of the simulation itself.

use std::fs;
use std::path::PathBuf;

use decoder_sim::bincodec::{
    config_from_bin, config_to_bin, report_from_bin, report_to_bin, BIN_MAGIC, BIN_SCHEMA_VERSION,
    DOC_CONFIG, DOC_REPORT,
};
use decoder_sim::codec::{config_to_json, report_to_json};
use decoder_sim::{DefectKind, DisturbanceKind, PlatformReport, ReportCache, SimConfig};
use device_physics::Volts;
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn golden_config() -> SimConfig {
    let code = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap();
    SimConfig::paper_defaults(code)
        .unwrap()
        .with_disturbance(DisturbanceKind::Correlated {
            shared_fraction: 0.25,
        })
        .with_defects(DefectKind::sampled(0.05, 0.02, 2_009).unwrap())
        .with_window(Volts::new(0.375))
}

/// Literal field values only — exactly representable floats, so the fixture
/// can never drift with the simulation numerics.
fn golden_report() -> PlatformReport {
    PlatformReport {
        code: CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap(),
        nanowires_per_half_cave: 20,
        fabrication_steps: 7,
        mean_variability: 0.031_25,
        max_normalized_sigma: 1.5,
        cave_yield: 0.875,
        crossbar_yield: 0.765_625,
        effective_bits: 98_304.0,
        raw_bit_area: 1_024.0,
        effective_bit_area: 1_337.5,
        contact_groups: 4,
        defects: DefectKind::sampled(0.05, 0.02, 2_009).unwrap(),
        defect_survival: 0.937_5,
        composite_yield: 0.717_773_437_5,
        composite_effective_bits: 92_160.0,
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_fixture(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var_os("MSPT_BLESS").is_some() {
        fs::write(&path, actual).unwrap();
    }
    let expected = fs::read(&path).unwrap_or_else(|error| {
        panic!(
            "missing fixture {} ({error}); create it with MSPT_BLESS=1 cargo test --test bincodec_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "fixture {name} drifted from the encoder output; an intentional layout change needs a \
         schema-version bump and a deliberate re-bless (MSPT_BLESS=1)"
    );
}

#[test]
fn golden_config_binary_bytes_are_pinned() {
    let config = golden_config();
    let bytes = config_to_bin(&config);
    assert_fixture("golden_config.bin", &bytes);

    // Envelope spot checks directly against the committed bytes.
    let pinned = fs::read(fixture_path("golden_config.bin")).unwrap();
    assert_eq!(&pinned[..4], &BIN_MAGIC);
    assert_eq!(
        u16::from_le_bytes([pinned[4], pinned[5]]),
        BIN_SCHEMA_VERSION
    );
    assert_eq!(pinned[6], DOC_CONFIG);

    // The committed bytes decode to the golden value and re-encode to
    // themselves.
    let decoded = config_from_bin(&pinned).unwrap();
    assert_eq!(decoded, config);
    assert_eq!(config_to_bin(&decoded), pinned);
}

#[test]
fn golden_config_json_text_is_pinned() {
    assert_fixture(
        "golden_config.json",
        config_to_json(&golden_config()).render().as_bytes(),
    );
}

#[test]
fn golden_report_binary_bytes_are_pinned() {
    let report = golden_report();
    let bytes = report_to_bin(&report);
    assert_fixture("golden_report.bin", &bytes);

    let pinned = fs::read(fixture_path("golden_report.bin")).unwrap();
    assert_eq!(&pinned[..4], &BIN_MAGIC);
    assert_eq!(pinned[6], DOC_REPORT);
    let decoded = report_from_bin(&pinned).unwrap();
    assert_eq!(decoded, report);
    assert_eq!(report_to_bin(&decoded), pinned);
}

#[test]
fn golden_report_json_text_is_pinned() {
    assert_fixture(
        "golden_report.json",
        report_to_json(&golden_report()).render().as_bytes(),
    );
}

/// Both committed fixtures describe the same configuration: decoding the
/// binary fixture must fingerprint identically to the golden value (the
/// JSON fixture is covered by the differential battery; this pins the
/// cross-codec identity to the committed bytes themselves).
#[test]
fn pinned_fixtures_agree_across_codecs() {
    let pinned = fs::read(fixture_path("golden_config.bin")).unwrap();
    let from_bin = config_from_bin(&pinned).unwrap();
    assert_eq!(
        ReportCache::fingerprint(&from_bin),
        ReportCache::fingerprint(&golden_config())
    );
    // The binary fixture is meaningfully smaller than the JSON one.
    let json_len = fs::read(fixture_path("golden_config.json")).unwrap().len();
    assert!(
        pinned.len() * 2 < json_len,
        "binary fixture ({} B) is not under half the JSON fixture ({json_len} B)",
        pinned.len()
    );
}
