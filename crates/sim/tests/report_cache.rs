//! Edge-case coverage for the sharded, bounded, single-flight report cache:
//! degenerate capacities, LRU eviction order under interleaved hits,
//! single-flight under contention, persistence round-trips and schema
//! versioning (in both snapshot codecs), and disturbance-kind keying.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::thread;
use std::time::Duration;

use decoder_sim::{
    CacheConfig, DisturbanceKind, ReportCache, SimConfig, SimulationPlatform, CACHE_SCHEMA_VERSION,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn config(kind: CodeKind, length: usize) -> SimConfig {
    let code = CodeSpec::new(kind, LogicLevel::BINARY, length).unwrap();
    SimConfig::paper_defaults(code).unwrap()
}

fn evaluate(config: &SimConfig) -> decoder_sim::Result<decoder_sim::PlatformReport> {
    SimulationPlatform::new(config.clone()).evaluate()
}

#[test]
fn capacity_zero_disables_storage_but_stays_correct() {
    let cache = ReportCache::new(CacheConfig::unsharded(0));
    let a = config(CodeKind::Tree, 8);
    let first = cache.get_or_compute(&a, || evaluate(&a)).unwrap();
    let second = cache.get_or_compute(&a, || evaluate(&a)).unwrap();
    assert_eq!(first, second);
    assert!(cache.is_empty());
    assert!(!cache.contains(&a));
    let stats = cache.stats();
    // Nothing is ever stored, so every lookup recomputes.
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 0));
}

#[test]
fn capacity_one_keeps_only_the_most_recent_config() {
    let cache = ReportCache::new(CacheConfig::unsharded(1));
    let a = config(CodeKind::Tree, 6);
    let b = config(CodeKind::Tree, 8);
    cache.get_or_compute(&a, || evaluate(&a)).unwrap();
    assert!(cache.contains(&a));
    cache.get_or_compute(&b, || evaluate(&b)).unwrap();
    assert!(cache.contains(&b) && !cache.contains(&a));
    assert_eq!(cache.len(), 1);
    // Ping-ponging two configurations through a 1-entry cache evicts on
    // every switch and never hits.
    cache.get_or_compute(&a, || evaluate(&a)).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 2);
}

#[test]
fn lru_eviction_order_respects_interleaved_hits() {
    let cache = ReportCache::new(CacheConfig::unsharded(3));
    let a = config(CodeKind::Tree, 6);
    let b = config(CodeKind::Tree, 8);
    let c = config(CodeKind::Tree, 10);
    let d = config(CodeKind::Gray, 8);
    for entry in [&a, &b, &c] {
        cache.get_or_compute(entry, || evaluate(entry)).unwrap();
    }
    // Touch A (a hit): B becomes the least recently used entry.
    cache.get_or_compute(&a, || evaluate(&a)).unwrap();
    // Inserting D must now evict B — not A (recently touched) and not C.
    cache.get_or_compute(&d, || evaluate(&d)).unwrap();
    assert!(cache.contains(&a), "recently hit entry was evicted");
    assert!(!cache.contains(&b), "LRU entry survived");
    assert!(cache.contains(&c));
    assert!(cache.contains(&d));
    assert_eq!(cache.stats().evictions, 1);

    // Recency is now A < C < D; touching C makes it A < D < C, so a fifth
    // configuration must evict A.
    cache.get_or_compute(&c, || evaluate(&c)).unwrap();
    let e = config(CodeKind::Gray, 10);
    cache.get_or_compute(&e, || evaluate(&e)).unwrap();
    assert!(!cache.contains(&a), "expected A to be the LRU victim");
    assert!(cache.contains(&d) && cache.contains(&c) && cache.contains(&e));
}

#[test]
fn single_flight_runs_one_computation_under_contention() {
    let cache = ReportCache::new(CacheConfig::unsharded(8));
    let shared = config(CodeKind::BalancedGray, 10);
    let evaluations = AtomicUsize::new(0);
    let threads = 12;
    let barrier = Barrier::new(threads);
    let reports: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = &cache;
                let shared = &shared;
                let evaluations = &evaluations;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    cache
                        .get_or_compute(shared, || {
                            evaluations.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that every
                            // other thread arrives while it is in flight.
                            thread::sleep(Duration::from_millis(50));
                            evaluate(shared)
                        })
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        evaluations.load(Ordering::SeqCst),
        1,
        "contended lookups did not single-flight"
    );
    assert!(reports.windows(2).all(|pair| pair[0] == pair[1]));
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, threads as u64 - 1);
}

#[test]
fn a_panicking_leader_never_wedges_the_fingerprint() {
    let cache = ReportCache::new(CacheConfig::unsharded(8));
    let shared = config(CodeKind::Tree, 8);
    let barrier = Barrier::new(2);
    thread::scope(|scope| {
        let leader = scope.spawn(|| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get_or_compute(&shared, || {
                    barrier.wait();
                    // Let the waiter join the flight before unwinding.
                    thread::sleep(Duration::from_millis(50));
                    panic!("evaluation bug");
                })
            }));
            assert!(result.is_err(), "leader must propagate its panic");
        });
        let waiter = scope.spawn(|| {
            barrier.wait();
            // Joins the in-flight computation; when the leader panics the
            // guard must wake this thread, which then retakes the lead and
            // succeeds. Without the guard this blocks forever.
            cache.get_or_compute(&shared, || evaluate(&shared)).unwrap()
        });
        leader.join().unwrap();
        waiter.join().unwrap();
    });
    assert!(cache.contains(&shared));
    // And a fresh request is an ordinary hit.
    cache
        .get_or_compute(&shared, || unreachable!("warm"))
        .unwrap();
}

#[test]
fn persistence_round_trips_bit_identically() {
    let cache = ReportCache::new(CacheConfig::default());
    let gaussian = config(CodeKind::Tree, 8);
    let laplace = config(CodeKind::Tree, 8).with_disturbance(DisturbanceKind::Laplace);
    let gray = config(CodeKind::Gray, 10);
    for entry in [&gaussian, &laplace, &gray] {
        cache.get_or_compute(entry, || evaluate(entry)).unwrap();
    }
    let snapshot = cache.snapshot_json();

    let restored = ReportCache::new(CacheConfig::default());
    assert_eq!(restored.load_snapshot(&snapshot).unwrap(), 3);
    // Same-config/different-disturbance entries never alias: all three
    // survive the round trip as distinct entries.
    assert_eq!(restored.len(), 3);
    for entry in [&gaussian, &laplace, &gray] {
        assert!(restored.contains(entry));
        let original = cache
            .get_or_compute(entry, || unreachable!("warm"))
            .unwrap();
        let reloaded = restored
            .get_or_compute(entry, || unreachable!("warm"))
            .unwrap();
        assert_eq!(reloaded, original);
        assert_eq!(
            reloaded.crossbar_yield.to_bits(),
            original.crossbar_yield.to_bits()
        );
    }
    // Snapshots are canonical: re-rendering the restored cache is
    // byte-identical.
    assert_eq!(restored.snapshot_json(), snapshot);
}

#[test]
fn binary_snapshots_round_trip_and_agree_with_json() {
    let cache = ReportCache::new(CacheConfig::default());
    let gaussian = config(CodeKind::Tree, 8);
    let laplace = config(CodeKind::Tree, 8).with_disturbance(DisturbanceKind::Laplace);
    let gray = config(CodeKind::Gray, 10);
    for entry in [&gaussian, &laplace, &gray] {
        cache.get_or_compute(entry, || evaluate(entry)).unwrap();
    }

    let restored_bin = ReportCache::new(CacheConfig::default());
    assert_eq!(
        restored_bin
            .load_snapshot_bin(&cache.snapshot_bin())
            .unwrap(),
        3
    );
    let restored_json = ReportCache::new(CacheConfig::default());
    assert_eq!(
        restored_json.load_snapshot(&cache.snapshot_json()).unwrap(),
        3
    );

    // Whichever codec carried the rows, the restored caches are
    // indistinguishable: same canonical JSON snapshot, bit for bit.
    assert_eq!(restored_bin.snapshot_json(), restored_json.snapshot_json());
    for entry in [&gaussian, &laplace, &gray] {
        let original = cache
            .get_or_compute(entry, || unreachable!("warm"))
            .unwrap();
        let reloaded = restored_bin
            .get_or_compute(entry, || unreachable!("warm"))
            .unwrap();
        assert_eq!(reloaded, original);
        assert_eq!(
            reloaded.crossbar_yield.to_bits(),
            original.crossbar_yield.to_bits()
        );
    }
}

#[test]
fn binary_snapshots_are_at_least_40_percent_smaller_at_64_entries() {
    // One evaluated report re-keyed under 64 distinct configurations (the
    // correlated shared fraction is part of the cache identity), so the
    // size comparison does not need 64 evaluations.
    let cache = ReportCache::new(CacheConfig::unsharded(64));
    let base = config(CodeKind::Tree, 8);
    let report = evaluate(&base).unwrap();
    for index in 0..64u32 {
        let entry = base.clone().with_disturbance(DisturbanceKind::Correlated {
            shared_fraction: f64::from(index) / 128.0,
        });
        cache.get_or_compute(&entry, || Ok(report.clone())).unwrap();
    }
    assert_eq!(cache.len(), 64);

    let json_bytes = cache.snapshot_json().len();
    let bin_bytes = cache.snapshot_bin().len();
    assert!(
        (bin_bytes as f64) <= 0.60 * json_bytes as f64,
        "binary snapshot is {bin_bytes} B against {json_bytes} B of JSON — \
         less than the required 40% saving"
    );

    // And the large snapshot still round-trips completely.
    let restored = ReportCache::new(CacheConfig::unsharded(64));
    assert_eq!(
        restored.load_snapshot_bin(&cache.snapshot_bin()).unwrap(),
        64
    );
    assert_eq!(restored.snapshot_json(), cache.snapshot_json());
}

#[test]
fn mismatched_snapshot_schema_versions_are_rejected() {
    let cache = ReportCache::new(CacheConfig::default());
    let a = config(CodeKind::Tree, 8);
    cache.get_or_compute(&a, || evaluate(&a)).unwrap();
    let snapshot = cache.snapshot_json();
    let future = snapshot.replacen(
        &format!("\"schema_version\":{CACHE_SCHEMA_VERSION}"),
        "\"schema_version\":999",
        1,
    );
    assert_ne!(future, snapshot, "version marker not found in snapshot");

    let fresh = ReportCache::new(CacheConfig::default());
    let error = fresh.load_snapshot(&future).unwrap_err();
    assert!(error.to_string().contains("schema version"));
    assert!(fresh.is_empty(), "a rejected snapshot must load nothing");
    // Garbage is rejected too.
    assert!(fresh.load_snapshot("not json at all").is_err());
}

#[test]
fn tiny_capacities_clamp_the_shard_count_to_an_exact_bound() {
    // With the default 8 shards a capacity of 1 would otherwise retain one
    // entry *per shard*; the constructor clamps shards to the capacity so
    // the configured bound is exact.
    let cache = ReportCache::new(CacheConfig {
        capacity: 1,
        shards: 8,
    });
    assert_eq!(cache.config().shards, 1);
    for entry in [
        &config(CodeKind::Tree, 6),
        &config(CodeKind::Tree, 8),
        &config(CodeKind::Tree, 10),
    ] {
        cache.get_or_compute(entry, || evaluate(entry)).unwrap();
        assert_eq!(cache.len(), 1);
    }
    assert_eq!(cache.stats().evictions, 2);
}

#[test]
fn snapshots_are_bounded_to_the_cache_capacity() {
    // Capacity 3 over 2 shards → per-shard bound ceil(3/2) = 2, so the
    // in-memory cache may legitimately retain up to 4 entries. The persisted
    // snapshot must still be bounded to the configured capacity (keeping the
    // most recently used entries), so the warm-restart file cannot grow past
    // the bound no matter how the shard arithmetic over-retains.
    let cache = ReportCache::new(CacheConfig {
        capacity: 3,
        shards: 2,
    });
    let entries = [
        config(CodeKind::Tree, 6),
        config(CodeKind::Tree, 8),
        config(CodeKind::Tree, 10),
        config(CodeKind::Gray, 6),
        config(CodeKind::Gray, 8),
        config(CodeKind::Gray, 10),
        config(CodeKind::BalancedGray, 8),
    ];
    for entry in &entries {
        cache.get_or_compute(entry, || evaluate(entry)).unwrap();
    }
    let snapshot = cache.snapshot_json();
    let parsed = decoder_sim::codec::JsonValue::parse(&snapshot).unwrap();
    let rows = parsed.get("entries").unwrap().as_array().unwrap();
    assert!(
        rows.len() <= 3,
        "snapshot persisted {} rows past the capacity bound of 3",
        rows.len()
    );
    // The most recently used entry always survives the bound.
    let restored = ReportCache::new(CacheConfig::default());
    restored.load_snapshot(&snapshot).unwrap();
    assert!(restored.contains(&entries[entries.len() - 1]));
    assert!(restored.len() <= 3);
}

#[test]
fn loading_respects_the_capacity_bound() {
    let cache = ReportCache::new(CacheConfig::default());
    for entry in [
        &config(CodeKind::Tree, 6),
        &config(CodeKind::Tree, 8),
        &config(CodeKind::Tree, 10),
        &config(CodeKind::Gray, 8),
    ] {
        cache.get_or_compute(entry, || evaluate(entry)).unwrap();
    }
    let snapshot = cache.snapshot_json();
    let bounded = ReportCache::new(CacheConfig::unsharded(2));
    // Every row is stored (then the tight bound evicts earlier ones).
    assert_eq!(bounded.load_snapshot(&snapshot).unwrap(), 4);
    assert_eq!(bounded.len(), 2, "load must not exceed the capacity bound");
    assert_eq!(bounded.stats().evictions, 2);
    // A disabled cache stores nothing and reports exactly that.
    let disabled = ReportCache::new(CacheConfig::unsharded(0));
    assert_eq!(disabled.load_snapshot(&snapshot).unwrap(), 0);
    assert!(disabled.is_empty());
}
