//! Corruption battery for the binary codec: malformed bytes must always
//! surface as typed [`SimError::Persistence`] values — never a panic, never
//! an out-of-bounds read, never an allocation bomb — across truncation
//! (exhaustively, one cut per byte position), single-bit flips
//! (exhaustively, every bit of every byte), oversized section lengths,
//! wrong magic, future schema versions and wrong document kinds. Unknown
//! section tags, by contrast, must be *skipped*: they are the format's
//! forward-compatibility lane, not corruption.

use decoder_sim::bincodec::{
    self, config_from_bin, config_to_bin, report_from_bin, report_to_bin, BinWriter,
};
use decoder_sim::{DefectKind, DisturbanceKind, SimConfig, SimError, SimulationPlatform};
use device_physics::Volts;
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

/// A configuration exercising every section, the optional window override
/// included.
fn golden_config() -> SimConfig {
    let code = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap();
    SimConfig::paper_defaults(code)
        .unwrap()
        .with_disturbance(DisturbanceKind::Correlated {
            shared_fraction: 0.25,
        })
        .with_defects(DefectKind::sampled(0.05, 0.02, 2_009).unwrap())
        .with_window(Volts::new(0.375))
}

fn assert_typed_failure(result: Result<(), SimError>, what: &str) {
    match result {
        Ok(()) => panic!("{what} decoded successfully"),
        Err(SimError::Persistence { .. }) => {}
        Err(other) => panic!("{what} failed with a non-persistence error: {other}"),
    }
}

/// Every proper prefix of a config document fails loudly — except the one
/// clean cut at the boundary of the trailing optional Monte-Carlo section,
/// which reproduces byte-exactly what a pre-adaptive writer emitted and
/// must therefore decode to the same configuration under the default
/// sampling knobs. Every other truncation point is corruption.
#[test]
fn every_proper_prefix_of_a_config_document_fails() {
    let config = golden_config();
    let bytes = config_to_bin(&config);
    let mut valid_cuts = Vec::new();
    for take in 0..bytes.len() {
        match config_from_bin(&bytes[..take]) {
            Ok(decoded) => {
                assert_eq!(
                    decoded,
                    config,
                    "config prefix of {take}/{} bytes decoded to a different config",
                    bytes.len()
                );
                valid_cuts.push(take);
            }
            Err(SimError::Persistence { .. }) => {}
            Err(other) => panic!(
                "config prefix of {take}/{} bytes failed with a non-persistence error: {other}",
                bytes.len()
            ),
        }
    }
    // Exactly one valid cut, and it sits where the Monte-Carlo section's
    // tag (0x0a) begins — the pre-adaptive end of the document.
    assert_eq!(valid_cuts.len(), 1, "valid cuts: {valid_cuts:?}");
    assert_eq!(bytes[valid_cuts[0]], 0x0a);
}

#[test]
fn every_proper_prefix_of_a_report_document_fails() {
    let report = SimulationPlatform::new(golden_config()).evaluate().unwrap();
    let bytes = report_to_bin(&report);
    for take in 0..bytes.len() {
        assert_typed_failure(
            report_from_bin(&bytes[..take]).map(|_| ()),
            &format!("report prefix of {take}/{} bytes", bytes.len()),
        );
    }
}

/// Exhaustive single-bit-flip sweep: every decode must return (a flip can
/// legitimately produce a different valid value — an f64 with one bit
/// changed is still an f64 — but it must never panic, and when it fails it
/// must fail with a typed error).
#[test]
fn single_bit_flips_never_panic() {
    let config_bytes = config_to_bin(&golden_config());
    let report = SimulationPlatform::new(golden_config()).evaluate().unwrap();
    let report_bytes = report_to_bin(&report);
    for bytes in [&config_bytes, &report_bytes] {
        for index in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[index] ^= 1 << bit;
                // Both decoders must return normally on every mutation —
                // including the wrong-document-kind path.
                drop(config_from_bin(&mutated));
                drop(report_from_bin(&mutated));
            }
        }
    }
}

/// A section length pointing past the end of the buffer is caught before
/// any read: the body is a borrowed sub-slice, so an attacker-controlled
/// length can neither read out of bounds nor allocate.
#[test]
fn oversized_section_lengths_are_typed_errors() {
    let mut bytes = config_to_bin(&golden_config());
    // Envelope is 7 bytes; the first section's tag is at 7, its u32 length
    // at 8..12.
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let error = config_from_bin(&bytes).unwrap_err();
    assert!(
        error.to_string().contains("claims"),
        "unexpected error: {error}"
    );
}

#[test]
fn wrong_magic_and_future_versions_are_typed_errors() {
    let good = config_to_bin(&golden_config());

    let mut wrong_magic = good.clone();
    wrong_magic[0] = b'{';
    let error = config_from_bin(&wrong_magic).unwrap_err();
    assert!(error.to_string().contains("magic"), "{error}");

    for version in [2u16, 0, u16::MAX] {
        let mut future = good.clone();
        future[4..6].copy_from_slice(&version.to_le_bytes());
        let error = config_from_bin(&future).unwrap_err();
        assert!(error.to_string().contains("schema version"), "{error}");
    }

    let error = report_from_bin(&good).unwrap_err();
    assert!(error.to_string().contains("document kind"), "{error}");
}

#[test]
fn short_envelopes_are_typed_errors() {
    let good = config_to_bin(&golden_config());
    for take in 0..7 {
        assert_typed_failure(
            config_from_bin(&good[..take]).map(|_| ()),
            &format!("envelope prefix of {take} bytes"),
        );
    }
}

/// Unknown tags are the forward-compatibility lane: a version-1 reader must
/// skip sections a later writer added — before, between and after the known
/// sections — and still decode the known fields byte-exactly.
#[test]
fn unknown_sections_are_skipped_wherever_they_appear() {
    let config = golden_config();
    let original = config_to_bin(&config);
    let payload = &original[7..];

    let mut unknown = BinWriter::new();
    unknown.section(0x7e, &[0xAA; 9]);
    let unknown = unknown.into_bytes();

    // Prepended, appended, and both at once.
    for (prefix, suffix) in [(true, false), (false, true), (true, true)] {
        let mut doctored = BinWriter::new();
        if prefix {
            doctored.put_bytes(&unknown);
        }
        doctored.put_bytes(payload);
        if suffix {
            doctored.put_bytes(&unknown);
        }
        let document = bincodec::document(bincodec::DOC_CONFIG, &doctored.into_bytes());
        let decoded = config_from_bin(&document).unwrap();
        assert_eq!(config_to_bin(&decoded), original);
    }

    // An unknown section whose *own* length overruns the buffer is still
    // corruption, not compatibility.
    let mut overrun = BinWriter::new();
    overrun.put_bytes(payload);
    overrun.put_u8(0x7e);
    overrun.put_u32(1_000);
    let document = bincodec::document(bincodec::DOC_CONFIG, &overrun.into_bytes());
    assert_typed_failure(
        config_from_bin(&document).map(|_| ()),
        "unknown section with an overrunning length",
    );
}
