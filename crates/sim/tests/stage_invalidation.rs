//! The stage-invalidation matrix: for every [`ConfigField`], varying only
//! that field on a warm engine must recompute exactly the stages whose
//! declared read set ([`Stage::reads`]) contains the field — every other
//! consulted stage hits — and the resulting reports must stay bit-identical
//! to a cold serial evaluation, at one and at four engine threads.
//!
//! The expected counter movement is derived from the public stage graph, so
//! this test cross-checks the declared read sets against the *actual* data
//! flow of the staged pipeline (a stage reading an undeclared field would
//! hit when it must miss, and vice versa).

use decoder_sim::{
    ConfigField, DefectKind, DisturbanceKind, EngineConfig, Evaluation, ExecutionEngine,
    MonteCarloConfig, SimConfig, SimulationPlatform, Stage, StageStats, DEFAULT_CHUNK_SIZE,
};

use crossbar_array::LayoutRules;
use device_physics::{Nanometers, ThresholdModel, Volts};
use nanowire_codes::{
    ArrangedHotBudget, BalanceBudget, CodeBudgets, CodeKind, CodeSpec, LogicLevel,
};

fn base() -> SimConfig {
    let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
    SimConfig::paper_defaults(code).unwrap()
}

/// Rebuilds `base` with explicit values for the fields only reachable
/// through [`SimConfig::new`].
fn rebuild(
    base: &SimConfig,
    raw_bits: u64,
    layout: LayoutRules,
    threshold: Option<ThresholdModel>,
    supply: Option<(Volts, Volts)>,
) -> SimConfig {
    SimConfig::new(
        base.code(),
        base.nanowires_per_half_cave(),
        raw_bits,
        layout,
        threshold.unwrap_or_else(|| *base.threshold_model()),
        base.sigma_per_dose(),
        supply.unwrap_or_else(|| base.supply_range()),
    )
    .unwrap()
}

/// A configuration differing from `base` in exactly `field`.
fn varied(base: &SimConfig, field: ConfigField) -> SimConfig {
    match field {
        ConfigField::Code => base
            .clone()
            .with_code(CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap()),
        ConfigField::NanowiresPerHalfCave => base.clone().with_nanowires_per_half_cave(24).unwrap(),
        ConfigField::RawBits => rebuild(base, base.raw_bits() * 2, *base.layout(), None, None),
        ConfigField::Layout => rebuild(
            base,
            base.raw_bits(),
            LayoutRules::new(
                Nanometers::new(45.0),
                Nanometers::new(10.0),
                1.5,
                Nanometers::new(16.0),
            )
            .unwrap(),
            None,
            None,
        ),
        ConfigField::ThresholdModel => rebuild(
            base,
            base.raw_bits(),
            *base.layout(),
            Some(ThresholdModel::new(Nanometers::new(3.0), Volts::new(-1.0)).unwrap()),
            None,
        ),
        ConfigField::SigmaPerDose => base
            .clone()
            .with_sigma_per_dose(Volts::from_millivolts(40.0))
            .unwrap(),
        ConfigField::SupplyRange => rebuild(
            base,
            base.raw_bits(),
            *base.layout(),
            None,
            Some((Volts::new(0.0), Volts::new(1.2))),
        ),
        ConfigField::WindowOverride => base.clone().with_window(Volts::new(0.2)),
        ConfigField::CodeBudgets => base.clone().with_code_budgets(CodeBudgets {
            balance: BalanceBudget {
                max_nodes_per_limit: 1_000,
                max_limit_slack: 2,
            },
            arranged_hot: ArrangedHotBudget::default(),
        }),
        ConfigField::Disturbance => base.clone().with_disturbance(DisturbanceKind::Laplace),
        ConfigField::Defects => base
            .clone()
            .with_defects(DefectKind::sampled(0.02, 0.01, 2_009).unwrap()),
        ConfigField::MonteCarlo => base
            .clone()
            .with_monte_carlo(MonteCarloConfig::fixed(123, 9)),
    }
}

fn reads(stage: Stage, field: ConfigField) -> bool {
    stage.reads().contains(&field)
}

fn stats_by_stage(rows: &[StageStats], stage: Stage) -> (u64, u64) {
    let row = rows.iter().find(|row| row.stage == stage).unwrap();
    (row.stats.hits, row.stats.misses)
}

/// The (hits, misses) movement expected for `stage` when a warm engine
/// evaluates a configuration differing from the warm one in exactly
/// `field` — report first, then a Monte-Carlo pass, as
/// [`Evaluation`] runs them.
fn expected_delta(stage: Stage, field: ConfigField) -> (u64, u64) {
    let miss = u64::from(reads(stage, field));
    let composite_missed = reads(Stage::Composite, field);
    let monte_carlo_missed = reads(Stage::MonteCarlo, field);
    match stage {
        // Consulted once per evaluation (the defect-map slot before the
        // composite lookup, Monte-Carlo in its own pass).
        Stage::DefectMap | Stage::Composite | Stage::MonteCarlo => (1 - miss, miss),
        // The variability slot is consulted by the composite closure (when
        // the composite missed) and again by the Monte-Carlo closure (when
        // the sampling stage missed); the second lookup always hits because
        // the report pass already inserted the varied entry.
        Stage::Variability => {
            let report_lookups = u64::from(composite_missed);
            let mc_lookups = u64::from(monte_carlo_missed);
            (report_lookups + mc_lookups - miss, miss)
        }
        // The remaining pipeline stages are consulted only while the
        // composite closure runs.
        Stage::Addressability | Stage::ContactLayout | Stage::CaveYield | Stage::CrossbarArea => {
            if composite_missed {
                (1 - miss, miss)
            } else {
                (0, 0)
            }
        }
    }
}

fn run_matrix(threads: usize) {
    let base = base();
    let mc = MonteCarloConfig::fixed(64, 17);
    for field in ConfigField::ALL {
        let engine = ExecutionEngine::new(EngineConfig {
            threads,
            chunk_size: DEFAULT_CHUNK_SIZE,
        });
        let warm = Evaluation::builder(base.clone()).monte_carlo(mc);
        warm.run(&engine).unwrap();

        let before = engine.stage_stats();
        let config = varied(&base, field);
        let outcome = Evaluation::builder(config.clone())
            .monte_carlo(mc)
            .run(&engine)
            .unwrap();
        let after = engine.stage_stats();

        let mut hit_stages = 0;
        let mut missed_stages = 0;
        for stage in Stage::ALL {
            let (hits_before, misses_before) = stats_by_stage(&before, stage);
            let (hits_after, misses_after) = stats_by_stage(&after, stage);
            let actual = (hits_after - hits_before, misses_after - misses_before);
            let expected = expected_delta(stage, field);
            assert_eq!(
                actual,
                expected,
                "{threads} thread(s), varied {field:?}: stage {} moved (hits, misses) by \
                 {actual:?}, expected {expected:?}",
                stage.name()
            );
            hit_stages += usize::from(actual.0 > 0);
            missed_stages += usize::from(actual.1 > 0);
        }
        // The acceptance shape: a one-field change on a warm engine is a
        // partial re-evaluation — some stages recompute, some are served.
        assert!(hit_stages >= 1, "varied {field:?}: no stage hit");
        assert!(missed_stages >= 1, "varied {field:?}: no stage recomputed");

        // And the partially recomputed report is bit-identical to a cold
        // serial evaluation of the same configuration.
        let cold = SimulationPlatform::new(config.clone()).evaluate().unwrap();
        assert_eq!(outcome.report, Some(cold), "varied {field:?}");
        let cold_mc = ExecutionEngine::serial()
            .monte_carlo_for_config(&config, mc)
            .unwrap();
        assert_eq!(outcome.monte_carlo, Some(cold_mc), "varied {field:?}");
    }
}

#[test]
fn one_field_changes_recompute_exactly_the_dependent_stages_serially() {
    run_matrix(1);
}

#[test]
fn one_field_changes_recompute_exactly_the_dependent_stages_in_parallel() {
    run_matrix(4);
}

#[test]
fn every_stage_has_a_field_that_invalidates_it_and_one_that_does_not() {
    for stage in Stage::ALL {
        assert!(
            ConfigField::ALL.iter().any(|&field| reads(stage, field)),
            "stage {} reads nothing",
            stage.name()
        );
        assert!(
            ConfigField::ALL.iter().any(|&field| !reads(stage, field)),
            "stage {} reads every field",
            stage.name()
        );
    }
}
