//! Differential property battery for the binary codec: for every encodable
//! type, randomly generated values must survive JSON→binary→JSON and
//! binary→JSON→binary **bit-identically** — same rendered JSON text, same
//! binary bytes, same float bits — and the cache fingerprint of a
//! configuration must be invariant under which codec carried it.
//!
//! The generators stay inside each constructor's validation envelope
//! (positive pitches, nanowire pitch ≤ litho pitch, defect rates in
//! `[0, 1]`, family-legal code lengths) so every generated value is one a
//! real process could hold; within that envelope the floats are arbitrary
//! finite values, negative zero and subnormals included.

use proptest::prelude::*;

use crossbar_array::LayoutRules;
use decoder_sim::bincodec::{
    code_spec_from_bin, code_spec_to_bin, config_from_bin, config_to_bin, defect_from_bin,
    defect_to_bin, disturbance_from_bin, disturbance_to_bin, report_from_bin, report_to_bin,
    wire_error_kind_from_bin, wire_error_kind_to_bin,
};
use decoder_sim::codec::{
    code_spec_from_json, code_spec_to_json, config_from_json, config_to_json, defect_from_json,
    defect_to_json, disturbance_from_json, disturbance_to_json, report_from_json, report_to_json,
    wire_error_kind_from_json, wire_error_kind_to_json, JsonValue,
};
use decoder_sim::{
    DefectKind, DisturbanceKind, PlatformReport, ReportCache, SimConfig, WireErrorKind,
};
use device_physics::{Nanometers, ThresholdModel, Volts};
use nanowire_codes::{
    ArrangedHotBudget, BalanceBudget, CodeBudgets, CodeKind, CodeSpec, LogicLevel, SearchBudget,
};

/// Arbitrary finite floats across the full bit domain — negative zero and
/// subnormals included. Non-finite draws (all-ones exponents) collapse to
/// zero: the codecs reject non-finite values by contract, which the
/// corruption battery covers separately.
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let value = f64::from_bits(bits);
        if value.is_finite() {
            value
        } else {
            0.0
        }
    })
}

fn code_spec_strategy() -> impl Strategy<Value = CodeSpec> {
    (0usize..CodeKind::ALL.len(), 2u8..=4, 1usize..5).prop_map(|(kind_index, radix, blocks)| {
        let kind = CodeKind::ALL[kind_index];
        let radix = LogicLevel::new(radix).unwrap();
        // Tree-family lengths must be even; hot-family lengths must be a
        // multiple of the radix.
        let length = if kind.is_tree_family() {
            2 * blocks
        } else {
            usize::from(radix.radix()) * blocks
        };
        CodeSpec::new(kind, radix, length).unwrap()
    })
}

fn disturbance_strategy() -> impl Strategy<Value = DisturbanceKind> {
    prop_oneof![
        Just(DisturbanceKind::Gaussian),
        Just(DisturbanceKind::Laplace),
        (0.0f64..1.0).prop_map(|shared_fraction| DisturbanceKind::Correlated { shared_fraction }),
    ]
}

fn defect_strategy() -> impl Strategy<Value = DefectKind> {
    prop_oneof![
        Just(DefectKind::None),
        (0.0f64..0.5, 0.0f64..0.5, any::<u64>()).prop_map(|(breakage, crosspoint, seed)| {
            DefectKind::sampled(breakage, crosspoint, seed).unwrap()
        }),
    ]
}

fn layout_strategy() -> impl Strategy<Value = LayoutRules> {
    (10.0f64..100.0, 0.1f64..1.0, 1.0f64..3.0, 0.0f64..10.0).prop_map(
        |(litho, nanowire_fraction, width_factor, tolerance)| {
            // The nanowire pitch may not exceed the litho pitch.
            LayoutRules::new(
                Nanometers::new(litho),
                Nanometers::new(litho * nanowire_fraction),
                width_factor,
                Nanometers::new(tolerance),
            )
            .unwrap()
        },
    )
}

fn threshold_strategy() -> impl Strategy<Value = ThresholdModel> {
    (0.5f64..10.0, -1.0f64..1.0).prop_map(|(oxide, flat_band)| {
        ThresholdModel::new(Nanometers::new(oxide), Volts::new(flat_band)).unwrap()
    })
}

fn budgets_strategy() -> impl Strategy<Value = CodeBudgets> {
    (
        (1u64..1_000_000, 0usize..16),
        (1u64..1_000_000, 1u64..1_000_000, 0u32..64),
    )
        .prop_map(
            |((balance_nodes, balance_slack), (arranged_nodes, fallback_nodes, sweeps))| {
                CodeBudgets {
                    balance: BalanceBudget {
                        max_nodes_per_limit: balance_nodes,
                        max_limit_slack: balance_slack,
                    },
                    arranged_hot: ArrangedHotBudget {
                        max_nodes: arranged_nodes,
                        fallback: SearchBudget {
                            max_nodes: fallback_nodes,
                            max_two_opt_sweeps: sweeps,
                        },
                    },
                }
            },
        )
}

fn window_strategy() -> impl Strategy<Value = Option<Volts>> {
    prop_oneof![
        Just(None),
        (0.01f64..1.0).prop_map(|window| Some(Volts::new(window))),
    ]
}

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        (code_spec_strategy(), 1usize..64, 1u64..(1 << 40)),
        (layout_strategy(), threshold_strategy(), 0.0f64..0.2),
        (-0.5f64..0.5, 0.1f64..2.0, window_strategy()),
        (
            budgets_strategy(),
            disturbance_strategy(),
            defect_strategy(),
        ),
    )
        .prop_map(
            |(
                (code, nanowires, raw_bits),
                (layout, threshold, sigma),
                (supply_low, supply_span, window),
                (budgets, disturbance, defects),
            )| {
                let mut config = SimConfig::new(
                    code,
                    nanowires,
                    raw_bits,
                    layout,
                    threshold,
                    Volts::new(sigma),
                    (Volts::new(supply_low), Volts::new(supply_low + supply_span)),
                )
                .unwrap()
                .with_code_budgets(budgets)
                .with_disturbance(disturbance)
                .with_defects(defects);
                if let Some(window) = window {
                    config = config.with_window(window);
                }
                config
            },
        )
}

fn report_strategy() -> impl Strategy<Value = PlatformReport> {
    (
        (code_spec_strategy(), 1usize..64, 0usize..64, 0usize..64),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
        (finite_f64(), finite_f64(), finite_f64()),
        (defect_strategy(), finite_f64(), finite_f64(), finite_f64()),
    )
        .prop_map(
            |(
                (code, nanowires, steps, groups),
                (mean_variability, max_normalized_sigma, cave_yield, crossbar_yield),
                (effective_bits, raw_bit_area, effective_bit_area),
                (defects, defect_survival, composite_yield, composite_effective_bits),
            )| {
                PlatformReport {
                    code,
                    nanowires_per_half_cave: nanowires,
                    fabrication_steps: steps,
                    mean_variability,
                    max_normalized_sigma,
                    cave_yield,
                    crossbar_yield,
                    effective_bits,
                    raw_bit_area,
                    effective_bit_area,
                    contact_groups: groups,
                    defects,
                    defect_survival,
                    composite_yield,
                    composite_effective_bits,
                }
            },
        )
}

/// Renders, reparses and decodes through the JSON text layer — the full
/// pipeline a snapshot row or wire frame traverses, not just the tree.
fn config_through_json_text(config: &SimConfig) -> SimConfig {
    let text = config_to_json(config).render();
    config_from_json(&JsonValue::parse(&text).unwrap()).unwrap()
}

fn report_through_json_text(report: &PlatformReport) -> PlatformReport {
    let text = report_to_json(report).render();
    report_from_json(&JsonValue::parse(&text).unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary round trips are exact: the decoded value re-encodes to the
    /// same bytes (byte equality is stronger than `PartialEq`, which treats
    /// `-0.0 == 0.0`).
    #[test]
    fn config_binary_round_trip_is_byte_exact(config in config_strategy()) {
        let bytes = config_to_bin(&config);
        let decoded = config_from_bin(&bytes).unwrap();
        prop_assert_eq!(&decoded, &config);
        prop_assert_eq!(config_to_bin(&decoded), bytes);
    }

    /// JSON→binary→JSON re-renders identically, binary→JSON→binary
    /// re-encodes identically, and the cache fingerprint never depends on
    /// which codec carried the configuration.
    #[test]
    fn config_codecs_are_differentially_equal(config in config_strategy()) {
        let json = config_to_json(&config).render();
        let via_bin = config_from_bin(&config_to_bin(&config_through_json_text(&config))).unwrap();
        prop_assert_eq!(config_to_json(&via_bin).render(), json);

        let bytes = config_to_bin(&config);
        let via_json = config_through_json_text(&config_from_bin(&bytes).unwrap());
        prop_assert_eq!(config_to_bin(&via_json), bytes);

        prop_assert_eq!(
            ReportCache::fingerprint(&via_bin),
            ReportCache::fingerprint(&config)
        );
        prop_assert_eq!(
            ReportCache::fingerprint(&via_json),
            ReportCache::fingerprint(&config)
        );
    }

    #[test]
    fn report_binary_round_trip_is_byte_exact(report in report_strategy()) {
        let bytes = report_to_bin(&report);
        let decoded = report_from_bin(&bytes).unwrap();
        prop_assert_eq!(&decoded, &report);
        prop_assert_eq!(report_to_bin(&decoded), bytes);
    }

    /// The report float fields round-trip bit-exactly through both codec
    /// chains, negative zero and subnormals included.
    #[test]
    fn report_codecs_are_differentially_equal(report in report_strategy()) {
        let json = report_to_json(&report).render();
        let via_bin = report_from_bin(&report_to_bin(&report_through_json_text(&report))).unwrap();
        prop_assert_eq!(report_to_json(&via_bin).render(), json);
        prop_assert_eq!(
            via_bin.crossbar_yield.to_bits(),
            report.crossbar_yield.to_bits()
        );
        prop_assert_eq!(
            via_bin.composite_effective_bits.to_bits(),
            report.composite_effective_bits.to_bits()
        );

        let bytes = report_to_bin(&report);
        let via_json = report_through_json_text(&report_from_bin(&bytes).unwrap());
        prop_assert_eq!(report_to_bin(&via_json), bytes);
    }

    #[test]
    fn code_spec_codecs_agree(code in code_spec_strategy()) {
        let bytes = code_spec_to_bin(code);
        prop_assert_eq!(code_spec_from_bin(&bytes).unwrap(), code);
        let via_json = code_spec_from_json(&code_spec_to_json(code)).unwrap();
        prop_assert_eq!(code_spec_to_bin(via_json), bytes);
    }

    #[test]
    fn disturbance_codecs_agree(kind in disturbance_strategy()) {
        let bytes = disturbance_to_bin(kind);
        let decoded = disturbance_from_bin(&bytes).unwrap();
        prop_assert_eq!(disturbance_to_bin(decoded), bytes.clone());
        let via_json = disturbance_from_json(&disturbance_to_json(kind)).unwrap();
        prop_assert_eq!(disturbance_to_bin(via_json), bytes);
    }

    #[test]
    fn defect_codecs_agree(kind in defect_strategy()) {
        let bytes = defect_to_bin(kind);
        let decoded = defect_from_bin(&bytes).unwrap();
        prop_assert_eq!(defect_to_bin(decoded), bytes.clone());
        let via_json = defect_from_json(&defect_to_json(kind)).unwrap();
        prop_assert_eq!(defect_to_bin(via_json), bytes);
    }
}

#[test]
fn wire_error_kinds_agree_across_codecs() {
    for kind in WireErrorKind::ALL {
        let bytes = wire_error_kind_to_bin(kind);
        assert_eq!(wire_error_kind_from_bin(&bytes).unwrap(), kind);
        let via_json = wire_error_kind_from_json(&wire_error_kind_to_json(kind)).unwrap();
        assert_eq!(wire_error_kind_to_bin(via_json), bytes);
    }
}
