//! Forward-compatibility coverage for the additive dimensions of the codec:
//! documents written before `SimConfig` carried a `DefectKind` or the
//! Monte-Carlo sampling knobs (and before `PlatformReport` carried
//! composite quantities) must keep decoding with the pre-field defaults,
//! and mixed-version round trips must stay bit-identical to a fresh
//! evaluation.

use decoder_sim::codec::{
    config_from_json, config_to_json, report_from_json, report_to_json, JsonValue,
};
use decoder_sim::{
    CacheConfig, DefectKind, MonteCarloConfig, ReportCache, SimConfig, SimulationPlatform,
    CACHE_SCHEMA_VERSION,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn config(kind: CodeKind, length: usize) -> SimConfig {
    let code = CodeSpec::new(kind, LogicLevel::BINARY, length).unwrap();
    SimConfig::paper_defaults(code).unwrap()
}

/// Strips top-level keys from an object — the shape of a document written
/// by a build that predates those fields.
fn without_keys(value: &JsonValue, keys: &[&str]) -> JsonValue {
    match value {
        JsonValue::Object(fields) => JsonValue::Object(
            fields
                .iter()
                .filter(|(name, _)| !keys.contains(&name.as_str()))
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

const REPORT_DEFECT_KEYS: [&str; 4] = [
    "defects",
    "defect_survival",
    "composite_yield",
    "composite_effective_bits",
];

#[test]
fn pre_defect_configs_decode_as_defect_free() {
    let expected = config(CodeKind::BalancedGray, 10);
    let legacy = without_keys(&config_to_json(&expected), &["defects"]);
    assert!(legacy.get_opt("defects").unwrap().is_none());
    let decoded = config_from_json(&legacy).unwrap();
    assert_eq!(decoded.defects(), DefectKind::None);
    // The decoded configuration is indistinguishable from a fresh one —
    // same identity, same cache fingerprint.
    assert_eq!(decoded, expected);
    assert_eq!(
        ReportCache::fingerprint(&decoded),
        ReportCache::fingerprint(&expected)
    );
}

#[test]
fn pre_adaptive_configs_decode_with_fixed_sampling_defaults() {
    // The byte shape a PR 8-era writer produced: no "monte_carlo" key on
    // the config object at all. It must decode to the historical
    // fixed-sample default and stay identity-equal to a fresh config.
    let expected = config(CodeKind::BalancedGray, 10);
    let legacy = without_keys(&config_to_json(&expected), &["monte_carlo"]);
    assert!(legacy.get_opt("monte_carlo").unwrap().is_none());
    let decoded = config_from_json(&legacy).unwrap();
    assert_eq!(decoded.monte_carlo(), MonteCarloConfig::default());
    assert!(!decoded.monte_carlo().is_adaptive());
    assert_eq!(decoded, expected);
    assert_eq!(
        ReportCache::fingerprint(&decoded),
        ReportCache::fingerprint(&expected)
    );
    // A config stripped of *both* additive dimensions — the oldest wire
    // shape still in the field — decodes too.
    let oldest = without_keys(&config_to_json(&expected), &["defects", "monte_carlo"]);
    assert_eq!(config_from_json(&oldest).unwrap(), expected);
}

#[test]
fn pre_defect_reports_decode_with_defect_free_composites() {
    let expected = SimulationPlatform::new(config(CodeKind::Tree, 8))
        .evaluate()
        .unwrap();
    let legacy = without_keys(&report_to_json(&expected), &REPORT_DEFECT_KEYS);
    let decoded = report_from_json(&legacy).unwrap();
    assert_eq!(decoded, expected);
    assert_eq!(decoded.defects, DefectKind::None);
    assert_eq!(decoded.defect_survival, 1.0);
    assert_eq!(
        decoded.composite_yield.to_bits(),
        expected.crossbar_yield.to_bits()
    );
    assert_eq!(
        decoded.composite_effective_bits.to_bits(),
        expected.effective_bits.to_bits()
    );
}

#[test]
fn mixed_version_round_trips_stay_bit_identical() {
    // old JSON → decode → re-encode (new format) → decode: every value,
    // float bits included, survives both generations.
    let fresh = SimulationPlatform::new(config(CodeKind::Gray, 10))
        .evaluate()
        .unwrap();
    let legacy = without_keys(&report_to_json(&fresh), &REPORT_DEFECT_KEYS);
    let first = report_from_json(&legacy).unwrap();
    let second = report_from_json(&report_to_json(&first)).unwrap();
    assert_eq!(first, second);
    assert_eq!(
        first.crossbar_yield.to_bits(),
        second.crossbar_yield.to_bits()
    );
    assert_eq!(
        first.composite_yield.to_bits(),
        second.composite_yield.to_bits()
    );

    // And the new format round-trips defect-composed reports exactly too.
    let defective = SimulationPlatform::new(
        config(CodeKind::Gray, 10).with_defects(DefectKind::sampled(0.05, 0.02, 2_009).unwrap()),
    )
    .evaluate()
    .unwrap();
    let decoded = report_from_json(&report_to_json(&defective)).unwrap();
    assert_eq!(decoded, defective);
    assert_eq!(
        decoded.composite_yield.to_bits(),
        defective.composite_yield.to_bits()
    );
    assert!(decoded.defect_survival < 1.0);
}

#[test]
fn pr4_era_cache_snapshots_load_and_serve_bit_identically() {
    // Build a snapshot, then strip the defect fields from every row — the
    // exact byte shape a PR 4-era process would have persisted (same
    // schema_version; the defect fields are additive, not a format bump).
    let warm = ReportCache::new(CacheConfig::default());
    let configs = [
        config(CodeKind::Tree, 8),
        config(CodeKind::BalancedGray, 10),
    ];
    for entry in &configs {
        warm.get_or_compute(entry, || SimulationPlatform::new(entry.clone()).evaluate())
            .unwrap();
    }
    let snapshot = JsonValue::parse(&warm.snapshot_json()).unwrap();
    assert_eq!(
        snapshot.get("schema_version").unwrap().as_u64().unwrap(),
        CACHE_SCHEMA_VERSION
    );
    let legacy_rows: Vec<JsonValue> = snapshot
        .get("entries")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                (
                    "config".to_string(),
                    without_keys(row.get("config").unwrap(), &["defects", "monte_carlo"]),
                ),
                (
                    "report".to_string(),
                    without_keys(row.get("report").unwrap(), &REPORT_DEFECT_KEYS),
                ),
            ])
        })
        .collect();
    let legacy_snapshot = JsonValue::Object(vec![
        (
            "schema_version".to_string(),
            JsonValue::from_u64(CACHE_SCHEMA_VERSION),
        ),
        ("entries".to_string(), JsonValue::Array(legacy_rows)),
    ])
    .render();

    let restored = ReportCache::new(CacheConfig::default());
    assert_eq!(restored.load_snapshot(&legacy_snapshot).unwrap(), 2);
    for entry in &configs {
        assert!(restored.contains(entry), "legacy snapshot lost an entry");
        let original = warm.get_or_compute(entry, || unreachable!("warm")).unwrap();
        let reloaded = restored
            .get_or_compute(entry, || unreachable!("warm"))
            .unwrap();
        assert_eq!(reloaded, original);
        assert_eq!(
            reloaded.composite_yield.to_bits(),
            original.composite_yield.to_bits()
        );
    }
}
