//! The sharded, bounded, single-flight report cache behind the execution
//! engine and the serve layer.
//!
//! The sharding / LRU / single-flight machinery lives in the generic
//! [`MemoCache`]; [`ReportCache`] is the (`SimConfig` → `PlatformReport`)
//! instantiation that adds config fingerprinting and snapshot persistence,
//! and the per-stage memo slots of [`crate::stage::StageCache`] are further
//! instantiations of the same table — one set of counters, bounds and
//! single-flight semantics for every memoized quantity in the workspace.
//!
//! # Design
//!
//! * **Sharding.** Entries are spread over [`CacheConfig::shards`] independent
//!   `Mutex`-guarded shards, selected by a fingerprint of the configuration's
//!   canonical serialized form, so concurrent clients touching different
//!   configurations rarely contend on one lock.
//! * **Bounded LRU.** Each shard holds at most `ceil(capacity / shards)`
//!   entries and evicts its least-recently-used entry beyond that (recency is
//!   a global atomic tick, so LRU order is exact within a shard; with one
//!   shard it is exact globally — the configuration the eviction tests use).
//!   The shard count is clamped to at most `capacity`, so a tiny capacity is
//!   an exact single-shard bound rather than one-per-shard over-retention;
//!   capacity `0` disables storage entirely.
//! * **Single-flight.** Concurrent identical requests block on one in-flight
//!   evaluation via `Mutex` + `Condvar` (std only — crates.io is unreachable
//!   here): the first requester computes, every waiter is then served the
//!   cached result. If the leader fails, waiters retake the lead one at a
//!   time instead of hanging.
//! * **Counters.** Hits, misses and evictions are atomic counters readable at
//!   any time through [`ReportCache::stats`]; the serve stress gate derives
//!   its hit-rate assertions from them.
//! * **Persistence.** [`ReportCache::save_to_path`] writes a versioned
//!   snapshot (`schema_version` [`CACHE_SCHEMA_VERSION`]) that
//!   [`ReportCache::load_from_path`] restores bit-identically; a mismatched
//!   schema version is rejected, never reinterpreted. Snapshots are bounded
//!   to the configured capacity on save (over-retained shard overflow is
//!   dropped, most-recently-used entries win), so the persisted file cannot
//!   grow without bound across warm restarts.
//!
//! # Snapshot formats
//!
//! Two snapshot encodings share the schema version and the loader:
//!
//! * **Binary** (the default): a [`crate::bincodec`] document
//!   ([`bincodec::DOC_SNAPSHOT`]) holding a header section and one section
//!   per row — a write timestamp, the configuration fingerprint, and the
//!   nested binary config/report documents. Saving over an existing binary
//!   snapshot **appends** only the rows whose fingerprint the file does not
//!   already hold (an O(new) write instead of a full rewrite), falling back
//!   to a compacting rewrite when the combined row count would exceed the
//!   capacity bound or the existing file is unreadable.
//! * **JSON** (set `MSPT_CACHE_FORMAT=json`): the PR 5/6-era text format,
//!   kept for inspectability; always a full rewrite.
//!
//! [`ReportCache::load_from_path`] auto-detects the format from the first
//! byte (binary documents open with `0xB1`, JSON with `{`), so JSON-era
//! snapshot files keep loading unchanged. Binary rows carry the time they
//! were written; a positive `MSPT_CACHE_MAX_AGE_SECS` drops rows older than
//! that bound at load, so a long-lived warm file cannot resurrect reports
//! from arbitrarily far in the past.
//!
//! # Cache-key identity
//!
//! Keys fingerprint the **canonical serialized configuration** — every field
//! of [`SimConfig`], including its [`DisturbanceKind`](crate::DisturbanceKind)
//! and its [`DefectKind`](crate::DefectKind) — mixed with a cache-domain tag
//! through the workspace-wide [`chunk_seed`] stream-splitting primitive. A
//! Gaussian and a Laplace run (or a defect-free and a defective run) with
//! the same platform parameters therefore never alias, in memory or on
//! disk; equality of the full `SimConfig` is re-checked on every lookup, so a
//! fingerprint collision can cost a duplicate evaluation but never serve the
//! wrong report.

use std::collections::{BTreeSet, HashMap};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

use crossbar_array::chunk_seed;

use crate::bincodec::{self, BinReader, BinWriter};
use crate::codec::{
    canonical_config_string, config_from_json, config_to_json, report_from_json, report_to_json,
    JsonValue,
};
use crate::config::SimConfig;
use crate::error::{Result, SimError};
use crate::platform::PlatformReport;

/// Environment variable overriding the default report-cache capacity.
pub const CACHE_CAPACITY_ENV: &str = "MSPT_CACHE_CAPACITY";

/// Environment variable naming the warm-cache persistence file `run_all` and
/// the serve stress bin load on start and save on exit.
pub const CACHE_PATH_ENV: &str = "MSPT_CACHE_PATH";

/// Environment variable selecting the snapshot encoding `save_to_path`
/// writes: `binary` (the default — compact, append-friendly) or `json`
/// (the PR 5/6-era text format, kept for inspectability). Loading
/// auto-detects the format, so this knob never affects reads.
pub const CACHE_FORMAT_ENV: &str = "MSPT_CACHE_FORMAT";

/// Environment variable bounding the age, in seconds, of binary snapshot
/// rows at load: rows written longer ago than this are skipped. Unset or
/// `0` disables the bound. JSON snapshots carry no timestamps and are never
/// age-bounded.
pub const CACHE_MAX_AGE_ENV: &str = "MSPT_CACHE_MAX_AGE_SECS";

/// Schema version of the persisted snapshot format. Bump on any change to
/// the on-disk layout; loaders reject every other version.
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// Default bound on the number of cached reports (far above the paper's
/// sweep-point count, so default runs never evict).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default shard count of the cache.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Domain-separation tag mixed into cache-key fingerprints before the
/// [`chunk_seed`] finalizer. Keeps the cache's key stream decorrelated from
/// the Monte-Carlo and defect-map seed domains, exactly like the defect
/// layer's own domain tag.
const CACHE_KEY_DOMAIN: u64 = 0xcac4_e4e7_5e12_7a03;

/// Binary snapshot section carrying the cache schema version (`u64` body).
/// Must precede every row section.
const TAG_SNAPSHOT_HEADER: u8 = 0x01;

/// Binary snapshot section carrying one cached entry: save timestamp
/// (`u64` Unix seconds), fingerprint (`u64`), then the length-prefixed
/// config and report [`crate::bincodec`] documents.
const TAG_SNAPSHOT_ROW: u8 = 0x02;

/// Knobs of the report cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Upper bound on stored entries. `0` disables storage (every request
    /// recomputes). The bound is enforced per shard as
    /// `ceil(capacity / shards)`, so it is exact when `shards` divides
    /// `capacity` (true for the defaults) or for a single shard, and never
    /// exceeded by more than `shards − 1` entries otherwise. The shard count
    /// is clamped to at most `capacity`, so tiny capacities degenerate to
    /// exact single-shard LRU instead of over-retaining.
    pub capacity: usize,
    /// Number of independently locked shards (clamped to at least one, and
    /// to at most `capacity` when the capacity is positive).
    pub shards: usize,
}

impl CacheConfig {
    /// A single-shard configuration: exact global LRU order, at the price of
    /// one lock — what the eviction-order tests and small caches want.
    #[must_use]
    pub fn unsharded(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            shards: 1,
        }
    }
}

impl Default for CacheConfig {
    /// Capacity: the `MSPT_CACHE_CAPACITY` environment variable when set to a
    /// valid integer (zero allowed — it disables caching), otherwise
    /// [`DEFAULT_CACHE_CAPACITY`]. Shards: [`DEFAULT_CACHE_SHARDS`].
    fn default() -> Self {
        CacheConfig {
            capacity: default_capacity(),
            shards: DEFAULT_CACHE_SHARDS,
        }
    }
}

fn default_capacity() -> usize {
    if let Ok(value) = std::env::var(CACHE_CAPACITY_ENV) {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            return parsed;
        }
    }
    DEFAULT_CACHE_CAPACITY
}

/// The encoding [`ReportCache::save_to_path`] writes. Loading always
/// auto-detects, so the choice only affects new snapshot files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// Compact [`crate::bincodec`] document; saves append new rows to an
    /// existing binary file instead of rewriting it.
    #[default]
    Binary,
    /// The PR 5/6-era JSON text format; always a full rewrite.
    Json,
}

impl SnapshotFormat {
    /// Reads [`CACHE_FORMAT_ENV`]: `json` (any case) selects JSON,
    /// everything else — including unset — selects binary.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(CACHE_FORMAT_ENV) {
            Ok(value) if value.trim().eq_ignore_ascii_case("json") => SnapshotFormat::Json,
            _ => SnapshotFormat::Binary,
        }
    }
}

/// Seconds since the Unix epoch, stamped on binary snapshot rows at save so
/// the age bound at load has something to measure against. Clock failure
/// degrades to `0`, which the bound treats as "arbitrarily old".
fn now_unix() -> u64 {
    // mspt-analyze: allow(determinism-unsafe-calls) snapshot row timestamps are persistence metadata consumed only by the load-time age bound; they never feed an evaluation result
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |elapsed| elapsed.as_secs())
}

/// Reads [`CACHE_MAX_AGE_ENV`]: a positive integer bounds row age at load;
/// unset, unparsable or `0` disables the bound.
fn max_age_from_env() -> u64 {
    std::env::var(CACHE_MAX_AGE_ENV)
        .ok()
        .and_then(|value| value.trim().parse::<u64>().ok())
        .filter(|&seconds| seconds > 0)
        .unwrap_or(u64::MAX)
}

/// One [`TAG_SNAPSHOT_ROW`] section (tag + length + body) for a cached
/// entry — the unit both full snapshots and appending saves write.
fn snapshot_row_section(
    written_at: u64,
    fingerprint: u64,
    config: &SimConfig,
    report: &PlatformReport,
) -> Vec<u8> {
    let config_bytes = bincodec::config_to_bin(config);
    let report_bytes = bincodec::report_to_bin(report);
    let mut body = BinWriter::new();
    body.put_u64(written_at);
    body.put_u64(fingerprint);
    body.put_u32(u32::try_from(config_bytes.len()).unwrap_or(u32::MAX));
    body.put_bytes(&config_bytes);
    body.put_u32(u32::try_from(report_bytes.len()).unwrap_or(u32::MAX));
    body.put_bytes(&report_bytes);
    let mut section = BinWriter::new();
    section.section(TAG_SNAPSHOT_ROW, &body.into_bytes());
    section.into_bytes()
}

/// A complete binary snapshot document: header section first, then one row
/// section per entry, all stamped `written_at`.
fn encode_snapshot_bin(rows: &[(u64, SimConfig, PlatformReport)], written_at: u64) -> Vec<u8> {
    let mut payload = BinWriter::new();
    let mut header = BinWriter::new();
    header.put_u64(CACHE_SCHEMA_VERSION);
    payload.section(TAG_SNAPSHOT_HEADER, &header.into_bytes());
    for (fingerprint, config, report) in rows {
        payload.put_bytes(&snapshot_row_section(
            written_at,
            *fingerprint,
            config,
            report,
        ));
    }
    bincodec::document(bincodec::DOC_SNAPSHOT, &payload.into_bytes())
}

/// Fingerprints already persisted in a binary snapshot file, read from the
/// row headers without decoding config/report bodies. `None` when the file
/// is missing, not a current-version binary snapshot, or damaged — the
/// appending save then falls back to a full rewrite.
fn existing_binary_fingerprints(path: &Path) -> Option<BTreeSet<u64>> {
    let bytes = std::fs::read(path).ok()?;
    let payload = bincodec::document_payload(&bytes, bincodec::DOC_SNAPSHOT).ok()?;
    let mut reader = BinReader::new(payload);
    let mut header_seen = false;
    let mut fingerprints = BTreeSet::new();
    loop {
        match reader.next_section() {
            Ok(Some((TAG_SNAPSHOT_HEADER, body))) => {
                let mut section = BinReader::new(body);
                if section.take_u64().ok()? != CACHE_SCHEMA_VERSION {
                    return None;
                }
                header_seen = true;
            }
            Ok(Some((TAG_SNAPSHOT_ROW, body))) => {
                let mut section = BinReader::new(body);
                section.take_u64().ok()?; // written_at
                fingerprints.insert(section.take_u64().ok()?);
            }
            Ok(Some(_)) => {} // Unknown section: skippable, not ours to judge.
            Ok(None) => break,
            Err(_) => return None,
        }
    }
    header_seen.then_some(fingerprints)
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a stored entry (including single-flight waiters
    /// served by the leader's computation).
    pub hits: u64,
    /// Lookups that had to compute (single-flight leaders only).
    pub misses: u64,
    /// Entries dropped to keep a shard within its capacity.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// FNV-1a over `key`, finalized through [`chunk_seed`] under `domain` at
/// stream index `index` — the common fingerprint primitive of the report
/// cache (`CACHE_KEY_DOMAIN`, index 0) and the per-stage caches
/// (`STAGE_KEY_DOMAIN`, indexed by stage).
pub(crate) fn key_fingerprint(domain: u64, index: u64, key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    chunk_seed(hash ^ domain, index)
}

/// One stored entry of a [`MemoCache`]: the shard-selecting fingerprint, the
/// full canonical key it was derived from, the memoized value and the
/// recency tick.
struct Entry<V> {
    fingerprint: u64,
    key: String,
    value: V,
    last_used: u64,
}

/// The `Mutex` + `Condvar` pair a single-flight leader signals completion on.
struct Flight {
    done: Mutex<bool>,
    completed: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(false),
            completed: Condvar::new(),
        }
    }

    fn wait(&self) {
        // Poison recovery is sound here: the only mutation under this lock
        // is the single `done = true` store, so a panicking holder cannot
        // leave the flag half-written.
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self
                .completed
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self) {
        // Tolerates a poisoned lock: completion also runs from a drop guard
        // during panic unwinding, where a second panic would abort.
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.completed.notify_all();
    }
}

/// Unwinding-safe single-flight leadership: when the leader's stack unwinds
/// — normally or through a panic in the compute closure — the guard removes
/// the in-flight marker and wakes every waiter. Without it, a panicking
/// evaluation would leave the marker behind and every current and future
/// request for that fingerprint would block forever.
struct FlightGuard<'a, V: Clone> {
    cache: &'a MemoCache<V>,
    fingerprint: u64,
    flight: Arc<Flight>,
}

impl<V: Clone> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        match self.cache.shard_for(self.fingerprint).lock() {
            Ok(mut shard) => {
                shard.in_flight.remove(&self.fingerprint);
            }
            Err(poisoned) => {
                poisoned.into_inner().in_flight.remove(&self.fingerprint);
            }
        }
        self.flight.complete();
    }
}

struct Shard<V> {
    entries: Vec<Entry<V>>,
    // mspt-analyze: allow(determinism-unsafe-calls) key-lookup only; the map is never iterated, so hash order cannot leak
    in_flight: HashMap<u64, Arc<Flight>>,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            entries: Vec::new(),
            // mspt-analyze: allow(determinism-unsafe-calls) key-lookup only; the map is never iterated, so hash order cannot leak
            in_flight: HashMap::new(),
        }
    }
}

/// The generic fingerprint-sharded, bounded-LRU, single-flight memo table —
/// the machinery [`ReportCache`] runs on, factored out so the per-stage
/// memo slots of [`crate::stage::StageCache`] reuse it unchanged: sharding,
/// exact per-shard LRU, `Mutex` + `Condvar` single-flight and
/// hit/miss/eviction counters, generic over the memoized value.
///
/// A key is a `(fingerprint, canonical key string)` pair: the fingerprint
/// selects the shard and prefilters lookups, and the full key string is
/// re-checked on every match, so a fingerprint collision can cost a
/// duplicate computation but never serve the wrong value.
pub struct MemoCache<V: Clone> {
    config: CacheConfig,
    shards: Vec<Mutex<Shard<V>>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> std::fmt::Debug for MemoCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<V: Clone> MemoCache<V> {
    /// Creates a memo table. The shard count is clamped to `1..=capacity`
    /// (one shard when the capacity is zero); a zero capacity disables
    /// storage.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).min(config.capacity.max(1));
        MemoCache {
            config: CacheConfig {
                capacity: config.capacity,
                shards,
            },
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The (clamped) configuration of the table.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The per-shard entry bound: `ceil(capacity / shards)`, or zero when
    /// storage is disabled.
    fn shard_capacity(&self) -> usize {
        self.config.capacity.div_ceil(self.config.shards)
    }

    fn shard_for(&self, fingerprint: u64) -> &Mutex<Shard<V>> {
        &self.shards[(fingerprint % self.config.shards as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the table stores nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a key is currently stored. Does **not** refresh the entry's
    /// recency or touch the counters — a pure probe for tests and
    /// diagnostics.
    #[must_use]
    pub fn contains_key(&self, fingerprint: u64, key: &str) -> bool {
        let shard = self
            .shard_for(fingerprint)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard
            .entries
            .iter()
            .any(|entry| entry.fingerprint == fingerprint && entry.key == key)
    }

    /// The current counter values.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Inserts an entry under its shard lock — see
    /// [`MemoCache::insert_locked`]. Returns whether the entry was stored.
    pub fn insert(&self, fingerprint: u64, key: &str, value: &V) -> bool {
        let mut shard = self
            .shard_for(fingerprint)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.insert_locked(&mut shard, fingerprint, key, value)
    }

    /// Inserts an entry into its shard as most-recently-used, then evicts
    /// least-recently-used entries beyond the shard bound. Returns whether
    /// the entry was stored — `false` for an already-present key or a
    /// disabled table.
    fn insert_locked(&self, shard: &mut Shard<V>, fingerprint: u64, key: &str, value: &V) -> bool {
        let capacity = self.shard_capacity();
        if capacity == 0 {
            return false;
        }
        if shard
            .entries
            .iter()
            .any(|entry| entry.fingerprint == fingerprint && entry.key == key)
        {
            return false;
        }
        shard.entries.push(Entry {
            fingerprint,
            key: key.to_string(),
            value: value.clone(),
            last_used: self.next_tick(),
        });
        while shard.entries.len() > capacity {
            let oldest = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(index, _)| index)
                .expect("non-empty shard");
            shard.entries.swap_remove(oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Looks up a key, computing it through `compute` on a miss — the
    /// single-flight entry point everything above a memo table uses.
    ///
    /// Concurrent callers with the same key block on one computation: the
    /// first becomes the leader (counted as a miss), every other caller
    /// waits on the leader's `Condvar` and is then served the stored result
    /// (counted as a hit). If the leader's computation fails, its error is
    /// returned to the leader and the waiters retake the lead one at a
    /// time.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (the table never stores failures).
    pub fn get_or_compute<F>(&self, fingerprint: u64, key: &str, compute: F) -> Result<V>
    where
        F: FnOnce() -> Result<V>,
    {
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut shard = self
                    .shard_for(fingerprint)
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if let Some(entry) = shard
                    .entries
                    .iter_mut()
                    .find(|entry| entry.fingerprint == fingerprint && entry.key == key)
                {
                    entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(entry.value.clone());
                }
                match shard.in_flight.get(&fingerprint) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(Flight::new());
                        shard.in_flight.insert(fingerprint, Arc::clone(&flight));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        drop(shard);
                        // Leader path: compute outside the shard lock. The
                        // guard unregisters the flight and wakes waiters on
                        // every exit — including a panicking compute.
                        let _guard = FlightGuard {
                            cache: self,
                            fingerprint,
                            flight,
                        };
                        let computation = compute
                            .take()
                            .expect("a caller leads at most one computation")(
                        );
                        if let Ok(value) = &computation {
                            let mut shard = self
                                .shard_for(fingerprint)
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner);
                            self.insert_locked(&mut shard, fingerprint, key, value);
                        }
                        // `_guard` drops here: waiters wake after the entry
                        // is stored, so a successful leader turns them into
                        // plain hits.
                        return computation;
                    }
                }
            };
            // Waiter path: block until the leader finishes, then re-check —
            // a hit if the leader stored the entry, otherwise this caller
            // takes the lead itself (leader failed, or capacity is zero).
            flight.wait();
        }
    }

    /// An unordered point-in-time copy of every stored entry:
    /// `(fingerprint, key, value, last_used)` rows, one shard at a time —
    /// what snapshot persistence builds its bounded, sorted row set from.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, String, V, u64)> {
        let mut rows = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for entry in &shard.entries {
                rows.push((
                    entry.fingerprint,
                    entry.key.clone(),
                    entry.value.clone(),
                    entry.last_used,
                ));
            }
        }
        rows
    }
}

/// The value [`ReportCache`] memoizes per configuration: the decoded
/// configuration rides along with the report so snapshot persistence can
/// re-encode both without reparsing the canonical key string.
#[derive(Clone)]
struct CachedReport {
    config: SimConfig,
    report: PlatformReport,
}

/// The sharded, bounded, single-flight LRU cache of
/// ([`SimConfig`] → [`PlatformReport`]) evaluations — a `MemoCache` keyed
/// by the canonical serialized configuration, plus versioned snapshot
/// persistence. See the module docs for the design; see
/// [`ExecutionEngine`](crate::ExecutionEngine) for the primary consumer.
pub struct ReportCache {
    memo: MemoCache<CachedReport>,
}

impl std::fmt::Debug for ReportCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportCache")
            .field("config", self.memo.config())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for ReportCache {
    fn default() -> Self {
        ReportCache::new(CacheConfig::default())
    }
}

impl ReportCache {
    /// Creates a cache. The shard count is clamped to `1..=capacity` (one
    /// shard when the capacity is zero); a zero capacity disables storage.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        ReportCache {
            memo: MemoCache::new(config),
        }
    }

    /// The (clamped) configuration of the cache.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        self.memo.config()
    }

    /// The fingerprint of a configuration: an FNV-1a hash of its canonical
    /// serialized form, finalized through [`chunk_seed`] under the cache's
    /// domain tag. Includes every field of the configuration — notably the
    /// disturbance kind.
    #[must_use]
    pub fn fingerprint(config: &SimConfig) -> u64 {
        key_fingerprint(CACHE_KEY_DOMAIN, 0, &canonical_config_string(config))
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache stores nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Whether a configuration is currently stored. Does **not** refresh the
    /// entry's recency or touch the counters — a pure probe for tests and
    /// diagnostics.
    #[must_use]
    pub fn contains(&self, config: &SimConfig) -> bool {
        let key = canonical_config_string(config);
        self.memo
            .contains_key(key_fingerprint(CACHE_KEY_DOMAIN, 0, &key), &key)
    }

    /// The current counter values.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Looks up a configuration, computing it through `compute` on a miss —
    /// the single-flight entry point everything above the cache uses. See
    /// `MemoCache::get_or_compute` for the leader/waiter semantics.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (the cache never stores failures).
    pub fn get_or_compute<F>(&self, config: &SimConfig, compute: F) -> Result<PlatformReport>
    where
        F: FnOnce() -> Result<PlatformReport>,
    {
        let key = canonical_config_string(config);
        let fingerprint = key_fingerprint(CACHE_KEY_DOMAIN, 0, &key);
        self.memo
            .get_or_compute(fingerprint, &key, || {
                compute().map(|report| CachedReport {
                    config: config.clone(),
                    report,
                })
            })
            .map(|cached| cached.report)
    }

    /// Renders the cache as a versioned JSON snapshot, **bounded to the
    /// configured capacity**: the per-shard LRU bound can over-retain up to
    /// `shards − 1` entries beyond `capacity` when the shard count does not
    /// divide it, so the snapshot keeps only the `capacity` most recently
    /// used entries — the persisted file can never grow past the configured
    /// bound across warm restarts. Which entries survive therefore follows
    /// access recency; the surviving set itself is sorted by canonical
    /// configuration string, so two caches persisting the same surviving
    /// entries render byte-identical files regardless of insertion order.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.snapshot_with_count().0
    }

    /// The rows a snapshot persists, in persisted order: every stored
    /// entry, most-recently-used entries winning the truncation to the
    /// capacity bound, the surviving set sorted by canonical configuration
    /// string so both snapshot encodings are deterministic for a given
    /// surviving set.
    fn snapshot_rows(&self) -> Vec<(u64, SimConfig, PlatformReport)> {
        // The memo key *is* the canonical configuration string, so the
        // deterministic snapshot order comes straight from the entries.
        let mut rows: Vec<(u64, String, u64, SimConfig, PlatformReport)> = self
            .memo
            .entries()
            .into_iter()
            .map(|(fingerprint, key, cached, last_used)| {
                (last_used, key, fingerprint, cached.config, cached.report)
            })
            .collect();
        // Most recently used first, then truncate to the capacity bound.
        rows.sort_by_key(|row| std::cmp::Reverse(row.0));
        rows.truncate(self.memo.config().capacity);
        rows.sort_by(|a, b| a.1.cmp(&b.1));
        rows.into_iter()
            .map(|(_, _, fingerprint, config, report)| (fingerprint, config, report))
            .collect()
    }

    /// [`ReportCache::snapshot_json`] plus the number of persisted rows,
    /// counted from the snapshot itself — the shards are re-locked here, so
    /// only this count is guaranteed to match the rendered document under
    /// concurrent inserts.
    fn snapshot_with_count(&self) -> (String, usize) {
        let rows = self.snapshot_rows();
        let count = rows.len();
        let snapshot = JsonValue::Object(vec![
            (
                "schema_version".to_string(),
                JsonValue::from_u64(CACHE_SCHEMA_VERSION),
            ),
            (
                "entries".to_string(),
                JsonValue::Array(
                    rows.iter()
                        .map(|(_, config, report)| {
                            JsonValue::Object(vec![
                                ("config".to_string(), config_to_json(config)),
                                ("report".to_string(), report_to_json(report)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render();
        (snapshot, count)
    }

    /// Renders the cache as a binary snapshot document — the same rows as
    /// [`ReportCache::snapshot_json`] (same bounding, same order) in the
    /// compact [`crate::bincodec`] encoding, each row stamped with the
    /// current time for the load-side age bound.
    #[must_use]
    pub fn snapshot_bin(&self) -> Vec<u8> {
        encode_snapshot_bin(&self.snapshot_rows(), now_unix())
    }

    /// Restores entries from a binary snapshot with no age bound applied.
    /// Returns the number of entries actually stored.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on malformed bytes or a mismatched
    /// schema version.
    pub fn load_snapshot_bin(&self, bytes: &[u8]) -> Result<usize> {
        self.load_snapshot_bin_bounded(bytes, 0, u64::MAX)
    }

    /// Restores entries from a binary snapshot produced by
    /// [`ReportCache::snapshot_bin`] (or accumulated by appending saves),
    /// skipping rows written more than `max_age_secs` before `now_unix` —
    /// the load-side age bound that keeps a long-lived warm file from
    /// resurrecting arbitrarily old reports. Returns the number of entries
    /// actually stored; age-skipped and already-present rows are not
    /// counted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on malformed bytes, a mismatched
    /// schema version, or a row section appearing before the header.
    pub fn load_snapshot_bin_bounded(
        &self,
        bytes: &[u8],
        now_unix: u64,
        max_age_secs: u64,
    ) -> Result<usize> {
        let payload = bincodec::document_payload(bytes, bincodec::DOC_SNAPSHOT)?;
        let mut reader = BinReader::new(payload);
        let mut version: Option<u64> = None;
        let mut loaded = 0;
        while let Some((tag, body)) = reader.next_section()? {
            match tag {
                TAG_SNAPSHOT_HEADER => {
                    let mut section = BinReader::new(body);
                    let value = section.take_u64()?;
                    section.finish()?;
                    if value != CACHE_SCHEMA_VERSION {
                        return Err(SimError::Persistence {
                            reason: format!(
                                "cache snapshot schema version {value} does not match supported version {CACHE_SCHEMA_VERSION}"
                            ),
                        });
                    }
                    if version.replace(value).is_some() {
                        return Err(SimError::Persistence {
                            reason: "duplicate header section in binary cache snapshot".to_string(),
                        });
                    }
                }
                TAG_SNAPSHOT_ROW => {
                    if version.is_none() {
                        return Err(SimError::Persistence {
                            reason: "binary cache snapshot row appears before the header"
                                .to_string(),
                        });
                    }
                    let mut section = BinReader::new(body);
                    let written_at = section.take_u64()?;
                    // The stored fingerprint serves the append-time scan;
                    // loading recomputes it from the decoded configuration
                    // so a corrupted value can never misfile an entry.
                    let _stored_fingerprint = section.take_u64()?;
                    let config_length = section.take_u32()? as usize;
                    let config = bincodec::config_from_bin(section.take_bytes(config_length)?)?;
                    let report_length = section.take_u32()? as usize;
                    let report = bincodec::report_from_bin(section.take_bytes(report_length)?)?;
                    section.finish()?;
                    if now_unix.saturating_sub(written_at) > max_age_secs {
                        continue;
                    }
                    let key = canonical_config_string(&config);
                    let fingerprint = key_fingerprint(CACHE_KEY_DOMAIN, 0, &key);
                    if self
                        .memo
                        .insert(fingerprint, &key, &CachedReport { config, report })
                    {
                        loaded += 1;
                    }
                }
                _ => {} // Forward compatibility: skip sections a later writer added.
            }
        }
        if version.is_none() {
            return Err(SimError::Persistence {
                reason: "binary cache snapshot is missing its header section".to_string(),
            });
        }
        Ok(loaded)
    }

    /// Restores entries from a snapshot produced by
    /// [`ReportCache::snapshot_json`], inserting them as most-recently-used
    /// in snapshot order (capacity bounds still apply). Returns the number
    /// of entries actually stored — rows the cache rejected (already
    /// present, or storage disabled) are not counted, though under a bound
    /// tighter than the snapshot a stored row may still evict an earlier
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on malformed JSON or a
    /// `schema_version` other than [`CACHE_SCHEMA_VERSION`] — a snapshot
    /// from a different format generation is rejected, never reinterpreted.
    pub fn load_snapshot(&self, snapshot: &str) -> Result<usize> {
        let value = JsonValue::parse(snapshot)?;
        let version = value.get("schema_version")?.as_u64()?;
        if version != CACHE_SCHEMA_VERSION {
            return Err(SimError::Persistence {
                reason: format!(
                    "cache snapshot schema version {version} does not match supported version {CACHE_SCHEMA_VERSION}"
                ),
            });
        }
        let entries = value.get("entries")?.as_array()?;
        let mut loaded = 0;
        for row in entries {
            let config = config_from_json(row.get("config")?)?;
            let report = report_from_json(row.get("report")?)?;
            let key = canonical_config_string(&config);
            let fingerprint = key_fingerprint(CACHE_KEY_DOMAIN, 0, &key);
            if self
                .memo
                .insert(fingerprint, &key, &CachedReport { config, report })
            {
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Writes the snapshot to a file in the format selected by
    /// [`SnapshotFormat::from_env`] (binary by default). A binary save onto
    /// an existing current-version binary file appends only the rows whose
    /// fingerprints the file lacks instead of rewriting everything; any
    /// other target — missing file, JSON file, older or damaged binary, or
    /// an append that would exceed the capacity bound — is a full rewrite.
    /// Returns the number of rows the file holds after the save (at most
    /// the configured capacity on a rewrite).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on I/O failure.
    pub fn save_to_path(&self, path: &Path) -> Result<usize> {
        match SnapshotFormat::from_env() {
            SnapshotFormat::Json => {
                let (snapshot, entries) = self.snapshot_with_count();
                std::fs::write(path, snapshot)
                    .map_err(|io| persistence_io("writing", path, &io))?;
                Ok(entries)
            }
            SnapshotFormat::Binary => self.save_binary(path),
        }
    }

    /// The binary save path: append fresh rows when the target is already a
    /// healthy current-version binary snapshot with room for them, full
    /// rewrite otherwise.
    fn save_binary(&self, path: &Path) -> Result<usize> {
        let written_at = now_unix();
        let rows = self.snapshot_rows();
        if let Some(existing) = existing_binary_fingerprints(path) {
            let fresh: Vec<&(u64, SimConfig, PlatformReport)> = rows
                .iter()
                .filter(|(fingerprint, _, _)| !existing.contains(fingerprint))
                .collect();
            if existing.len() + fresh.len() <= self.memo.config().capacity {
                let mut appended = Vec::new();
                for (fingerprint, config, report) in fresh.iter().copied() {
                    appended.extend_from_slice(&snapshot_row_section(
                        written_at,
                        *fingerprint,
                        config,
                        report,
                    ));
                }
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|io| persistence_io("appending to", path, &io))?;
                file.write_all(&appended)
                    .map_err(|io| persistence_io("appending to", path, &io))?;
                return Ok(existing.len() + fresh.len());
            }
        }
        std::fs::write(path, encode_snapshot_bin(&rows, written_at))
            .map_err(|io| persistence_io("writing", path, &io))?;
        Ok(rows.len())
    }

    /// Loads a snapshot file saved by [`ReportCache::save_to_path`] in either
    /// format, auto-detected from the first byte. Binary snapshots honour the
    /// [`CACHE_MAX_AGE_ENV`] age bound; JSON snapshots carry no timestamps
    /// and load in full. Returns the number of entries loaded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on I/O failure, a malformed snapshot
    /// in either format, or a mismatched schema version.
    pub fn load_from_path(&self, path: &Path) -> Result<usize> {
        let bytes = std::fs::read(path).map_err(|io| persistence_io("reading", path, &io))?;
        if bincodec::is_binary(&bytes) {
            return self.load_snapshot_bin_bounded(&bytes, now_unix(), max_age_from_env());
        }
        let snapshot = std::str::from_utf8(&bytes).map_err(|_| SimError::Persistence {
            reason: format!(
                "cache snapshot {} is neither a binary document nor UTF-8 JSON",
                path.display()
            ),
        })?;
        self.load_snapshot(snapshot)
    }
}

/// A [`SimError::Persistence`] describing a snapshot I/O failure.
fn persistence_io(action: &str, path: &Path, io: &std::io::Error) -> SimError {
    SimError::Persistence {
        reason: format!("{action} cache snapshot {}: {io}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimulationPlatform;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn config(length: usize) -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, length).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    fn evaluate(config: &SimConfig) -> Result<PlatformReport> {
        SimulationPlatform::new(config.clone()).evaluate()
    }

    #[test]
    fn hit_miss_counters_and_lru_touch() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        let first = cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        let second = cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_differ_across_disturbance_kinds() {
        let gaussian = config(8);
        let laplace = config(8).with_disturbance(crate::DisturbanceKind::Laplace);
        assert_ne!(
            ReportCache::fingerprint(&gaussian),
            ReportCache::fingerprint(&laplace)
        );
    }

    #[test]
    fn fingerprints_differ_across_defect_kinds() {
        let clean = config(8);
        let defective =
            config(8).with_defects(crate::DefectKind::sampled(0.02, 0.01, 2_009).unwrap());
        let reseeded =
            config(8).with_defects(crate::DefectKind::sampled(0.02, 0.01, 2_010).unwrap());
        assert_ne!(
            ReportCache::fingerprint(&clean),
            ReportCache::fingerprint(&defective)
        );
        assert_ne!(
            ReportCache::fingerprint(&defective),
            ReportCache::fingerprint(&reseeded)
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        let failure = cache.get_or_compute(&a, || {
            Err(SimError::InvalidConfig {
                reason: "boom".to_string(),
            })
        });
        assert!(failure.is_err());
        assert!(cache.is_empty());
        // The next caller computes fresh and succeeds.
        assert!(cache.get_or_compute(&a, || evaluate(&a)).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn binary_snapshot_round_trips_bit_identically() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        for length in [6, 8, 10] {
            let config = config(length);
            cache.get_or_compute(&config, || evaluate(&config)).unwrap();
        }
        let bytes = cache.snapshot_bin();
        let restored = ReportCache::new(CacheConfig::unsharded(8));
        assert_eq!(restored.load_snapshot_bin(&bytes).unwrap(), 3);
        assert_eq!(restored.snapshot_json(), cache.snapshot_json());
        // A second load of the same snapshot stores nothing new.
        assert_eq!(restored.load_snapshot_bin(&bytes).unwrap(), 0);
    }

    #[test]
    fn age_bound_skips_stale_rows_without_error() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        let bytes = encode_snapshot_bin(&cache.snapshot_rows(), 1_000);
        let fresh_enough = ReportCache::new(CacheConfig::unsharded(8));
        assert_eq!(
            fresh_enough
                .load_snapshot_bin_bounded(&bytes, 1_500, 600)
                .unwrap(),
            1
        );
        let too_old = ReportCache::new(CacheConfig::unsharded(8));
        assert_eq!(
            too_old
                .load_snapshot_bin_bounded(&bytes, 2_000, 600)
                .unwrap(),
            0
        );
        assert!(too_old.is_empty());
    }

    #[test]
    fn binary_save_appends_new_rows_only() {
        let path =
            std::env::temp_dir().join(format!("mspt-cache-append-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        assert_eq!(cache.save_binary(&path).unwrap(), 1);
        let first_size = std::fs::metadata(&path).unwrap().len();

        // Saving again with no new entries appends nothing.
        assert_eq!(cache.save_binary(&path).unwrap(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_size);

        // A new entry appends one row; the old bytes stay in place.
        let b = config(8);
        cache.get_or_compute(&b, || evaluate(&b)).unwrap();
        assert_eq!(cache.save_binary(&path).unwrap(), 2);
        assert!(std::fs::metadata(&path).unwrap().len() > first_size);

        let restored = ReportCache::new(CacheConfig::unsharded(8));
        assert_eq!(restored.load_from_path(&path).unwrap(), 2);
        assert_eq!(restored.snapshot_json(), cache.snapshot_json());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_save_rewrites_when_append_would_exceed_capacity() {
        let path =
            std::env::temp_dir().join(format!("mspt-cache-rewrite-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let small = ReportCache::new(CacheConfig::unsharded(2));
        for length in [6, 8] {
            let config = config(length);
            small.get_or_compute(&config, || evaluate(&config)).unwrap();
        }
        assert_eq!(small.save_binary(&path).unwrap(), 2);
        // Touch `a` so it survives eviction, then push a third entry out of
        // capacity: the file now holds a fingerprint the cache evicted, so
        // an append would exceed the bound and a rewrite happens instead.
        let a = config(6);
        small.get_or_compute(&a, || evaluate(&a)).unwrap();
        let c = config(10);
        small.get_or_compute(&c, || evaluate(&c)).unwrap();
        assert_eq!(small.save_binary(&path).unwrap(), 2);
        let restored = ReportCache::new(CacheConfig::unsharded(8));
        assert_eq!(restored.load_from_path(&path).unwrap(), 2);
        assert_eq!(restored.snapshot_json(), small.snapshot_json());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_era_snapshot_still_loads_from_path() {
        let path =
            std::env::temp_dir().join(format!("mspt-cache-json-era-{}.json", std::process::id()));
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        std::fs::write(&path, cache.snapshot_json()).unwrap();
        let restored = ReportCache::new(CacheConfig::unsharded(8));
        assert_eq!(restored.load_from_path(&path).unwrap(), 1);
        assert_eq!(restored.snapshot_json(), cache.snapshot_json());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_binary_snapshots_are_typed_errors() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        let bytes = cache.snapshot_bin();
        // Truncation never panics: a cut exactly on the header/row section
        // boundary is a valid zero-row snapshot (TLV streams are
        // prefix-closed at section granularity), every other cut is a typed
        // error. With one cached row there is exactly one such boundary.
        let mut boundary_loads = 0;
        for take in 0..bytes.len() {
            let target = ReportCache::new(CacheConfig::unsharded(8));
            match target.load_snapshot_bin(&bytes[..take]) {
                Ok(loaded) => {
                    assert_eq!(loaded, 0);
                    boundary_loads += 1;
                }
                Err(SimError::Persistence { .. }) => {}
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
        assert_eq!(boundary_loads, 1);
        let target = ReportCache::new(CacheConfig::unsharded(8));
        // A snapshot without its header section is rejected.
        let empty = crate::bincodec::document(crate::bincodec::DOC_SNAPSHOT, &[]);
        assert!(matches!(
            target.load_snapshot_bin(&empty),
            Err(SimError::Persistence { .. })
        ));
        assert!(target.is_empty());
    }
}
