//! The sharded, bounded, single-flight report cache behind the execution
//! engine and the serve layer.
//!
//! # Design
//!
//! * **Sharding.** Entries are spread over [`CacheConfig::shards`] independent
//!   `Mutex`-guarded shards, selected by a fingerprint of the configuration's
//!   canonical serialized form, so concurrent clients touching different
//!   configurations rarely contend on one lock.
//! * **Bounded LRU.** Each shard holds at most `ceil(capacity / shards)`
//!   entries and evicts its least-recently-used entry beyond that (recency is
//!   a global atomic tick, so LRU order is exact within a shard; with one
//!   shard it is exact globally — the configuration the eviction tests use).
//!   The shard count is clamped to at most `capacity`, so a tiny capacity is
//!   an exact single-shard bound rather than one-per-shard over-retention;
//!   capacity `0` disables storage entirely.
//! * **Single-flight.** Concurrent identical requests block on one in-flight
//!   evaluation via `Mutex` + `Condvar` (std only — crates.io is unreachable
//!   here): the first requester computes, every waiter is then served the
//!   cached result. If the leader fails, waiters retake the lead one at a
//!   time instead of hanging.
//! * **Counters.** Hits, misses and evictions are atomic counters readable at
//!   any time through [`ReportCache::stats`]; the serve stress gate derives
//!   its hit-rate assertions from them.
//! * **Persistence.** [`ReportCache::save_to_path`] writes a versioned JSON
//!   snapshot (`schema_version` [`CACHE_SCHEMA_VERSION`]) that
//!   [`ReportCache::load_from_path`] restores bit-identically; a mismatched
//!   schema version is rejected, never reinterpreted. Snapshots are bounded
//!   to the configured capacity on save (over-retained shard overflow is
//!   dropped, most-recently-used entries win), so the persisted file cannot
//!   grow without bound across warm restarts.
//!
//! # Cache-key identity
//!
//! Keys fingerprint the **canonical serialized configuration** — every field
//! of [`SimConfig`], including its [`DisturbanceKind`](crate::DisturbanceKind)
//! and its [`DefectKind`](crate::DefectKind) — mixed with a cache-domain tag
//! through the workspace-wide [`chunk_seed`] stream-splitting primitive. A
//! Gaussian and a Laplace run (or a defect-free and a defective run) with
//! the same platform parameters therefore never alias, in memory or on
//! disk; equality of the full `SimConfig` is re-checked on every lookup, so a
//! fingerprint collision can cost a duplicate evaluation but never serve the
//! wrong report.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crossbar_array::chunk_seed;

use crate::codec::{
    canonical_config_string, config_from_json, config_to_json, report_from_json, report_to_json,
    JsonValue,
};
use crate::config::SimConfig;
use crate::error::{Result, SimError};
use crate::platform::PlatformReport;

/// Environment variable overriding the default report-cache capacity.
pub const CACHE_CAPACITY_ENV: &str = "MSPT_CACHE_CAPACITY";

/// Environment variable naming the warm-cache persistence file `run_all` and
/// the serve stress bin load on start and save on exit.
pub const CACHE_PATH_ENV: &str = "MSPT_CACHE_PATH";

/// Schema version of the persisted snapshot format. Bump on any change to
/// the on-disk layout; loaders reject every other version.
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// Default bound on the number of cached reports (far above the paper's
/// sweep-point count, so default runs never evict).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default shard count of the cache.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Domain-separation tag mixed into cache-key fingerprints before the
/// [`chunk_seed`] finalizer. Keeps the cache's key stream decorrelated from
/// the Monte-Carlo and defect-map seed domains, exactly like the defect
/// layer's own domain tag.
const CACHE_KEY_DOMAIN: u64 = 0xcac4_e4e7_5e12_7a03;

/// Knobs of the report cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Upper bound on stored entries. `0` disables storage (every request
    /// recomputes). The bound is enforced per shard as
    /// `ceil(capacity / shards)`, so it is exact when `shards` divides
    /// `capacity` (true for the defaults) or for a single shard, and never
    /// exceeded by more than `shards − 1` entries otherwise. The shard count
    /// is clamped to at most `capacity`, so tiny capacities degenerate to
    /// exact single-shard LRU instead of over-retaining.
    pub capacity: usize,
    /// Number of independently locked shards (clamped to at least one, and
    /// to at most `capacity` when the capacity is positive).
    pub shards: usize,
}

impl CacheConfig {
    /// A single-shard configuration: exact global LRU order, at the price of
    /// one lock — what the eviction-order tests and small caches want.
    #[must_use]
    pub fn unsharded(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            shards: 1,
        }
    }
}

impl Default for CacheConfig {
    /// Capacity: the `MSPT_CACHE_CAPACITY` environment variable when set to a
    /// valid integer (zero allowed — it disables caching), otherwise
    /// [`DEFAULT_CACHE_CAPACITY`]. Shards: [`DEFAULT_CACHE_SHARDS`].
    fn default() -> Self {
        CacheConfig {
            capacity: default_capacity(),
            shards: DEFAULT_CACHE_SHARDS,
        }
    }
}

fn default_capacity() -> usize {
    if let Ok(value) = std::env::var(CACHE_CAPACITY_ENV) {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            return parsed;
        }
    }
    DEFAULT_CACHE_CAPACITY
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a stored entry (including single-flight waiters
    /// served by the leader's computation).
    pub hits: u64,
    /// Lookups that had to compute (single-flight leaders only).
    pub misses: u64,
    /// Entries dropped to keep a shard within its capacity.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    fingerprint: u64,
    config: SimConfig,
    report: PlatformReport,
    last_used: u64,
}

/// The `Mutex` + `Condvar` pair a single-flight leader signals completion on.
struct Flight {
    done: Mutex<bool>,
    completed: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(false),
            completed: Condvar::new(),
        }
    }

    fn wait(&self) {
        // Poison recovery is sound here: the only mutation under this lock
        // is the single `done = true` store, so a panicking holder cannot
        // leave the flag half-written.
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self
                .completed
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self) {
        // Tolerates a poisoned lock: completion also runs from a drop guard
        // during panic unwinding, where a second panic would abort.
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.completed.notify_all();
    }
}

/// Unwinding-safe single-flight leadership: when the leader's stack unwinds
/// — normally or through a panic in the compute closure — the guard removes
/// the in-flight marker and wakes every waiter. Without it, a panicking
/// evaluation would leave the marker behind and every current and future
/// request for that fingerprint would block forever.
struct FlightGuard<'a> {
    cache: &'a ReportCache,
    fingerprint: u64,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        match self.cache.shard_for(self.fingerprint).lock() {
            Ok(mut shard) => {
                shard.in_flight.remove(&self.fingerprint);
            }
            Err(poisoned) => {
                poisoned.into_inner().in_flight.remove(&self.fingerprint);
            }
        }
        self.flight.complete();
    }
}

#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
    // mspt-analyze: allow(determinism-unsafe-calls) key-lookup only; the map is never iterated, so hash order cannot leak
    in_flight: HashMap<u64, Arc<Flight>>,
}

/// The sharded, bounded, single-flight LRU cache of
/// ([`SimConfig`] → [`PlatformReport`]) evaluations. See the module docs for
/// the design; see [`ExecutionEngine`](crate::ExecutionEngine) for the
/// primary consumer.
pub struct ReportCache {
    config: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ReportCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for ReportCache {
    fn default() -> Self {
        ReportCache::new(CacheConfig::default())
    }
}

impl ReportCache {
    /// Creates a cache. The shard count is clamped to `1..=capacity` (one
    /// shard when the capacity is zero); a zero capacity disables storage.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).min(config.capacity.max(1));
        ReportCache {
            config: CacheConfig {
                capacity: config.capacity,
                shards,
            },
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The (clamped) configuration of the cache.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The per-shard entry bound: `ceil(capacity / shards)`, or zero when
    /// the cache is disabled.
    fn shard_capacity(&self) -> usize {
        self.config.capacity.div_ceil(self.config.shards)
    }

    /// The fingerprint of a configuration: an FNV-1a hash of its canonical
    /// serialized form, finalized through [`chunk_seed`] under the cache's
    /// domain tag. Includes every field of the configuration — notably the
    /// disturbance kind.
    #[must_use]
    pub fn fingerprint(config: &SimConfig) -> u64 {
        let canonical = canonical_config_string(config);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        chunk_seed(hash ^ CACHE_KEY_DOMAIN, 0)
    }

    fn shard_for(&self, fingerprint: u64) -> &Mutex<Shard> {
        &self.shards[(fingerprint % self.config.shards as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache stores nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a configuration is currently stored. Does **not** refresh the
    /// entry's recency or touch the counters — a pure probe for tests and
    /// diagnostics.
    #[must_use]
    pub fn contains(&self, config: &SimConfig) -> bool {
        let fingerprint = Self::fingerprint(config);
        let shard = self
            .shard_for(fingerprint)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard
            .entries
            .iter()
            .any(|entry| entry.fingerprint == fingerprint && &entry.config == config)
    }

    /// The current counter values.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Inserts an entry into its shard as most-recently-used, then evicts
    /// least-recently-used entries beyond the shard bound. Returns whether
    /// the entry was stored — `false` for an already-present configuration
    /// or a disabled cache.
    fn insert_locked(
        &self,
        shard: &mut Shard,
        fingerprint: u64,
        config: &SimConfig,
        report: &PlatformReport,
    ) -> bool {
        let capacity = self.shard_capacity();
        if capacity == 0 {
            return false;
        }
        if shard
            .entries
            .iter()
            .any(|entry| entry.fingerprint == fingerprint && &entry.config == config)
        {
            return false;
        }
        shard.entries.push(Entry {
            fingerprint,
            config: config.clone(),
            report: report.clone(),
            last_used: self.next_tick(),
        });
        while shard.entries.len() > capacity {
            let oldest = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(index, _)| index)
                .expect("non-empty shard");
            shard.entries.swap_remove(oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Looks up a configuration, computing it through `compute` on a miss —
    /// the single-flight entry point everything above the cache uses.
    ///
    /// Concurrent callers with the same configuration block on one
    /// computation: the first becomes the leader (counted as a miss), every
    /// other caller waits on the leader's `Condvar` and is then served the
    /// stored result (counted as a hit). If the leader's computation fails,
    /// its error is returned to the leader and the waiters retake the lead
    /// one at a time.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (the cache never stores failures).
    pub fn get_or_compute<F>(&self, config: &SimConfig, compute: F) -> Result<PlatformReport>
    where
        F: FnOnce() -> Result<PlatformReport>,
    {
        let fingerprint = Self::fingerprint(config);
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut shard = self
                    .shard_for(fingerprint)
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if let Some(entry) = shard
                    .entries
                    .iter_mut()
                    .find(|entry| entry.fingerprint == fingerprint && &entry.config == config)
                {
                    entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(entry.report.clone());
                }
                match shard.in_flight.get(&fingerprint) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(Flight::new());
                        shard.in_flight.insert(fingerprint, Arc::clone(&flight));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        drop(shard);
                        // Leader path: compute outside the shard lock. The
                        // guard unregisters the flight and wakes waiters on
                        // every exit — including a panicking compute.
                        let _guard = FlightGuard {
                            cache: self,
                            fingerprint,
                            flight,
                        };
                        let computation = compute
                            .take()
                            .expect("a caller leads at most one computation")(
                        );
                        if let Ok(report) = &computation {
                            let mut shard = self
                                .shard_for(fingerprint)
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner);
                            self.insert_locked(&mut shard, fingerprint, config, report);
                        }
                        // `_guard` drops here: waiters wake after the entry
                        // is stored, so a successful leader turns them into
                        // plain hits.
                        return computation;
                    }
                }
            };
            // Waiter path: block until the leader finishes, then re-check —
            // a hit if the leader stored the entry, otherwise this caller
            // takes the lead itself (leader failed, or capacity is zero).
            flight.wait();
        }
    }

    /// Renders the cache as a versioned JSON snapshot, **bounded to the
    /// configured capacity**: the per-shard LRU bound can over-retain up to
    /// `shards − 1` entries beyond `capacity` when the shard count does not
    /// divide it, so the snapshot keeps only the `capacity` most recently
    /// used entries — the persisted file can never grow past the configured
    /// bound across warm restarts. Which entries survive therefore follows
    /// access recency; the surviving set itself is sorted by canonical
    /// configuration string, so two caches persisting the same surviving
    /// entries render byte-identical files regardless of insertion order.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.snapshot_with_count().0
    }

    /// [`ReportCache::snapshot_json`] plus the number of persisted rows,
    /// counted from the snapshot itself — the shards are re-locked here, so
    /// only this count is guaranteed to match the rendered document under
    /// concurrent inserts.
    fn snapshot_with_count(&self) -> (String, usize) {
        let mut rows: Vec<(u64, String, JsonValue)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for entry in &shard.entries {
                let config_json = config_to_json(&entry.config);
                rows.push((
                    entry.last_used,
                    config_json.render(),
                    JsonValue::Object(vec![
                        ("config".to_string(), config_json),
                        ("report".to_string(), report_to_json(&entry.report)),
                    ]),
                ));
            }
        }
        // Most recently used first, then truncate to the capacity bound.
        rows.sort_by_key(|row| std::cmp::Reverse(row.0));
        rows.truncate(self.config.capacity);
        rows.sort_by(|a, b| a.1.cmp(&b.1));
        let count = rows.len();
        let snapshot = JsonValue::Object(vec![
            (
                "schema_version".to_string(),
                JsonValue::from_u64(CACHE_SCHEMA_VERSION),
            ),
            (
                "entries".to_string(),
                JsonValue::Array(rows.into_iter().map(|(_, _, row)| row).collect()),
            ),
        ])
        .render();
        (snapshot, count)
    }

    /// Restores entries from a snapshot produced by
    /// [`ReportCache::snapshot_json`], inserting them as most-recently-used
    /// in snapshot order (capacity bounds still apply). Returns the number
    /// of entries actually stored — rows the cache rejected (already
    /// present, or storage disabled) are not counted, though under a bound
    /// tighter than the snapshot a stored row may still evict an earlier
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on malformed JSON or a
    /// `schema_version` other than [`CACHE_SCHEMA_VERSION`] — a snapshot
    /// from a different format generation is rejected, never reinterpreted.
    pub fn load_snapshot(&self, snapshot: &str) -> Result<usize> {
        let value = JsonValue::parse(snapshot)?;
        let version = value.get("schema_version")?.as_u64()?;
        if version != CACHE_SCHEMA_VERSION {
            return Err(SimError::Persistence {
                reason: format!(
                    "cache snapshot schema version {version} does not match supported version {CACHE_SCHEMA_VERSION}"
                ),
            });
        }
        let entries = value.get("entries")?.as_array()?;
        let mut loaded = 0;
        for row in entries {
            let config = config_from_json(row.get("config")?)?;
            let report = report_from_json(row.get("report")?)?;
            let fingerprint = Self::fingerprint(&config);
            let mut shard = self
                .shard_for(fingerprint)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if self.insert_locked(&mut shard, fingerprint, &config, &report) {
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Writes the snapshot to a file (atomically enough for the workloads
    /// here: full rewrite, no partial append). Returns the number of
    /// persisted entries — counted from the written snapshot itself, and at
    /// most the configured capacity, because [`ReportCache::snapshot_json`]
    /// drops over-retained overflow entries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on I/O failure.
    pub fn save_to_path(&self, path: &Path) -> Result<usize> {
        let (snapshot, entries) = self.snapshot_with_count();
        std::fs::write(path, snapshot).map_err(|io| SimError::Persistence {
            reason: format!("writing cache snapshot {}: {io}", path.display()),
        })?;
        Ok(entries)
    }

    /// Loads a snapshot file saved by [`ReportCache::save_to_path`]. Returns
    /// the number of entries loaded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on I/O failure, malformed JSON or a
    /// mismatched schema version.
    pub fn load_from_path(&self, path: &Path) -> Result<usize> {
        let snapshot = std::fs::read_to_string(path).map_err(|io| SimError::Persistence {
            reason: format!("reading cache snapshot {}: {io}", path.display()),
        })?;
        self.load_snapshot(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimulationPlatform;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn config(length: usize) -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, length).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    fn evaluate(config: &SimConfig) -> Result<PlatformReport> {
        SimulationPlatform::new(config.clone()).evaluate()
    }

    #[test]
    fn hit_miss_counters_and_lru_touch() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        let first = cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        let second = cache.get_or_compute(&a, || evaluate(&a)).unwrap();
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_differ_across_disturbance_kinds() {
        let gaussian = config(8);
        let laplace = config(8).with_disturbance(crate::DisturbanceKind::Laplace);
        assert_ne!(
            ReportCache::fingerprint(&gaussian),
            ReportCache::fingerprint(&laplace)
        );
    }

    #[test]
    fn fingerprints_differ_across_defect_kinds() {
        let clean = config(8);
        let defective =
            config(8).with_defects(crate::DefectKind::sampled(0.02, 0.01, 2_009).unwrap());
        let reseeded =
            config(8).with_defects(crate::DefectKind::sampled(0.02, 0.01, 2_010).unwrap());
        assert_ne!(
            ReportCache::fingerprint(&clean),
            ReportCache::fingerprint(&defective)
        );
        assert_ne!(
            ReportCache::fingerprint(&defective),
            ReportCache::fingerprint(&reseeded)
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ReportCache::new(CacheConfig::unsharded(8));
        let a = config(6);
        let failure = cache.get_or_compute(&a, || {
            Err(SimError::InvalidConfig {
                reason: "boom".to_string(),
            })
        });
        assert!(failure.is_err());
        assert!(cache.is_empty());
        // The next caller computes fresh and succeeds.
        assert!(cache.get_or_compute(&a, || evaluate(&a)).is_ok());
        assert_eq!(cache.len(), 1);
    }
}
