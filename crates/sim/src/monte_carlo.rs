//! Monte-Carlo cross-validation of the analytic yield model: sample the
//! threshold-voltage disturbance of every doping region, check the decision
//! window region by region, and estimate the per-nanowire addressability
//! empirically.
//!
//! The analytic model in `crossbar-array` integrates the same Gaussians in
//! closed form; the Monte-Carlo path exists to validate that integration and
//! to explore the distributions the closed form cannot reach — the sampler
//! draws its region disturbances through the pluggable
//! [`DisturbanceModel`](crate::disturbance) trait (Gaussian by default,
//! heavy-tailed Laplace and correlated inter-region models included).
//!
//! # Window semantics
//!
//! The `window` argument is the **half-width** of the decision interval, the
//! same quantity [`device_physics::DopingLadder::window_half_width`] returns
//! and `VariabilityModel::in_window_probability` integrates over: a region
//! passes iff `|ΔV_T| ≤ window`. The analytic path
//! ([`AddressabilityProfile::from_variability`]) uses the identical
//! convention, so the two estimates are directly comparable.
//!
//! # Sampling discipline (common random numbers)
//!
//! Every region's deviation is drawn **unconditionally**: a sample consumes
//! exactly `M` normals per nanowire whether or not an early region already
//! fell outside the window. RNG consumption therefore never depends on the
//! window or the acceptance outcome, so two runs with the same seed see the
//! *same* deviations and differ only in the accept/reject decision. That
//! makes common-random-number comparisons (wider window ⇒ supersets of
//! accepted samples, per nanowire) exact instead of statistical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crossbar_array::AddressabilityProfile;
use device_physics::{VariabilityModel, Volts};
use mspt_fabrication::VariabilityMatrix;

// The stream-splitting primitive is shared with the defect-map sharding in
// `crossbar-array`; both determinism contracts rest on the same function.
pub(crate) use crossbar_array::chunk_seed;

use crate::disturbance::DisturbanceModel;
use crate::engine::ExecutionEngine;
use crate::error::{Result, SimError};

/// Configuration of a Monte-Carlo addressability estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of sampled array instances.
    pub samples: usize,
    /// Seed of the deterministic random-number generator.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 2_000,
            seed: 0x5eed_cafe,
        }
    }
}

/// The result of a Monte-Carlo addressability estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOutcome {
    /// Empirical per-nanowire addressability probabilities.
    pub profile: AddressabilityProfile,
    /// Number of sampled array instances.
    pub samples: usize,
}

/// Estimates the per-nanowire addressability of a half cave by sampling the
/// Gaussian disturbance of every doping region `samples` times.
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; results are
/// bit-identical to the engine at any thread count.
///
/// Deprecated entry point: prefer [`Evaluation`](crate::Evaluation), which
/// derives the inputs from a [`SimConfig`](crate::SimConfig) and memoizes
/// through the engine's stage cache.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `samples` is zero, or propagates
/// lower-layer errors.
pub fn monte_carlo_addressability(
    variability: &VariabilityMatrix,
    model: &VariabilityModel,
    window: Volts,
    config: MonteCarloConfig,
) -> Result<MonteCarloOutcome> {
    ExecutionEngine::serial().monte_carlo_addressability(variability, model, window, config)
}

/// [`monte_carlo_addressability`] under an explicit [`DisturbanceModel`]
/// instead of the default Gaussian — the serial entry point for heavy-tailed
/// or correlated dose-noise studies.
///
/// Thin wrapper over a single-threaded
/// [`ExecutionEngine::monte_carlo_with_disturbance`]; results are
/// bit-identical to the engine at any thread count.
///
/// Deprecated entry point: prefer [`Evaluation`](crate::Evaluation) with
/// [`SimConfig::with_disturbance`](crate::SimConfig::with_disturbance).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `samples` is zero, or propagates
/// lower-layer errors.
pub fn monte_carlo_with_disturbance(
    variability: &VariabilityMatrix,
    model: &VariabilityModel,
    window: Volts,
    config: MonteCarloConfig,
    disturbance: &dyn DisturbanceModel,
) -> Result<MonteCarloOutcome> {
    ExecutionEngine::serial().monte_carlo_with_disturbance(
        variability,
        model,
        window,
        config,
        disturbance,
    )
}

/// Validates a Monte-Carlo configuration and decision window.
pub(crate) fn validate_monte_carlo(config: &MonteCarloConfig, window: Volts) -> Result<()> {
    if config.samples == 0 {
        return Err(SimError::InvalidConfig {
            reason: "Monte-Carlo estimation needs at least one sample".to_string(),
        });
    }
    if window.value() < 0.0 {
        return Err(SimError::InvalidConfig {
            reason: format!("decision window must be non-negative, got {window}"),
        });
    }
    Ok(())
}

/// Pre-computes the per-(nanowire, region) standard deviations.
pub(crate) fn region_sigmas(
    variability: &VariabilityMatrix,
    model: &VariabilityModel,
) -> Result<Vec<Vec<f64>>> {
    let n = variability.nanowire_count();
    let m = variability.region_count();
    let mut sigmas = vec![vec![0.0f64; m]; n];
    for (i, row) in sigmas.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            let doses = variability.dose_counts().count(i, j)?;
            *slot = model.sigma_after_doses(doses).value();
        }
    }
    Ok(sigmas)
}

/// Runs one deterministic chunk of `samples` array instances and returns the
/// per-nanowire counts of fully-in-window samples.
///
/// Every region deviation is drawn unconditionally (no early exit), so the
/// chunk consumes exactly the disturbance model's fixed per-nanowire draw
/// count regardless of the window — the fixed-consumption discipline the
/// module docs describe. Under [`GaussianDisturbance`] the consumed stream
/// is bit-identical to the pre-trait sampler: one normal per region, in
/// region order.
///
/// [`GaussianDisturbance`]: crate::disturbance::GaussianDisturbance
pub(crate) fn sample_chunk(
    sigmas: &[Vec<f64>],
    window_half_width: f64,
    seed: u64,
    samples: usize,
    disturbance: &dyn DisturbanceModel,
) -> Vec<usize> {
    let mut normals = NormalSource::from_seed(seed);
    let regions = sigmas.first().map_or(0, Vec::len);
    let mut deviations = vec![0.0f64; regions];
    let mut counts = vec![0usize; sigmas.len()];
    for _ in 0..samples {
        for (count, row) in counts.iter_mut().zip(sigmas) {
            disturbance.sample_regions(row, &mut normals, &mut deviations[..row.len()]);
            if deviations[..row.len()]
                .iter()
                .all(|deviation| deviation.abs() <= window_half_width)
            {
                *count += 1;
            }
        }
    }
    counts
}

/// A standard-normal sampler over any uniform generator, via the Box–Muller
/// transform (the workspace only depends on `rand`, which provides uniform
/// sampling).
///
/// Each transform produces a *pair* of independent normals; the sine half is
/// cached and served by the next call, so the source consumes two uniforms
/// per two normals instead of discarding half of every pair.
#[derive(Debug, Clone)]
pub struct NormalSource<R: Rng> {
    rng: R,
    cached: Option<f64>,
}

impl NormalSource<StdRng> {
    /// A source over a deterministically seeded [`StdRng`].
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        // mspt-analyze: allow(raw-seed) callers pass a chunk_seed-derived seed; this is the single construction point for that stream
        NormalSource::new(StdRng::seed_from_u64(seed))
    }
}

impl<R: Rng> NormalSource<R> {
    /// Wraps a uniform generator.
    #[must_use]
    pub fn new(rng: R) -> Self {
        NormalSource { rng, cached: None }
    }

    /// Draws one uniform value in `[0, 1)` straight from the underlying
    /// generator — the primitive inverse-CDF disturbance models build on.
    ///
    /// Bypasses (and leaves untouched) the cached Box–Muller half, so a
    /// model mixing [`NormalSource::sample`] and [`NormalSource::uniform`]
    /// calls still consumes the underlying stream deterministically.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Draws one standard-normal value (zero mean, unit variance).
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                let radius = (-2.0 * u1.ln()).sqrt();
                let angle = 2.0 * std::f64::consts::PI * u2;
                self.cached = Some(radius * angle.sin());
                return radius * angle.cos();
            }
        }
    }
}

/// The largest absolute difference between the analytic and Monte-Carlo
/// per-nanowire probabilities — used by tests and the ablation bench to show
/// the two paths agree.
#[must_use]
pub fn max_profile_difference(
    analytic: &AddressabilityProfile,
    sampled: &AddressabilityProfile,
) -> f64 {
    analytic
        .probabilities()
        .iter()
        .zip(sampled.probabilities())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use device_physics::{DopingLadder, ThresholdModel};
    use mspt_fabrication::PatternMatrix;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn variability(kind: CodeKind, length: usize, nanowires: usize) -> VariabilityMatrix {
        let seq = CodeSpec::new(kind, LogicLevel::BINARY, length)
            .unwrap()
            .generate()
            .unwrap()
            .take_cyclic(nanowires)
            .unwrap();
        let ladder = DopingLadder::from_model(
            &ThresholdModel::default_mspt(),
            2,
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .unwrap();
        VariabilityMatrix::from_pattern(
            &PatternMatrix::from_sequence(&seq).unwrap(),
            &ladder,
            &VariabilityModel::paper_default(),
        )
        .unwrap()
    }

    #[test]
    fn monte_carlo_matches_the_analytic_model() {
        let variability = variability(CodeKind::Gray, 8, 20);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let analytic =
            AddressabilityProfile::from_variability(&variability, &model, window).unwrap();
        let sampled = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig {
                samples: 4_000,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(sampled.samples, 4_000);
        let diff = max_profile_difference(&analytic, &sampled.profile);
        assert!(diff < 0.05, "analytic vs Monte-Carlo difference {diff}");
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let variability = variability(CodeKind::Tree, 8, 10);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let config = MonteCarloConfig {
            samples: 500,
            seed: 42,
        };
        let a = monte_carlo_addressability(&variability, &model, window, config).unwrap();
        let b = monte_carlo_addressability(&variability, &model, window, config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_samples_and_negative_windows_are_rejected() {
        let variability = variability(CodeKind::Tree, 6, 8);
        let model = VariabilityModel::paper_default();
        assert!(monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.25),
            MonteCarloConfig {
                samples: 0,
                seed: 1
            },
        )
        .is_err());
        assert!(monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(-0.1),
            MonteCarloConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn normal_source_has_zero_mean_and_unit_variance() {
        let mut normals = NormalSource::from_seed(123);
        let samples: Vec<f64> = (0..20_000).map(|_| normals.sample()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((variance - 1.0).abs() < 0.05, "variance {variance}");
    }

    #[test]
    fn normal_source_serves_both_box_muller_halves() {
        // The cosine and sine halves of one transform come from the same two
        // uniforms: two fresh sources produce pairwise-equal radii.
        let mut a = NormalSource::from_seed(99);
        let mut b = NormalSource::from_seed(99);
        let first = a.sample();
        let second = a.sample();
        let radius = (first * first + second * second).sqrt();
        assert!(radius > 0.0);
        // Same stream, same values: the pair is deterministic.
        assert_eq!(b.sample(), first);
        assert_eq!(b.sample(), second);
        // And consuming the pair advanced the underlying RNG only once
        // (two uniforms): the third sample starts a new transform.
        assert_ne!(a.sample(), first);
    }

    #[test]
    fn chunk_seeds_are_distinct_and_stable() {
        assert_eq!(chunk_seed(42, 0), chunk_seed(42, 0));
        assert_ne!(chunk_seed(42, 0), chunk_seed(42, 1));
        assert_ne!(chunk_seed(42, 0), chunk_seed(43, 0));
    }

    #[test]
    fn wider_windows_never_reduce_addressability() {
        // Common random numbers: the fixed-consumption sampling discipline
        // draws the same deviations for both runs (same seed, same sigmas),
        // so the wide-window run accepts a superset of the narrow-window
        // run's samples — the comparison is exact per nanowire, with no
        // statistical slack.
        let variability = variability(CodeKind::Hot, 6, 12);
        let model = VariabilityModel::paper_default();
        let narrow = monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.1),
            MonteCarloConfig {
                samples: 1_000,
                seed: 9,
            },
        )
        .unwrap();
        let wide = monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.4),
            MonteCarloConfig {
                samples: 1_000,
                seed: 9,
            },
        )
        .unwrap();
        for (n, (narrow_p, wide_p)) in narrow
            .profile
            .probabilities()
            .iter()
            .zip(wide.profile.probabilities())
            .enumerate()
        {
            assert!(
                wide_p >= narrow_p,
                "nanowire {n}: wide {wide_p} < narrow {narrow_p}"
            );
        }
        assert!(wide.profile.mean() >= narrow.profile.mean());
    }
}
