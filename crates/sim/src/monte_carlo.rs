//! Monte-Carlo cross-validation of the analytic yield model: sample the
//! threshold-voltage disturbance of every doping region, check the decision
//! window region by region, and estimate the per-nanowire addressability
//! empirically.
//!
//! The analytic model in `crossbar-array` integrates the same Gaussians in
//! closed form; the Monte-Carlo path exists to validate that integration and
//! to explore the distributions the closed form cannot reach — the sampler
//! draws its region disturbances through the pluggable
//! [`DisturbanceModel`](crate::disturbance) trait (Gaussian by default,
//! heavy-tailed Laplace and correlated inter-region models included).
//!
//! # Window semantics
//!
//! The `window` argument is the **half-width** of the decision interval, the
//! same quantity [`device_physics::DopingLadder::window_half_width`] returns
//! and `VariabilityModel::in_window_probability` integrates over: a region
//! passes iff `|ΔV_T| ≤ window`. The analytic path
//! ([`AddressabilityProfile::from_variability`]) uses the identical
//! convention, so the two estimates are directly comparable.
//!
//! # Sampling discipline (common random numbers)
//!
//! Every region's deviation is drawn **unconditionally**: a sample consumes
//! exactly `M` normals per nanowire whether or not an early region already
//! fell outside the window. RNG consumption therefore never depends on the
//! window or the acceptance outcome, so two runs with the same seed see the
//! *same* deviations and differ only in the accept/reject decision. That
//! makes common-random-number comparisons (wider window ⇒ supersets of
//! accepted samples, per nanowire) exact instead of statistical.
//!
//! # Adaptive stopping
//!
//! When [`MonteCarloConfig::target_half_width`] is set, the engine stops
//! sampling at the first **chunk boundary** where every nanowire's Wilson
//! score interval (at [`MonteCarloConfig::confidence`]) is at least as tight
//! as the target — see [`crate::stats`] and the engine docs for the
//! determinism argument. The stopping decision is evaluated in chunk order
//! over thread-independent per-chunk counts, so `samples_used` and the
//! resulting profile are bit-identical at any thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crossbar_array::AddressabilityProfile;
use device_physics::{VariabilityModel, Volts};
use mspt_fabrication::VariabilityMatrix;

// The stream-splitting primitive is shared with the defect-map sharding in
// `crossbar-array`; both determinism contracts rest on the same function.
pub(crate) use crossbar_array::chunk_seed;

use crate::disturbance::DisturbanceModel;
use crate::engine::ExecutionEngine;
use crate::error::{Result, SimError};

/// The confidence level a [`MonteCarloConfig`] uses when none is specified:
/// the conventional 95 % two-sided interval.
pub const DEFAULT_MC_CONFIDENCE: f64 = 0.95;

/// Configuration of a Monte-Carlo addressability estimation.
///
/// Two operating modes share this struct:
///
/// * **Fixed** (`target_half_width` unset, the default and the only
///   pre-adaptive behaviour): draw exactly [`samples`](Self::samples)
///   array instances.
/// * **Adaptive** (`target_half_width` set): keep drawing chunks until every
///   nanowire's Wilson interval half-width at
///   [`confidence`](Self::confidence) drops to the target, capped at
///   [`max_samples`](Self::max_samples) (or `samples` when no explicit cap
///   is given).
///
/// Construct fixed-mode values with [`MonteCarloConfig::fixed`]; layer the
/// adaptive knobs on with the `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of sampled array instances (the exact count in fixed mode;
    /// the default cap in adaptive mode).
    pub samples: usize,
    /// Seed of the deterministic random-number generator.
    pub seed: u64,
    /// When set, enables adaptive stopping: sampling ends at the first
    /// chunk boundary where every nanowire's Wilson-interval half-width is
    /// at most this value. Serde/codec-defaulted to `None`, so
    /// configurations serialized before the field existed keep the fixed
    /// behaviour.
    #[serde(default)]
    pub target_half_width: Option<f64>,
    /// Confidence level of the Wilson stopping interval (and of the
    /// [`MonteCarloOutcome`] CI bounds), strictly inside `(0, 1)`.
    /// Defaulted to [`DEFAULT_MC_CONFIDENCE`] for pre-field configurations.
    #[serde(default = "default_mc_confidence")]
    pub confidence: f64,
    /// Explicit ceiling on drawn samples in adaptive mode; `None` means
    /// [`samples`](Self::samples) is the cap. Ignored in fixed mode.
    #[serde(default)]
    pub max_samples: Option<usize>,
}

/// Serde default hook for [`MonteCarloConfig::confidence`].
fn default_mc_confidence() -> f64 {
    DEFAULT_MC_CONFIDENCE
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig::fixed(2_000, 0x5eed_cafe)
    }
}

impl MonteCarloConfig {
    /// Environment knob overriding [`MonteCarloConfig::samples`] in
    /// [`MonteCarloConfig::from_env`].
    pub const SAMPLES_ENV: &'static str = "MSPT_MC_SAMPLES";
    /// Environment knob overriding [`MonteCarloConfig::seed`].
    pub const SEED_ENV: &'static str = "MSPT_MC_SEED";
    /// Environment knob setting [`MonteCarloConfig::target_half_width`]
    /// (presence turns adaptive stopping on).
    pub const TARGET_HALF_WIDTH_ENV: &'static str = "MSPT_MC_TARGET_HALF_WIDTH";
    /// Environment knob overriding [`MonteCarloConfig::confidence`].
    pub const CONFIDENCE_ENV: &'static str = "MSPT_MC_CONFIDENCE";
    /// Environment knob setting [`MonteCarloConfig::max_samples`].
    pub const MAX_SAMPLES_ENV: &'static str = "MSPT_MC_MAX_SAMPLES";

    /// A fixed-sample configuration: draw exactly `samples` instances under
    /// `seed` — the pre-adaptive constructor every existing call site used
    /// as a struct literal.
    #[must_use]
    pub fn fixed(samples: usize, seed: u64) -> Self {
        MonteCarloConfig {
            samples,
            seed,
            target_half_width: None,
            confidence: default_mc_confidence(),
            max_samples: None,
        }
    }

    /// Enables adaptive stopping at the given Wilson half-width target.
    #[must_use]
    pub fn with_target_half_width(mut self, target: f64) -> Self {
        self.target_half_width = Some(target);
        self
    }

    /// Overrides the confidence level of the stopping interval.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets an explicit adaptive-mode sample ceiling.
    #[must_use]
    pub fn with_max_samples(mut self, max_samples: usize) -> Self {
        self.max_samples = Some(max_samples);
        self
    }

    /// Whether the adaptive stopping rule is active.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.target_half_width.is_some()
    }

    /// The ceiling on drawn samples: in adaptive mode
    /// [`max_samples`](Self::max_samples) when set and
    /// [`samples`](Self::samples) otherwise; in fixed mode always
    /// `samples` (the exact count drawn).
    #[must_use]
    pub fn sample_cap(&self) -> usize {
        if self.is_adaptive() {
            self.max_samples.unwrap_or(self.samples)
        } else {
            self.samples
        }
    }

    /// The default configuration with the `MSPT_MC_*` environment knobs
    /// applied on top: [`SAMPLES_ENV`](Self::SAMPLES_ENV),
    /// [`SEED_ENV`](Self::SEED_ENV),
    /// [`TARGET_HALF_WIDTH_ENV`](Self::TARGET_HALF_WIDTH_ENV),
    /// [`CONFIDENCE_ENV`](Self::CONFIDENCE_ENV) and
    /// [`MAX_SAMPLES_ENV`](Self::MAX_SAMPLES_ENV). Unset or unparseable
    /// values keep the default — validation of the combination happens at
    /// sampling time, like every other configuration path.
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = MonteCarloConfig::default();
        if let Some(samples) = parse_env::<usize>(Self::SAMPLES_ENV) {
            config.samples = samples;
        }
        if let Some(seed) = parse_env::<u64>(Self::SEED_ENV) {
            config.seed = seed;
        }
        if let Some(target) = parse_env::<f64>(Self::TARGET_HALF_WIDTH_ENV) {
            config.target_half_width = Some(target);
        }
        if let Some(confidence) = parse_env::<f64>(Self::CONFIDENCE_ENV) {
            config.confidence = confidence;
        }
        if let Some(max_samples) = parse_env::<usize>(Self::MAX_SAMPLES_ENV) {
            config.max_samples = Some(max_samples);
        }
        config
    }
}

/// Parses an environment variable, treating absence and parse failures the
/// same way (keep the default).
fn parse_env<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The result of a Monte-Carlo addressability estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOutcome {
    /// Empirical per-nanowire addressability probabilities (successes over
    /// [`samples_used`](Self::samples_used)).
    pub profile: AddressabilityProfile,
    /// The requested sample ceiling ([`MonteCarloConfig::sample_cap`]); in
    /// fixed mode this equals the configured sample count.
    pub samples: usize,
    /// The number of array instances actually drawn: equal to
    /// [`samples`](Self::samples) in fixed mode, possibly smaller when the
    /// adaptive stopping rule fired early.
    pub samples_used: usize,
    /// Per-nanowire Wilson lower confidence bounds at the configured
    /// confidence level, over `samples_used` trials.
    pub ci_lower: Vec<f64>,
    /// Per-nanowire Wilson upper confidence bounds.
    pub ci_upper: Vec<f64>,
}

/// Estimates the per-nanowire addressability of a half cave by sampling the
/// Gaussian disturbance of every doping region `samples` times.
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; results are
/// bit-identical to the engine at any thread count.
///
/// Deprecated entry point: prefer [`Evaluation`](crate::Evaluation), which
/// derives the inputs from a [`SimConfig`](crate::SimConfig) and memoizes
/// through the engine's stage cache.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `samples` is zero, or propagates
/// lower-layer errors.
pub fn monte_carlo_addressability(
    variability: &VariabilityMatrix,
    model: &VariabilityModel,
    window: Volts,
    config: MonteCarloConfig,
) -> Result<MonteCarloOutcome> {
    ExecutionEngine::serial().monte_carlo_addressability(variability, model, window, config)
}

/// [`monte_carlo_addressability`] under an explicit [`DisturbanceModel`]
/// instead of the default Gaussian — the serial entry point for heavy-tailed
/// or correlated dose-noise studies.
///
/// Thin wrapper over a single-threaded
/// [`ExecutionEngine::monte_carlo_with_disturbance`]; results are
/// bit-identical to the engine at any thread count.
///
/// Deprecated entry point: prefer [`Evaluation`](crate::Evaluation) with
/// [`SimConfig::with_disturbance`](crate::SimConfig::with_disturbance).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `samples` is zero, or propagates
/// lower-layer errors.
pub fn monte_carlo_with_disturbance(
    variability: &VariabilityMatrix,
    model: &VariabilityModel,
    window: Volts,
    config: MonteCarloConfig,
    disturbance: &dyn DisturbanceModel,
) -> Result<MonteCarloOutcome> {
    ExecutionEngine::serial().monte_carlo_with_disturbance(
        variability,
        model,
        window,
        config,
        disturbance,
    )
}

/// Validates a Monte-Carlo configuration and decision window.
pub(crate) fn validate_monte_carlo(config: &MonteCarloConfig, window: Volts) -> Result<()> {
    if config.samples == 0 {
        return Err(SimError::InvalidConfig {
            reason: "Monte-Carlo estimation needs at least one sample".to_string(),
        });
    }
    if window.value() < 0.0 {
        return Err(SimError::InvalidConfig {
            reason: format!("decision window must be non-negative, got {window}"),
        });
    }
    // `!(inside)` keeps NaN on the error path.
    if !(config.confidence > 0.0 && config.confidence < 1.0) {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "Monte-Carlo confidence must be strictly inside (0, 1), got {}",
                config.confidence
            ),
        });
    }
    if let Some(target) = config.target_half_width {
        // `<= 0.0` is false for NaN, but NaN is caught by `!is_finite()`.
        if target <= 0.0 || !target.is_finite() {
            return Err(SimError::InvalidConfig {
                reason: format!("Monte-Carlo target half-width must be positive, got {target}"),
            });
        }
    }
    if config.max_samples == Some(0) {
        return Err(SimError::InvalidConfig {
            reason: "Monte-Carlo max_samples must be positive when set".to_string(),
        });
    }
    Ok(())
}

/// The per-(nanowire, region) standard deviations in structure-of-arrays
/// form: one contiguous row-major `nanowires × regions` matrix, so the
/// sampling inner loop reads and window-checks flat slices instead of
/// chasing a `Vec<Vec<f64>>`'s per-row indirections.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SigmaMatrix {
    /// Row-major values: `values[i * regions + j]` is nanowire `i`,
    /// region `j`.
    values: Vec<f64>,
    nanowires: usize,
    regions: usize,
}

impl SigmaMatrix {
    /// Pre-computes the matrix from a variability matrix and model — the
    /// flattened successor of the old per-row `region_sigmas`.
    pub(crate) fn from_variability(
        variability: &VariabilityMatrix,
        model: &VariabilityModel,
    ) -> Result<SigmaMatrix> {
        let nanowires = variability.nanowire_count();
        let regions = variability.region_count();
        let mut values = vec![0.0f64; nanowires * regions];
        if regions > 0 {
            for (i, row) in values.chunks_exact_mut(regions).enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    let doses = variability.dose_counts().count(i, j)?;
                    *slot = model.sigma_after_doses(doses).value();
                }
            }
        }
        Ok(SigmaMatrix {
            values,
            nanowires,
            regions,
        })
    }

    /// Number of nanowire rows.
    pub(crate) fn nanowires(&self) -> usize {
        self.nanowires
    }

    /// Number of doping regions per nanowire.
    pub(crate) fn regions(&self) -> usize {
        self.regions
    }

    /// The flat row-major values.
    pub(crate) fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Per-thread scratch space for [`sample_chunk`]: the deviation buffer is
/// engine-owned and reused across every chunk a worker thread claims, so the
/// inner loop allocates nothing proportional to the matrix size per chunk.
#[derive(Debug, Default)]
pub(crate) struct McScratch {
    /// Flat `nanowires × regions` deviation buffer, (re)sized on first use.
    deviations: Vec<f64>,
}

impl McScratch {
    /// An empty scratch; buffers grow on first [`sample_chunk`] call.
    pub(crate) fn new() -> McScratch {
        McScratch::default()
    }
}

/// Runs one deterministic chunk of `samples` array instances and returns the
/// per-nanowire counts of fully-in-window samples.
///
/// Every region deviation is drawn unconditionally (no early exit), so the
/// chunk consumes exactly the disturbance model's fixed per-nanowire draw
/// count regardless of the window — the fixed-consumption discipline the
/// module docs describe. Under [`GaussianDisturbance`] the consumed stream
/// is bit-identical to the pre-trait sampler: one normal per region, in
/// region order (the whole-matrix batch draw consumes the identical
/// sequence, because row-major order *is* the sequential order).
///
/// [`GaussianDisturbance`]: crate::disturbance::GaussianDisturbance
pub(crate) fn sample_chunk(
    sigmas: &SigmaMatrix,
    window_half_width: f64,
    seed: u64,
    samples: usize,
    disturbance: &dyn DisturbanceModel,
    scratch: &mut McScratch,
) -> Vec<usize> {
    let mut normals = NormalSource::from_seed(seed);
    let regions = sigmas.regions();
    scratch.deviations.clear();
    scratch.deviations.resize(sigmas.values().len(), 0.0);
    let deviations = scratch.deviations.as_mut_slice();
    let mut counts = vec![0usize; sigmas.nanowires()];
    for _ in 0..samples {
        if regions == 0 {
            // No doping regions: every nanowire is vacuously in-window.
            for count in &mut counts {
                *count += 1;
            }
            continue;
        }
        disturbance.sample_matrix(sigmas.values(), regions, &mut normals, deviations);
        for (count, row) in counts.iter_mut().zip(deviations.chunks_exact(regions)) {
            if row
                .iter()
                .all(|deviation| deviation.abs() <= window_half_width)
            {
                *count += 1;
            }
        }
    }
    counts
}

/// A standard-normal sampler over any uniform generator, via the Box–Muller
/// transform (the workspace only depends on `rand`, which provides uniform
/// sampling).
///
/// Each transform produces a *pair* of independent normals; the sine half is
/// cached and served by the next call, so the source consumes two uniforms
/// per two normals instead of discarding half of every pair.
#[derive(Debug, Clone)]
pub struct NormalSource<R: Rng> {
    rng: R,
    cached: Option<f64>,
}

impl NormalSource<StdRng> {
    /// A source over a deterministically seeded [`StdRng`].
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        // mspt-analyze: allow(raw-seed) callers pass a chunk_seed-derived seed; this is the single construction point for that stream
        NormalSource::new(StdRng::seed_from_u64(seed))
    }
}

impl<R: Rng> NormalSource<R> {
    /// Wraps a uniform generator.
    #[must_use]
    pub fn new(rng: R) -> Self {
        NormalSource { rng, cached: None }
    }

    /// Draws one uniform value in `[0, 1)` straight from the underlying
    /// generator — the primitive inverse-CDF disturbance models build on.
    ///
    /// Bypasses (and leaves untouched) the cached Box–Muller half, so a
    /// model mixing [`NormalSource::sample`] and [`NormalSource::uniform`]
    /// calls still consumes the underlying stream deterministically.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// One full Box–Muller transform: the `(cos, sin)` pair of independent
    /// standard normals from the next two accepted uniforms, bypassing the
    /// cache entirely.
    fn pair(&mut self) -> (f64, f64) {
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                let radius = (-2.0 * u1.ln()).sqrt();
                let angle = 2.0 * std::f64::consts::PI * u2;
                return (radius * angle.cos(), radius * angle.sin());
            }
        }
    }

    /// Draws one standard-normal value (zero mean, unit variance).
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let (cos, sin) = self.pair();
        self.cached = Some(sin);
        cos
    }

    /// Fills `out` with standard normals, consuming the underlying stream
    /// **exactly** as `out.len()` successive [`NormalSource::sample`] calls
    /// would: any cached half is served first, whole transforms fill the
    /// interior pairwise, and a trailing odd slot caches its sine half for
    /// the next draw. Batch callers (the structure-of-arrays sampling loop)
    /// and scalar callers therefore see bit-identical streams.
    pub fn fill(&mut self, out: &mut [f64]) {
        let mut index = 0;
        if index < out.len() {
            if let Some(z) = self.cached.take() {
                out[index] = z;
                index += 1;
            }
        }
        while out.len() - index >= 2 {
            let (cos, sin) = self.pair();
            out[index] = cos;
            out[index + 1] = sin;
            index += 2;
        }
        if index < out.len() {
            let (cos, sin) = self.pair();
            out[index] = cos;
            self.cached = Some(sin);
        }
    }
}

/// The largest absolute difference between the analytic and Monte-Carlo
/// per-nanowire probabilities — used by tests and the ablation bench to show
/// the two paths agree.
#[must_use]
pub fn max_profile_difference(
    analytic: &AddressabilityProfile,
    sampled: &AddressabilityProfile,
) -> f64 {
    analytic
        .probabilities()
        .iter()
        .zip(sampled.probabilities())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use device_physics::{DopingLadder, ThresholdModel};
    use mspt_fabrication::PatternMatrix;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn variability(kind: CodeKind, length: usize, nanowires: usize) -> VariabilityMatrix {
        let seq = CodeSpec::new(kind, LogicLevel::BINARY, length)
            .unwrap()
            .generate()
            .unwrap()
            .take_cyclic(nanowires)
            .unwrap();
        let ladder = DopingLadder::from_model(
            &ThresholdModel::default_mspt(),
            2,
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .unwrap();
        VariabilityMatrix::from_pattern(
            &PatternMatrix::from_sequence(&seq).unwrap(),
            &ladder,
            &VariabilityModel::paper_default(),
        )
        .unwrap()
    }

    #[test]
    fn monte_carlo_matches_the_analytic_model() {
        let variability = variability(CodeKind::Gray, 8, 20);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let analytic =
            AddressabilityProfile::from_variability(&variability, &model, window).unwrap();
        let sampled = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig::fixed(4_000, 7),
        )
        .unwrap();
        assert_eq!(sampled.samples, 4_000);
        assert_eq!(sampled.samples_used, 4_000);
        let diff = max_profile_difference(&analytic, &sampled.profile);
        assert!(diff < 0.05, "analytic vs Monte-Carlo difference {diff}");
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let variability = variability(CodeKind::Tree, 8, 10);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let config = MonteCarloConfig::fixed(500, 42);
        let a = monte_carlo_addressability(&variability, &model, window, config).unwrap();
        let b = monte_carlo_addressability(&variability, &model, window, config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_samples_and_negative_windows_are_rejected() {
        let variability = variability(CodeKind::Tree, 6, 8);
        let model = VariabilityModel::paper_default();
        assert!(monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.25),
            MonteCarloConfig::fixed(0, 1),
        )
        .is_err());
        assert!(monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(-0.1),
            MonteCarloConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn invalid_adaptive_parameters_are_rejected() {
        let variability = variability(CodeKind::Tree, 6, 8);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        for bad in [
            MonteCarloConfig::default().with_confidence(0.0),
            MonteCarloConfig::default().with_confidence(1.0),
            MonteCarloConfig::default().with_confidence(f64::NAN),
            MonteCarloConfig::default().with_target_half_width(0.0),
            MonteCarloConfig::default().with_target_half_width(-0.01),
            MonteCarloConfig::default().with_target_half_width(f64::INFINITY),
            MonteCarloConfig::default().with_target_half_width(f64::NAN),
            MonteCarloConfig::default()
                .with_target_half_width(0.05)
                .with_max_samples(0),
        ] {
            assert!(
                monte_carlo_addressability(&variability, &model, window, bad).is_err(),
                "{bad:?} was accepted"
            );
        }
    }

    #[test]
    fn fixed_constructor_matches_the_default_adaptive_knobs() {
        let config = MonteCarloConfig::fixed(2_000, 0x5eed_cafe);
        assert_eq!(config, MonteCarloConfig::default());
        assert!(!config.is_adaptive());
        assert_eq!(config.sample_cap(), 2_000);
        let adaptive = config.with_target_half_width(0.02).with_max_samples(10_000);
        assert!(adaptive.is_adaptive());
        assert_eq!(adaptive.sample_cap(), 10_000);
        // Without an explicit cap, `samples` bounds the adaptive run.
        assert_eq!(config.with_target_half_width(0.02).sample_cap(), 2_000);
    }

    #[test]
    fn env_knobs_override_the_default_configuration() {
        // Only this test reads the MSPT_MC_* variables, so setting them
        // here cannot race other tests.
        std::env::set_var(MonteCarloConfig::SAMPLES_ENV, "123");
        std::env::set_var(MonteCarloConfig::SEED_ENV, "77");
        std::env::set_var(MonteCarloConfig::TARGET_HALF_WIDTH_ENV, "0.03");
        std::env::set_var(MonteCarloConfig::CONFIDENCE_ENV, "0.99");
        std::env::set_var(MonteCarloConfig::MAX_SAMPLES_ENV, "456");
        let config = MonteCarloConfig::from_env();
        std::env::remove_var(MonteCarloConfig::SAMPLES_ENV);
        std::env::remove_var(MonteCarloConfig::SEED_ENV);
        std::env::remove_var(MonteCarloConfig::TARGET_HALF_WIDTH_ENV);
        std::env::remove_var(MonteCarloConfig::CONFIDENCE_ENV);
        std::env::remove_var(MonteCarloConfig::MAX_SAMPLES_ENV);
        assert_eq!(config.samples, 123);
        assert_eq!(config.seed, 77);
        assert_eq!(config.target_half_width, Some(0.03));
        assert_eq!(config.confidence, 0.99);
        assert_eq!(config.max_samples, Some(456));
        // Unset (or unparseable) knobs keep the default.
        assert_eq!(MonteCarloConfig::from_env(), MonteCarloConfig::default());
    }

    #[test]
    fn normal_source_has_zero_mean_and_unit_variance() {
        let mut normals = NormalSource::from_seed(123);
        let samples: Vec<f64> = (0..20_000).map(|_| normals.sample()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((variance - 1.0).abs() < 0.05, "variance {variance}");
    }

    #[test]
    fn normal_source_serves_both_box_muller_halves() {
        // The cosine and sine halves of one transform come from the same two
        // uniforms: two fresh sources produce pairwise-equal radii.
        let mut a = NormalSource::from_seed(99);
        let mut b = NormalSource::from_seed(99);
        let first = a.sample();
        let second = a.sample();
        let radius = (first * first + second * second).sqrt();
        assert!(radius > 0.0);
        // Same stream, same values: the pair is deterministic.
        assert_eq!(b.sample(), first);
        assert_eq!(b.sample(), second);
        // And consuming the pair advanced the underlying RNG only once
        // (two uniforms): the third sample starts a new transform.
        assert_ne!(a.sample(), first);
    }

    #[test]
    fn fill_replays_the_scalar_sample_stream_exactly() {
        // Odd lengths, even lengths, and a pre-primed cache: the batch API
        // must consume the stream bit-identically to scalar sampling.
        for (prime, lengths) in [
            (false, vec![5usize, 4, 1, 6]),
            (true, vec![2usize, 7, 3]),
            (false, vec![0usize, 1, 0, 2]),
        ] {
            let mut batch = NormalSource::from_seed(2_024);
            let mut scalar = NormalSource::from_seed(2_024);
            if prime {
                assert_eq!(batch.sample(), scalar.sample());
            }
            for &len in &lengths {
                let mut out = vec![0.0f64; len];
                batch.fill(&mut out);
                for (i, &value) in out.iter().enumerate() {
                    assert_eq!(value, scalar.sample(), "slot {i} of fill({len})");
                }
            }
            // The caches end in the same state: the next draws agree too.
            assert_eq!(batch.sample(), scalar.sample());
        }
    }

    #[test]
    fn chunk_seeds_are_distinct_and_stable() {
        assert_eq!(chunk_seed(42, 0), chunk_seed(42, 0));
        assert_ne!(chunk_seed(42, 0), chunk_seed(42, 1));
        assert_ne!(chunk_seed(42, 0), chunk_seed(43, 0));
    }

    #[test]
    fn wider_windows_never_reduce_addressability() {
        // Common random numbers: the fixed-consumption sampling discipline
        // draws the same deviations for both runs (same seed, same sigmas),
        // so the wide-window run accepts a superset of the narrow-window
        // run's samples — the comparison is exact per nanowire, with no
        // statistical slack.
        let variability = variability(CodeKind::Hot, 6, 12);
        let model = VariabilityModel::paper_default();
        let narrow = monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.1),
            MonteCarloConfig::fixed(1_000, 9),
        )
        .unwrap();
        let wide = monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.4),
            MonteCarloConfig::fixed(1_000, 9),
        )
        .unwrap();
        for (n, (narrow_p, wide_p)) in narrow
            .profile
            .probabilities()
            .iter()
            .zip(wide.profile.probabilities())
            .enumerate()
        {
            assert!(
                wide_p >= narrow_p,
                "nanowire {n}: wide {wide_p} < narrow {narrow_p}"
            );
        }
        assert!(wide.profile.mean() >= narrow.profile.mean());
    }

    #[test]
    fn adaptive_stopping_needs_far_fewer_samples_and_matches_a_fixed_prefix() {
        let variability = variability(CodeKind::Gray, 8, 20);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let adaptive = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig::fixed(20_000, 7).with_target_half_width(0.05),
        )
        .unwrap();
        assert_eq!(adaptive.samples, 20_000);
        // The tentpole target: at least 5× fewer samples than the fixed run
        // on this tight-window configuration.
        assert!(
            adaptive.samples_used * 5 <= 20_000,
            "adaptive run used {} of 20000 samples",
            adaptive.samples_used
        );
        // The stopping decision lands on a chunk boundary.
        assert_eq!(adaptive.samples_used % 256, 0);
        // Determinism contract: the adaptive result is exactly the fixed
        // run over the prefix it kept — same seed, same chunk order.
        let prefix = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig::fixed(adaptive.samples_used, 7),
        )
        .unwrap();
        assert_eq!(adaptive.profile, prefix.profile);
        assert_eq!(adaptive.ci_lower, prefix.ci_lower);
        assert_eq!(adaptive.ci_upper, prefix.ci_upper);
        // And the delivered intervals honour the requested target.
        for ((lower, upper), p) in adaptive
            .ci_lower
            .iter()
            .zip(&adaptive.ci_upper)
            .zip(adaptive.profile.probabilities())
        {
            assert!(lower <= p && p <= upper, "CI [{lower}, {upper}] misses {p}");
            assert!(
                upper - lower <= 2.0 * 0.05 + 1e-12,
                "CI [{lower}, {upper}] wider than the target"
            );
        }
    }

    #[test]
    fn unreachable_targets_run_to_the_cap() {
        let variability = variability(CodeKind::Tree, 6, 8);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let outcome = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig::fixed(1_000, 3)
                .with_target_half_width(1e-6)
                .with_max_samples(700),
        )
        .unwrap();
        assert_eq!(outcome.samples, 700);
        assert_eq!(outcome.samples_used, 700);
        // The capped adaptive run equals the fixed run of the same length.
        let fixed = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig::fixed(700, 3),
        )
        .unwrap();
        assert_eq!(outcome.profile, fixed.profile);
    }
}
