//! Monte-Carlo cross-validation of the analytic yield model: sample the
//! threshold-voltage disturbance of every doping region, check the decision
//! window region by region, and estimate the per-nanowire addressability
//! empirically.
//!
//! The analytic model in `crossbar-array` integrates the same Gaussians in
//! closed form; the Monte-Carlo path exists to validate that integration and
//! to support experiments with non-Gaussian disturbances later.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crossbar_array::AddressabilityProfile;
use device_physics::{VariabilityModel, Volts};
use mspt_fabrication::VariabilityMatrix;

use crate::error::{Result, SimError};

/// Configuration of a Monte-Carlo addressability estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of sampled array instances.
    pub samples: usize,
    /// Seed of the deterministic random-number generator.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 2_000,
            seed: 0x5eed_cafe,
        }
    }
}

/// The result of a Monte-Carlo addressability estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloOutcome {
    /// Empirical per-nanowire addressability probabilities.
    pub profile: AddressabilityProfile,
    /// Number of sampled array instances.
    pub samples: usize,
}

/// Estimates the per-nanowire addressability of a half cave by sampling the
/// Gaussian disturbance of every doping region `samples` times.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `samples` is zero, or propagates
/// lower-layer errors.
pub fn monte_carlo_addressability(
    variability: &VariabilityMatrix,
    model: &VariabilityModel,
    window: Volts,
    config: MonteCarloConfig,
) -> Result<MonteCarloOutcome> {
    if config.samples == 0 {
        return Err(SimError::InvalidConfig {
            reason: "Monte-Carlo estimation needs at least one sample".to_string(),
        });
    }
    if window.value() < 0.0 {
        return Err(SimError::InvalidConfig {
            reason: format!("decision window must be non-negative, got {window}"),
        });
    }

    let n = variability.nanowire_count();
    let m = variability.region_count();
    // Pre-compute the per-region standard deviations.
    let mut sigmas = vec![vec![0.0f64; m]; n];
    for (i, row) in sigmas.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            let doses = variability.dose_counts().count(i, j)?;
            *slot = model.sigma_after_doses(doses).value();
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut addressable_counts = vec![0usize; n];
    let half_width = window.value();

    for _ in 0..config.samples {
        for (i, row) in sigmas.iter().enumerate() {
            let mut all_in_window = true;
            for &sigma in row {
                let deviation = sigma * standard_normal(&mut rng);
                if deviation.abs() > half_width {
                    all_in_window = false;
                    break;
                }
            }
            if all_in_window {
                addressable_counts[i] += 1;
            }
        }
    }

    let probabilities: Vec<f64> = addressable_counts
        .into_iter()
        .map(|count| count as f64 / config.samples as f64)
        .collect();
    Ok(MonteCarloOutcome {
        profile: AddressabilityProfile::new(probabilities)?,
        samples: config.samples,
    })
}

/// A standard-normal sample via the Box–Muller transform (the workspace only
/// depends on `rand`, which provides uniform sampling).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// The largest absolute difference between the analytic and Monte-Carlo
/// per-nanowire probabilities — used by tests and the ablation bench to show
/// the two paths agree.
#[must_use]
pub fn max_profile_difference(
    analytic: &AddressabilityProfile,
    sampled: &AddressabilityProfile,
) -> f64 {
    analytic
        .probabilities()
        .iter()
        .zip(sampled.probabilities())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use device_physics::{DopingLadder, ThresholdModel};
    use mspt_fabrication::PatternMatrix;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn variability(kind: CodeKind, length: usize, nanowires: usize) -> VariabilityMatrix {
        let seq = CodeSpec::new(kind, LogicLevel::BINARY, length)
            .unwrap()
            .generate()
            .unwrap()
            .take_cyclic(nanowires)
            .unwrap();
        let ladder = DopingLadder::from_model(
            &ThresholdModel::default_mspt(),
            2,
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .unwrap();
        VariabilityMatrix::from_pattern(
            &PatternMatrix::from_sequence(&seq).unwrap(),
            &ladder,
            &VariabilityModel::paper_default(),
        )
        .unwrap()
    }

    #[test]
    fn monte_carlo_matches_the_analytic_model() {
        let variability = variability(CodeKind::Gray, 8, 20);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let analytic =
            AddressabilityProfile::from_variability(&variability, &model, window).unwrap();
        let sampled = monte_carlo_addressability(
            &variability,
            &model,
            window,
            MonteCarloConfig {
                samples: 4_000,
                seed: 7,
            },
        )
        .unwrap();
        assert_eq!(sampled.samples, 4_000);
        let diff = max_profile_difference(&analytic, &sampled.profile);
        assert!(diff < 0.05, "analytic vs Monte-Carlo difference {diff}");
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let variability = variability(CodeKind::Tree, 8, 10);
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let config = MonteCarloConfig {
            samples: 500,
            seed: 42,
        };
        let a = monte_carlo_addressability(&variability, &model, window, config).unwrap();
        let b = monte_carlo_addressability(&variability, &model, window, config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_samples_and_negative_windows_are_rejected() {
        let variability = variability(CodeKind::Tree, 6, 8);
        let model = VariabilityModel::paper_default();
        assert!(monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.25),
            MonteCarloConfig {
                samples: 0,
                seed: 1
            },
        )
        .is_err());
        assert!(monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(-0.1),
            MonteCarloConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn standard_normal_has_zero_mean_and_unit_variance() {
        let mut rng = StdRng::seed_from_u64(123);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((variance - 1.0).abs() < 0.05, "variance {variance}");
    }

    #[test]
    fn wider_windows_never_reduce_addressability() {
        let variability = variability(CodeKind::Hot, 6, 12);
        let model = VariabilityModel::paper_default();
        let narrow = monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.1),
            MonteCarloConfig {
                samples: 1_000,
                seed: 9,
            },
        )
        .unwrap();
        let wide = monte_carlo_addressability(
            &variability,
            &model,
            Volts::new(0.4),
            MonteCarloConfig {
                samples: 1_000,
                seed: 9,
            },
        )
        .unwrap();
        let narrow_mean = narrow.profile.mean();
        let wide_mean = wide.profile.mean();
        assert!(wide_mean >= narrow_mean);
    }
}
