//! Sequential-stopping statistics for the adaptive Monte-Carlo kernel: the
//! Wilson score interval for a binomial proportion, and the inverse normal
//! CDF that turns a confidence level into its z quantile.
//!
//! The adaptive sampler stops the moment every nanowire's estimated
//! addressability carries a Wilson half-width at or below the configured
//! target. The Wilson interval is used (rather than the naive Wald interval
//! `p̂ ± z·√(p̂(1−p̂)/t)`) because its coverage stays honest at the extremes
//! this workload lives at — addressability probabilities near 1.0, where the
//! Wald interval collapses to zero width after a streak of successes and
//! stops far too early.
//!
//! Everything here is pure `f64` arithmetic with no RNG and no allocation,
//! so the stopping decision is bit-identical wherever it is evaluated — the
//! property the engine's cross-thread determinism contract rests on.

/// The inverse CDF (quantile function) of the standard normal distribution,
/// evaluated with Acklam's rational approximation (absolute error below
/// `1.15e-9` over the open unit interval — far tighter than any sampling
/// noise the stopping rule faces).
///
/// Returns `f64::NAN` outside the open interval `(0, 1)`.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if !(p > 0.0 && p < 1.0) {
        return f64::NAN;
    }
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;
    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail: symmetric to the lower one.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided z quantile for a confidence level: `Φ⁻¹((1 + confidence)/2)`.
///
/// `z_for_confidence(0.95)` ≈ 1.95996 — the familiar "1.96 sigma" of a 95 %
/// interval. Returns `f64::NAN` when `confidence` is outside `(0, 1)`.
#[must_use]
pub fn z_for_confidence(confidence: f64) -> f64 {
    inverse_normal_cdf((1.0 + confidence) / 2.0)
}

/// The Wilson score interval for `successes` out of `trials` Bernoulli
/// trials at quantile `z`, as `(lower, upper)` clamped to `[0, 1]`.
///
/// Centre and half-width:
///
/// ```text
/// centre = (p̂ + z²/2t) / (1 + z²/t)
/// half   = z·√(p̂(1−p̂)/t + z²/4t²) / (1 + z²/t)
/// ```
///
/// Returns `(0.0, 1.0)` — the vacuous interval — when `trials` is zero, so a
/// stopping rule built on this function can never fire before sampling.
#[must_use]
pub fn wilson_bounds(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let t = trials as f64;
    let p_hat = successes as f64 / t;
    let z2 = z * z;
    let denominator = 1.0 + z2 / t;
    let centre = (p_hat + z2 / (2.0 * t)) / denominator;
    let half = z * (p_hat * (1.0 - p_hat) / t + z2 / (4.0 * t * t)).sqrt() / denominator;
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// The half-width of the Wilson score interval for `successes` out of
/// `trials` at quantile `z` — the quantity the adaptive sampler compares
/// against its `target_half_width`.
///
/// Returns `f64::INFINITY` when `trials` is zero (no evidence, no stopping).
#[must_use]
pub fn wilson_half_width(successes: usize, trials: usize, z: f64) -> f64 {
    if trials == 0 {
        return f64::INFINITY;
    }
    let t = trials as f64;
    let p_hat = successes as f64 / t;
    let z2 = z * z;
    let denominator = 1.0 + z2 / t;
    z * (p_hat * (1.0 - p_hat) / t + z2 / (4.0 * t * t)).sqrt() / denominator
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_match_the_textbook_values() {
        // The classic two-sided quantiles, to the 4 decimals every table
        // prints them at.
        assert!((z_for_confidence(0.90) - 1.6449).abs() < 5e-4);
        assert!((z_for_confidence(0.95) - 1.9600).abs() < 5e-4);
        assert!((z_for_confidence(0.99) - 2.5758).abs() < 5e-4);
        // Symmetry and the median.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) + inverse_normal_cdf(0.025)).abs() < 1e-9);
        // Tails stay finite and monotone deep into the approximation's tail
        // branches.
        assert!(inverse_normal_cdf(1e-12) < inverse_normal_cdf(1e-6));
        assert!(inverse_normal_cdf(1e-6) < -4.0);
        // Out-of-domain inputs are NaN, not garbage.
        assert!(inverse_normal_cdf(0.0).is_nan());
        assert!(inverse_normal_cdf(1.0).is_nan());
        assert!(z_for_confidence(1.5).is_nan());
    }

    /// The standard normal CDF via `erf`-free numeric integration — a slow,
    /// independent check that the rational approximation really inverts Φ.
    fn normal_cdf(x: f64) -> f64 {
        // Simpson's rule over [-12, x]; the mass below -12 is ~1.8e-33.
        let lower = -12.0_f64;
        if x <= lower {
            return 0.0;
        }
        let steps = 20_000usize;
        let h = (x - lower) / steps as f64;
        let density = |t: f64| (-0.5 * t * t).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let mut sum = density(lower) + density(x);
        for i in 1..steps {
            let t = lower + h * i as f64;
            sum += density(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        sum * h / 3.0
    }

    #[test]
    fn inverse_cdf_inverts_the_integrated_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999] {
            let round_trip = normal_cdf(inverse_normal_cdf(p));
            assert!((round_trip - p).abs() < 1e-6, "Φ(Φ⁻¹({p})) = {round_trip}");
        }
    }

    /// Exact binomial PMF via a multiplicative recurrence (stable for the
    /// trial counts exercised here).
    fn binomial_pmf(trials: usize, p: f64) -> Vec<f64> {
        let mut pmf = vec![0.0f64; trials + 1];
        pmf[0] = (1.0 - p).powi(trials as i32);
        for k in 1..=trials {
            // pmf[k] = pmf[k-1] · (n-k+1)/k · p/(1-p), guarded for p = 1.
            let ratio = (trials - k + 1) as f64 / k as f64;
            pmf[k] = if (1.0 - p).abs() < f64::EPSILON {
                if k == trials {
                    1.0
                } else {
                    0.0
                }
            } else {
                pmf[k - 1] * ratio * p / (1.0 - p)
            };
        }
        pmf
    }

    #[test]
    fn wilson_coverage_matches_the_exhaustive_binomial_reference() {
        // For every (trials, p) in a grid, sum the exact binomial
        // probability of the success counts whose Wilson interval contains
        // p. Wilson's known behaviour: coverage hugs the nominal level with
        // occasional dips (never the catastrophic collapse of the Wald
        // interval at the boundaries).
        let z = z_for_confidence(0.95);
        let mut worst: f64 = 1.0;
        let mut total = 0.0f64;
        let mut cells = 0usize;
        for trials in [10usize, 25, 60, 150] {
            for p_milli in [50usize, 200, 500, 800, 900, 950, 990] {
                let p = p_milli as f64 / 1000.0;
                let pmf = binomial_pmf(trials, p);
                let coverage: f64 = (0..=trials)
                    .filter(|&k| {
                        let (lower, upper) = wilson_bounds(k, trials, z);
                        lower <= p && p <= upper
                    })
                    .map(|k| pmf[k])
                    .sum();
                worst = worst.min(coverage);
                total += coverage;
                cells += 1;
            }
        }
        let mean = total / cells as f64;
        assert!(worst >= 0.85, "worst-case Wilson coverage {worst}");
        assert!(mean >= 0.93, "mean Wilson coverage {mean}");
    }

    #[test]
    fn wald_collapses_at_the_boundary_but_wilson_does_not() {
        // The motivating case: a clean streak of successes. The Wald
        // half-width is exactly zero (p̂(1−p̂) = 0), so a Wald stopping rule
        // would fire after one chunk; the Wilson half-width stays honestly
        // positive.
        let z = z_for_confidence(0.95);
        let trials = 256;
        let wald_half = z * (1.0f64 * 0.0 / trials as f64).sqrt();
        assert_eq!(wald_half, 0.0);
        let wilson_half = wilson_half_width(trials, trials, z);
        assert!(wilson_half > 0.005, "wilson half-width {wilson_half}");
        // And the zero-trials guard: no evidence means an infinite
        // half-width and the vacuous interval.
        assert_eq!(wilson_half_width(0, 0, z), f64::INFINITY);
        assert_eq!(wilson_bounds(0, 0, z), (0.0, 1.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// For any success count and trial count, the Wilson bounds stay in
        /// [0, 1], bracket the point estimate, and agree with the half-width
        /// function away from the clamps.
        #[test]
        fn wilson_bounds_are_ordered_and_contain_the_estimate(
            trials in 1usize..2_000,
            success_per_mille in 0usize..=1_000,
            confidence_index in 0usize..3,
        ) {
            let successes = (trials * success_per_mille) / 1_000;
            let confidence = [0.90, 0.95, 0.99][confidence_index];
            let z = z_for_confidence(confidence);
            let (lower, upper) = wilson_bounds(successes, trials, z);
            let p_hat = successes as f64 / trials as f64;
            prop_assert!((0.0..=1.0).contains(&lower));
            prop_assert!((0.0..=1.0).contains(&upper));
            prop_assert!(lower <= upper);
            prop_assert!(lower <= p_hat + 1e-12 && p_hat <= upper + 1e-12);
            // The half-width function is the same interval's radius
            // (before clamping, so compare against the unclamped centre).
            let half = wilson_half_width(successes, trials, z);
            prop_assert!(half >= 0.0 && half.is_finite());
            prop_assert!(upper - lower <= 2.0 * half + 1e-12);
        }

        /// More evidence never widens the interval: scaling successes and
        /// trials by the same factor shrinks the half-width.
        #[test]
        fn wilson_half_width_tightens_with_more_trials(
            trials in 1usize..500,
            success_per_mille in 0usize..=1_000,
        ) {
            let successes = (trials * success_per_mille) / 1_000;
            let z = z_for_confidence(0.95);
            let before = wilson_half_width(successes, trials, z);
            let after = wilson_half_width(successes * 4, trials * 4, z);
            prop_assert!(after <= before + 1e-12, "{after} > {before}");
        }
    }
}
