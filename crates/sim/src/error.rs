//! Error types for the `decoder-sim` crate.

use std::error::Error;
use std::fmt;

use crossbar_array::CrossbarError;
use device_physics::PhysicsError;
use mspt_fabrication::FabricationError;
use nanowire_codes::CodeError;

/// Errors produced by the decoder simulation platform.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A simulation parameter is invalid (zero nanowires, zero samples, ...).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A sweep was requested over an empty parameter set.
    EmptySweep,
    /// Serialization, deserialization or disk I/O of a persisted artefact
    /// (warm report caches, serve-layer wire messages) failed.
    Persistence {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An error bubbled up from the code layer.
    Code(CodeError),
    /// An error bubbled up from the device-physics layer.
    Physics(PhysicsError),
    /// An error bubbled up from the fabrication layer.
    Fabrication(FabricationError),
    /// An error bubbled up from the crossbar layer.
    Crossbar(CrossbarError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
            SimError::EmptySweep => write!(f, "sweep requested over an empty parameter set"),
            SimError::Persistence { reason } => {
                write!(f, "persistence error: {reason}")
            }
            SimError::Code(err) => write!(f, "code error: {err}"),
            SimError::Physics(err) => write!(f, "device-physics error: {err}"),
            SimError::Fabrication(err) => write!(f, "fabrication error: {err}"),
            SimError::Crossbar(err) => write!(f, "crossbar error: {err}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Code(err) => Some(err),
            SimError::Physics(err) => Some(err),
            SimError::Fabrication(err) => Some(err),
            SimError::Crossbar(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CodeError> for SimError {
    fn from(err: CodeError) -> Self {
        SimError::Code(err)
    }
}

impl From<PhysicsError> for SimError {
    fn from(err: PhysicsError) -> Self {
        SimError::Physics(err)
    }
}

impl From<FabricationError> for SimError {
    fn from(err: FabricationError) -> Self {
        SimError::Fabrication(err)
    }
}

impl From<CrossbarError> for SimError {
    fn from(err: CrossbarError) -> Self {
        SimError::Crossbar(err)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let config = SimError::InvalidConfig {
            reason: "zero nanowires".to_string(),
        };
        assert!(config.to_string().contains("configuration"));
        assert!(config.source().is_none());
        assert!(SimError::EmptySweep.source().is_none());

        assert!(SimError::from(CodeError::EmptyWord).source().is_some());
        assert!(
            SimError::from(PhysicsError::SolverDidNotConverge { iterations: 1 })
                .source()
                .is_some()
        );
        assert!(SimError::from(FabricationError::InvalidMatrixShape {
            reason: "ragged".to_string()
        })
        .source()
        .is_some());
        assert!(
            SimError::from(CrossbarError::InvalidProbability { value: 2.0 })
                .source()
                .is_some()
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
