//! Parameter sweeps over code type, logic radix and code length — the loops
//! behind Figs. 5–8 of the paper.

use serde::{Deserialize, Serialize};

use mspt_fabrication::Matrix;
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

use crate::config::SimConfig;
use crate::defect::DefectKind;
use crate::engine::ExecutionEngine;
use crate::error::Result;
use crate::platform::{PlatformReport, SimulationPlatform};

/// One point of the fabrication-complexity sweep (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplexityPoint {
    /// Code family.
    pub kind: CodeKind,
    /// Logic radix.
    pub radix: LogicLevel,
    /// Code length `M` used for the sweep.
    pub code_length: usize,
    /// Number of nanowires per half cave.
    pub nanowires: usize,
    /// Total number of additional lithography/doping steps `Φ`.
    pub fabrication_steps: usize,
}

/// One variability map (one panel of Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityMap {
    /// Code family.
    pub kind: CodeKind,
    /// Code length `M`.
    pub code_length: usize,
    /// Number of nanowires `N`.
    pub nanowires: usize,
    /// Normalised deviations `sqrt(ν_i^j) = sqrt(Σ_i^j)/σ_T`, indexed by
    /// (nanowire, digit).
    pub normalized_sigma: Matrix<f64>,
    /// Average variability `‖Σ‖₁/(N·M)` in units of σ_T².
    pub mean_variability: f64,
    /// Largest normalised deviation of the map.
    pub max_normalized_sigma: f64,
}

/// One point of the yield sweep (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldPoint {
    /// Code family.
    pub kind: CodeKind,
    /// Code length `M`.
    pub code_length: usize,
    /// Cave (nanowire) yield `Y`.
    pub cave_yield: f64,
    /// Crossbar (crosspoint) yield `Y²`.
    pub crossbar_yield: f64,
}

/// One point of the defect-axis yield sweep (the Fig. 7 extension): the
/// decoder yield of one code composed with one fabrication-defect selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectYieldPoint {
    /// Code family.
    pub kind: CodeKind,
    /// Code length `M`.
    pub code_length: usize,
    /// The fabrication-defect selection of the point.
    pub defects: DefectKind,
    /// Decoder-limited crossbar yield `Y²` (defect-free).
    pub decoder_yield: f64,
    /// Fraction of crosspoints surviving the sampled defect map.
    pub defect_survival: f64,
    /// Composite crossbar yield: `Y²` × survival.
    pub composite_yield: f64,
}

/// One point of the bit-area sweep (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitAreaPoint {
    /// Code family.
    pub kind: CodeKind,
    /// Code length `M`.
    pub code_length: usize,
    /// Effective area per functional bit in nm².
    pub bit_area: f64,
    /// Crossbar yield `Y²` behind the bit area.
    pub crossbar_yield: f64,
}

/// Sweeps the fabrication complexity `Φ` over code families and logic
/// radices at a fixed half-cave size (Fig. 5 uses `N = 10`).
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; use the engine
/// directly to batch the points across threads.
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`](crate::SimError::EmptySweep) for empty parameter sets, or propagates
/// evaluation errors.
pub fn complexity_sweep(
    base: &SimConfig,
    kinds: &[CodeKind],
    radices: &[LogicLevel],
    code_length: usize,
    nanowires: usize,
) -> Result<Vec<ComplexityPoint>> {
    ExecutionEngine::serial().complexity_sweep(base, kinds, radices, code_length, nanowires)
}

/// Computes the variability map of one code family and length (one panel of
/// Fig. 6; the paper uses `N = 20` nanowires).
///
/// # Errors
///
/// Propagates code, fabrication and device-physics errors.
pub fn variability_map(
    base: &SimConfig,
    kind: CodeKind,
    radix: LogicLevel,
    code_length: usize,
    nanowires: usize,
) -> Result<VariabilityMap> {
    let code = CodeSpec::new(kind, radix, code_length)?;
    let config = base.clone().with_code(code);
    let platform = SimulationPlatform::new(config);
    let variability = platform.variability_for(nanowires)?;
    let normalized = variability.normalized_map();
    Ok(VariabilityMap {
        kind,
        code_length,
        nanowires,
        mean_variability: variability.mean_in_sigma_units(),
        max_normalized_sigma: normalized.max(),
        normalized_sigma: normalized,
    })
}

/// Sweeps the crossbar yield over code lengths for one code family (one
/// series of Fig. 7).
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; use the engine
/// directly to batch and memoize the points across threads.
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`](crate::SimError::EmptySweep) for an empty length set, or propagates
/// evaluation errors. Lengths that are invalid for the family/radix are
/// skipped silently so hot-code sweeps can share length lists with
/// tree-code sweeps.
pub fn yield_sweep(
    base: &SimConfig,
    kind: CodeKind,
    radix: LogicLevel,
    code_lengths: &[usize],
) -> Result<Vec<YieldPoint>> {
    ExecutionEngine::serial().yield_sweep(base, kind, radix, code_lengths)
}

/// Sweeps the effective bit area over code lengths for one code family (one
/// bar group of Fig. 8).
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; use the engine
/// directly to batch and memoize the points across threads.
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`](crate::SimError::EmptySweep) for an empty length set, or propagates
/// evaluation errors. Invalid lengths for the family are skipped.
pub fn bit_area_sweep(
    base: &SimConfig,
    kind: CodeKind,
    radix: LogicLevel,
    code_lengths: &[usize],
) -> Result<Vec<BitAreaPoint>> {
    ExecutionEngine::serial().bit_area_sweep(base, kind, radix, code_lengths)
}

/// Sweeps the composite crossbar yield of one code over a set of
/// fabrication-defect selections (the defect axis of the Fig. 7 extension).
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; use the engine
/// directly to batch and memoize the points across threads.
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`](crate::SimError::EmptySweep) for an
/// empty defect set, or propagates evaluation errors.
pub fn defect_yield_sweep(
    base: &SimConfig,
    kind: CodeKind,
    radix: LogicLevel,
    code_length: usize,
    defects: &[DefectKind],
) -> Result<Vec<DefectYieldPoint>> {
    ExecutionEngine::serial().defect_yield_sweep(base, kind, radix, code_length, defects)
}

/// Evaluates the full platform report for every (kind, length) pair —
/// convenience for the experiments and benches that need several figures at
/// once.
///
/// Thin wrapper over a single-threaded [`ExecutionEngine`]; use the engine
/// directly to batch and memoize the points across threads.
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`](crate::SimError::EmptySweep) for empty parameter sets, or propagates
/// evaluation errors. Invalid (kind, length) pairs are skipped.
pub fn full_sweep(
    base: &SimConfig,
    kinds: &[CodeKind],
    radix: LogicLevel,
    code_lengths: &[usize],
) -> Result<Vec<PlatformReport>> {
    ExecutionEngine::serial().full_sweep(base, kinds, radix, code_lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;

    fn base() -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    #[test]
    fn complexity_sweep_reproduces_fig5_shape() {
        let points = complexity_sweep(
            &base(),
            &[CodeKind::Tree, CodeKind::Gray],
            &[
                LogicLevel::BINARY,
                LogicLevel::TERNARY,
                LogicLevel::QUATERNARY,
            ],
            8,
            10,
        )
        .unwrap();
        assert_eq!(points.len(), 6);
        let phi = |kind: CodeKind, radix: LogicLevel| {
            points
                .iter()
                .find(|p| p.kind == kind && p.radix == radix)
                .unwrap()
                .fabrication_steps
        };
        // Binary codes: Φ = 2N regardless of the arrangement.
        assert_eq!(phi(CodeKind::Tree, LogicLevel::BINARY), 20);
        assert_eq!(phi(CodeKind::Gray, LogicLevel::BINARY), 20);
        // Higher radix: the tree code pays extra steps, the Gray code does not.
        assert!(phi(CodeKind::Tree, LogicLevel::TERNARY) > 20);
        assert!(
            phi(CodeKind::Gray, LogicLevel::TERNARY) < phi(CodeKind::Tree, LogicLevel::TERNARY)
        );
        assert!(
            phi(CodeKind::Gray, LogicLevel::QUATERNARY)
                < phi(CodeKind::Tree, LogicLevel::QUATERNARY)
        );
    }

    #[test]
    fn variability_map_matches_fig6_structure() {
        let map = variability_map(&base(), CodeKind::Tree, LogicLevel::BINARY, 8, 20).unwrap();
        assert_eq!(map.normalized_sigma.rows(), 20);
        assert_eq!(map.normalized_sigma.columns(), 8);
        // The lexicographic tree code toggles its least-significant digit at
        // every step, so the earliest-defined nanowire accumulates ~N doses
        // there: sqrt(20) ≈ 4.5, the peak of Fig. 6.a/b.
        assert!(map.max_normalized_sigma > 4.0);
        let gray = variability_map(&base(), CodeKind::Gray, LogicLevel::BINARY, 8, 20).unwrap();
        assert!(gray.max_normalized_sigma < map.max_normalized_sigma);
        assert!(gray.mean_variability < map.mean_variability);
        let balanced =
            variability_map(&base(), CodeKind::BalancedGray, LogicLevel::BINARY, 8, 20).unwrap();
        assert!(balanced.max_normalized_sigma <= gray.max_normalized_sigma);
    }

    #[test]
    fn yield_sweep_skips_invalid_lengths_and_stays_in_bounds() {
        let points =
            yield_sweep(&base(), CodeKind::Hot, LogicLevel::BINARY, &[4, 5, 6, 8]).unwrap();
        // Length 5 is invalid for a binary hot code and must be skipped.
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.cave_yield > 0.0 && p.cave_yield <= 1.0);
            assert!((p.crossbar_yield - p.cave_yield.powi(2)).abs() < 1e-12);
        }
    }

    #[test]
    fn bit_area_sweep_produces_positive_areas() {
        let points = bit_area_sweep(
            &base(),
            CodeKind::BalancedGray,
            LogicLevel::BINARY,
            &[6, 8, 10],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.bit_area > 100.0);
        }
        // Fig. 8: longer codes shrink the bit area over this range.
        assert!(points[2].bit_area < points[0].bit_area);
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        assert!(matches!(
            complexity_sweep(&base(), &[], &[LogicLevel::BINARY], 8, 10),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            yield_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, &[]),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            bit_area_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, &[]),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            full_sweep(&base(), &[], LogicLevel::BINARY, &[8]),
            Err(SimError::EmptySweep)
        ));
    }

    #[test]
    fn full_sweep_covers_valid_combinations() {
        let reports = full_sweep(
            &base(),
            &[CodeKind::Tree, CodeKind::Hot],
            LogicLevel::BINARY,
            &[6, 8],
        )
        .unwrap();
        assert_eq!(reports.len(), 4);
    }
}
