//! Simulation configuration: the parameters of the paper's Section 6.1
//! platform, with the paper's values as defaults.

use serde::{Deserialize, Serialize};

use crossbar_array::{CrossbarSpec, LayoutRules, PAPER_RAW_BITS};
use device_physics::{DopingLadder, ThresholdModel, VariabilityModel, Volts};
use nanowire_codes::{CodeBudgets, CodeSpec};

use crate::defect::DefectKind;
use crate::disturbance::DisturbanceKind;
use crate::error::{Result, SimError};
use crate::monte_carlo::MonteCarloConfig;

/// Full configuration of one decoder/crossbar simulation.
///
/// # Examples
///
/// ```
/// use decoder_sim::SimConfig;
/// use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10)?;
/// let config = SimConfig::paper_defaults(code)?;
/// assert_eq!(config.nanowires_per_half_cave(), 20);
/// assert_eq!(config.raw_bits(), 16 * 1024 * 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    code: CodeSpec,
    nanowires_per_half_cave: usize,
    raw_bits: u64,
    layout: LayoutRules,
    threshold_model: ThresholdModel,
    sigma_per_dose: Volts,
    supply_range: (Volts, Volts),
    window_override: Option<Volts>,
    code_budgets: CodeBudgets,
    // Defaulted so configurations serialized before this field existed
    // still deserialize (Gaussian is exactly the pre-field behaviour).
    #[serde(default)]
    disturbance: DisturbanceKind,
    // Defaulted for the same reason: None is exactly the pre-field
    // (defect-free) behaviour.
    #[serde(default)]
    defects: DefectKind,
    // Defaulted so configurations serialized before the sampling knobs
    // moved into the configuration still deserialize: the default is the
    // engine's historical fixed-sample behaviour.
    #[serde(default)]
    monte_carlo: MonteCarloConfig,
}

impl SimConfig {
    /// Creates a configuration with the paper's platform parameters:
    /// 16 kB raw density, `P_L = 32 nm`, `P_N = 10 nm`, `σ_T = 50 mV`,
    /// thresholds spread over 0–1 V, and 20 nanowires per half cave — the
    /// half-cave size the paper's own variability analysis uses (Fig. 6),
    /// consistent with caves defined by the same lithography generation as
    /// the 32 nm mesowires rather than the 0.8 µm academic process.
    ///
    /// # Errors
    ///
    /// Never fails for a valid [`CodeSpec`]; kept fallible for API
    /// consistency with [`SimConfig::new`].
    pub fn paper_defaults(code: CodeSpec) -> Result<Self> {
        SimConfig::new(
            code,
            20,
            PAPER_RAW_BITS,
            LayoutRules::paper_default(),
            ThresholdModel::default_mspt(),
            Volts::from_millivolts(50.0),
            (Volts::new(0.0), Volts::new(1.0)),
        )
    }

    /// Creates a fully explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the nanowire count or raw
    /// capacity is zero, the supply range is degenerate, or σ_T is negative.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        code: CodeSpec,
        nanowires_per_half_cave: usize,
        raw_bits: u64,
        layout: LayoutRules,
        threshold_model: ThresholdModel,
        sigma_per_dose: Volts,
        supply_range: (Volts, Volts),
    ) -> Result<Self> {
        if nanowires_per_half_cave == 0 {
            return Err(SimError::InvalidConfig {
                reason: "nanowires per half cave must be positive".to_string(),
            });
        }
        if raw_bits == 0 {
            return Err(SimError::InvalidConfig {
                reason: "raw capacity must be positive".to_string(),
            });
        }
        // `partial_cmp` keeps NaN bounds on the error path (NaN is not
        // Greater), matching the previous negated comparison.
        if supply_range.1.value().partial_cmp(&supply_range.0.value())
            != Some(std::cmp::Ordering::Greater)
        {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "supply range [{}, {}] is degenerate",
                    supply_range.0, supply_range.1
                ),
            });
        }
        if sigma_per_dose.value() < 0.0 {
            return Err(SimError::InvalidConfig {
                reason: format!("σ_T must be non-negative, got {sigma_per_dose}"),
            });
        }
        Ok(SimConfig {
            code,
            nanowires_per_half_cave,
            raw_bits,
            layout,
            threshold_model,
            sigma_per_dose,
            supply_range,
            window_override: None,
            code_budgets: CodeBudgets::default(),
            disturbance: DisturbanceKind::default(),
            defects: DefectKind::default(),
            monte_carlo: MonteCarloConfig::default(),
        })
    }

    /// Replaces the code specification, keeping every other parameter — the
    /// operation parameter sweeps perform for every point.
    #[must_use]
    pub fn with_code(mut self, code: CodeSpec) -> Self {
        self.code = code;
        self
    }

    /// Overrides the number of nanowires per half cave.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the count is zero.
    pub fn with_nanowires_per_half_cave(mut self, nanowires: usize) -> Result<Self> {
        if nanowires == 0 {
            return Err(SimError::InvalidConfig {
                reason: "nanowires per half cave must be positive".to_string(),
            });
        }
        self.nanowires_per_half_cave = nanowires;
        Ok(self)
    }

    /// Overrides the per-dose threshold-voltage deviation σ_T.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a negative deviation.
    pub fn with_sigma_per_dose(mut self, sigma: Volts) -> Result<Self> {
        if sigma.value() < 0.0 {
            return Err(SimError::InvalidConfig {
                reason: format!("σ_T must be non-negative, got {sigma}"),
            });
        }
        self.sigma_per_dose = sigma;
        Ok(self)
    }

    /// Overrides the addressability decision window (defaults to half the
    /// threshold-level separation).
    #[must_use]
    pub fn with_window(mut self, window: Volts) -> Self {
        self.window_override = Some(window);
        self
    }

    /// Overrides the search budgets used when generating arranged codes
    /// (defaults to [`CodeBudgets::default`]) — the serve layer's
    /// deserializer uses this to rebuild a configuration faithfully.
    #[must_use]
    pub fn with_code_budgets(mut self, budgets: CodeBudgets) -> Self {
        self.code_budgets = budgets;
        self
    }

    /// Selects the dose-disturbance distribution the Monte-Carlo path
    /// samples under (defaults to [`DisturbanceKind::Gaussian`], the only
    /// distribution the analytic path can integrate in closed form).
    #[must_use]
    pub fn with_disturbance(mut self, disturbance: DisturbanceKind) -> Self {
        self.disturbance = disturbance;
        self
    }

    /// Selects the fabrication-defect model the evaluation composes with
    /// the decoder yield (defaults to [`DefectKind::None`], the paper's
    /// defect-free assumption). Like the disturbance kind, the selection is
    /// part of the configuration's identity: defect-free and defective runs
    /// never alias in the report cache or on disk.
    #[must_use]
    pub fn with_defects(mut self, defects: DefectKind) -> Self {
        self.defects = defects;
        self
    }

    /// Replaces the Monte-Carlo sampling configuration: sample count, run
    /// seed, and the adaptive-stopping knobs (defaults to
    /// [`MonteCarloConfig::default`], a fixed-sample run). Like the
    /// disturbance kind, the selection is part of the configuration's
    /// identity: runs with different sampling budgets never alias in the
    /// report cache or on disk.
    #[must_use]
    pub fn with_monte_carlo(mut self, monte_carlo: MonteCarloConfig) -> Self {
        self.monte_carlo = monte_carlo;
        self
    }

    /// The code specification under evaluation.
    #[must_use]
    pub fn code(&self) -> CodeSpec {
        self.code
    }

    /// The number of nanowires per half cave `N`.
    #[must_use]
    pub fn nanowires_per_half_cave(&self) -> usize {
        self.nanowires_per_half_cave
    }

    /// The raw crosspoint capacity `D_RAW` in bits.
    #[must_use]
    pub fn raw_bits(&self) -> u64 {
        self.raw_bits
    }

    /// The layout rules.
    #[must_use]
    pub fn layout(&self) -> &LayoutRules {
        &self.layout
    }

    /// The threshold-voltage model.
    #[must_use]
    pub fn threshold_model(&self) -> &ThresholdModel {
        &self.threshold_model
    }

    /// The per-dose threshold-voltage deviation σ_T.
    #[must_use]
    pub fn sigma_per_dose(&self) -> Volts {
        self.sigma_per_dose
    }

    /// The supply-voltage range over which threshold levels are spread.
    #[must_use]
    pub fn supply_range(&self) -> (Volts, Volts) {
        self.supply_range
    }

    /// The search budgets used when generating arranged codes.
    #[must_use]
    pub fn code_budgets(&self) -> CodeBudgets {
        self.code_budgets
    }

    /// The dose-disturbance distribution of the Monte-Carlo path.
    #[must_use]
    pub fn disturbance(&self) -> DisturbanceKind {
        self.disturbance
    }

    /// The fabrication-defect selection of the evaluation.
    #[must_use]
    pub fn defects(&self) -> DefectKind {
        self.defects
    }

    /// The Monte-Carlo sampling configuration of the evaluation.
    #[must_use]
    pub fn monte_carlo(&self) -> MonteCarloConfig {
        self.monte_carlo
    }

    /// The crossbar specification implied by this configuration.
    ///
    /// # Errors
    ///
    /// Propagates crossbar-specification errors (cannot occur for a validated
    /// configuration).
    pub fn crossbar_spec(&self) -> Result<CrossbarSpec> {
        Ok(CrossbarSpec::new(
            self.raw_bits,
            self.nanowires_per_half_cave,
            self.layout,
        )?)
    }

    /// The variability model implied by σ_T.
    ///
    /// # Errors
    ///
    /// Propagates device-physics validation errors.
    pub fn variability_model(&self) -> Result<VariabilityModel> {
        Ok(VariabilityModel::new(self.sigma_per_dose)?)
    }

    /// The doping ladder implied by the code radix, threshold model and
    /// supply range.
    ///
    /// # Errors
    ///
    /// Propagates device-physics errors (unreachable thresholds).
    pub fn doping_ladder(&self) -> Result<DopingLadder> {
        Ok(DopingLadder::from_model(
            &self.threshold_model,
            self.code.radix().radix_usize(),
            self.supply_range,
        )?)
    }

    /// The explicit decision-window override, when one was set with
    /// [`SimConfig::with_window`] (the serializer needs the raw option to
    /// round-trip a configuration without forcing the derived default).
    #[must_use]
    pub fn window_override(&self) -> Option<Volts> {
        self.window_override
    }

    /// The addressability decision window: the explicit override if set,
    /// otherwise the ladder's [`DopingLadder::window_half_width`].
    ///
    /// The window is the **half-width** of the decision interval — a doping
    /// region is in-window iff `|ΔV_T| ≤ window`. Both the analytic path
    /// (`AddressabilityProfile::from_variability`) and the Monte-Carlo
    /// validator consume this same convention.
    ///
    /// # Errors
    ///
    /// Propagates device-physics errors from ladder construction.
    pub fn decision_window(&self) -> Result<Volts> {
        if let Some(window) = self.window_override {
            return Ok(window);
        }
        Ok(self.doping_ladder()?.window_half_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{CodeKind, LogicLevel};

    fn code() -> CodeSpec {
        CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap()
    }

    #[test]
    fn paper_defaults_match_section_6_1() {
        let config = SimConfig::paper_defaults(code()).unwrap();
        assert_eq!(config.nanowires_per_half_cave(), 20);
        assert_eq!(config.raw_bits(), 131_072);
        assert_eq!(config.sigma_per_dose(), Volts::from_millivolts(50.0));
        assert_eq!(config.layout().litho_pitch().value(), 32.0);
        assert_eq!(config.layout().nanowire_pitch().value(), 10.0);
        assert_eq!(config.supply_range().1.value(), 1.0);
        // Binary levels at 0.25/0.75 V -> window half-width 0.25 V.
        assert!((config.decision_window().unwrap().value() - 0.25).abs() < 1e-9);
        assert_eq!(config.code(), code());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(SimConfig::paper_defaults(code())
            .unwrap()
            .with_nanowires_per_half_cave(0)
            .is_err());
        assert!(SimConfig::paper_defaults(code())
            .unwrap()
            .with_sigma_per_dose(Volts::new(-0.1))
            .is_err());
        assert!(SimConfig::new(
            code(),
            40,
            0,
            LayoutRules::paper_default(),
            ThresholdModel::default_mspt(),
            Volts::from_millivolts(50.0),
            (Volts::new(0.0), Volts::new(1.0)),
        )
        .is_err());
        assert!(SimConfig::new(
            code(),
            40,
            1024,
            LayoutRules::paper_default(),
            ThresholdModel::default_mspt(),
            Volts::from_millivolts(50.0),
            (Volts::new(1.0), Volts::new(1.0)),
        )
        .is_err());
    }

    #[test]
    fn overrides_apply() {
        let config = SimConfig::paper_defaults(code())
            .unwrap()
            .with_nanowires_per_half_cave(24)
            .unwrap()
            .with_sigma_per_dose(Volts::from_millivolts(30.0))
            .unwrap()
            .with_window(Volts::new(0.2));
        assert_eq!(config.nanowires_per_half_cave(), 24);
        assert_eq!(config.sigma_per_dose(), Volts::from_millivolts(30.0));
        assert_eq!(config.decision_window().unwrap(), Volts::new(0.2));
        let other = CodeSpec::new(CodeKind::Hot, LogicLevel::BINARY, 6).unwrap();
        assert_eq!(config.with_code(other).code(), other);
    }

    #[test]
    fn disturbance_defaults_to_gaussian_and_overrides() {
        let config = SimConfig::paper_defaults(code()).unwrap();
        assert_eq!(config.disturbance(), DisturbanceKind::Gaussian);
        let heavy = config.with_disturbance(DisturbanceKind::Laplace);
        assert_eq!(heavy.disturbance(), DisturbanceKind::Laplace);
        // The disturbance choice is part of the configuration's identity
        // (the engine's report cache keys on SimConfig equality).
        assert_ne!(
            heavy,
            heavy.clone().with_disturbance(DisturbanceKind::Gaussian)
        );
    }

    #[test]
    fn defects_default_to_none_and_are_part_of_the_identity() {
        let config = SimConfig::paper_defaults(code()).unwrap();
        assert_eq!(config.defects(), DefectKind::None);
        let defective = config
            .clone()
            .with_defects(DefectKind::sampled(0.02, 0.01, 2_009).unwrap());
        assert_eq!(defective.defects().nanowire_breakage(), 0.02);
        // The defect selection is part of the configuration's identity (the
        // engine's report cache keys on SimConfig equality).
        assert_ne!(config, defective);
    }

    #[test]
    fn monte_carlo_defaults_and_is_part_of_the_identity() {
        let config = SimConfig::paper_defaults(code()).unwrap();
        assert_eq!(config.monte_carlo(), MonteCarloConfig::default());
        let tuned = config
            .clone()
            .with_monte_carlo(MonteCarloConfig::fixed(4_096, 7).with_target_half_width(0.05));
        assert_eq!(tuned.monte_carlo().samples, 4_096);
        assert!(tuned.monte_carlo().is_adaptive());
        // The sampling knobs are part of the configuration's identity (the
        // engine's report cache keys on SimConfig equality).
        assert_ne!(config, tuned);
    }

    #[test]
    fn derived_objects_are_consistent() {
        let config = SimConfig::paper_defaults(code()).unwrap();
        let spec = config.crossbar_spec().unwrap();
        assert_eq!(spec.nanowires_per_half_cave(), 20);
        let ladder = config.doping_ladder().unwrap();
        assert_eq!(ladder.level_count(), 2);
        let model = config.variability_model().unwrap();
        assert_eq!(model.sigma_per_dose(), Volts::from_millivolts(50.0));
    }
}
