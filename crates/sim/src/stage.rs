//! The stage graph of the evaluation pipeline: incremental,
//! dependency-aware recomputation.
//!
//! [`SimulationPlatform::evaluate_with_defect_map`] used to be a monolith —
//! any one-field configuration change re-ran everything. This module splits
//! it into explicit stages, each memoized under a **canonical per-stage
//! fingerprint** derived from only the [`SimConfig`] fields the stage
//! actually reads:
//!
//! ```text
//! Variability ──────► Addressability ──► CaveYield ──┐
//!   (Σ matrix + Φ)       (window)           ▲        │
//! ContactLayout ─────────────────────────────┘        ├─► Composite
//!   └─────────► CrossbarArea ─────────────────────────┤   (PlatformReport)
//! DefectMap ──────────────────────────────────────────┘
//! Variability ──────► MonteCarlo   (+ Disturbance, MonteCarlo knobs, chunk)
//! ```
//!
//! Changing only the defect seed therefore re-runs only the `DefectMap` and
//! `Composite` stages; changing only the disturbance kind re-runs only the
//! `MonteCarlo` stage — every other stage is a cache hit, with its own
//! hit/miss/eviction counters.
//!
//! # Fingerprint rules
//!
//! Every stage has a hand-written `*_stage_key` function that formats
//! **exactly** the accessors its [`Stage::reads`] entry declares (the
//! `stage-fingerprint` lint in `mspt-analyze` machine-checks this), and a
//! fingerprint `key_fingerprint(STAGE_KEY_DOMAIN, stage_index, key)` — the
//! same FNV-1a + [`chunk_seed`](crossbar_array::chunk_seed) discipline as
//! the report cache, under its own domain tag so stage keys never collide
//! with report keys or sampling seeds.
//!
//! [`StageCache`] holds one [`MemoCache`] slot per stage, so every stage
//! keeps the report cache's per-shard LRU bounds, single-flight semantics
//! and counters.

use crossbar_array::{
    AddressabilityProfile, CaveYield, ContactGroupLayout, CrossbarArea, DefectMap,
};
use mspt_fabrication::{FabricationCost, VariabilityMatrix};

use crate::cache::{key_fingerprint, CacheConfig, CacheStats, MemoCache};
use crate::config::SimConfig;
use crate::error::Result;
use crate::monte_carlo::{MonteCarloConfig, MonteCarloOutcome};
use crate::platform::PlatformReport;

/// Domain-separation tag mixed into stage-key fingerprints before the
/// [`chunk_seed`](crossbar_array::chunk_seed) finalizer. Keeps the stage
/// memo keys decorrelated from the report-cache key stream and from every
/// sampling seed domain.
const STAGE_KEY_DOMAIN: u64 = 0x57a6_e1fd_9b3c_5a21;

/// The [`SimConfig`] fields a stage can declare in its read set — one
/// variant per public accessor that is part of a configuration's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigField {
    /// [`SimConfig::code`].
    Code,
    /// [`SimConfig::nanowires_per_half_cave`].
    NanowiresPerHalfCave,
    /// [`SimConfig::raw_bits`].
    RawBits,
    /// [`SimConfig::layout`].
    Layout,
    /// [`SimConfig::threshold_model`].
    ThresholdModel,
    /// [`SimConfig::sigma_per_dose`].
    SigmaPerDose,
    /// [`SimConfig::supply_range`].
    SupplyRange,
    /// [`SimConfig::window_override`].
    WindowOverride,
    /// [`SimConfig::code_budgets`].
    CodeBudgets,
    /// [`SimConfig::disturbance`].
    Disturbance,
    /// [`SimConfig::defects`].
    Defects,
    /// [`SimConfig::monte_carlo`].
    MonteCarlo,
}

impl ConfigField {
    /// Every field, in declaration order — what the stage-invalidation
    /// matrix test iterates over.
    pub const ALL: [ConfigField; 12] = [
        ConfigField::Code,
        ConfigField::NanowiresPerHalfCave,
        ConfigField::RawBits,
        ConfigField::Layout,
        ConfigField::ThresholdModel,
        ConfigField::SigmaPerDose,
        ConfigField::SupplyRange,
        ConfigField::WindowOverride,
        ConfigField::CodeBudgets,
        ConfigField::Disturbance,
        ConfigField::Defects,
        ConfigField::MonteCarlo,
    ];

    /// The name of the [`SimConfig`] accessor the field corresponds to —
    /// the method name the `stage-fingerprint` lint matches key functions
    /// against.
    #[must_use]
    pub fn accessor(self) -> &'static str {
        match self {
            ConfigField::Code => "code",
            ConfigField::NanowiresPerHalfCave => "nanowires_per_half_cave",
            ConfigField::RawBits => "raw_bits",
            ConfigField::Layout => "layout",
            ConfigField::ThresholdModel => "threshold_model",
            ConfigField::SigmaPerDose => "sigma_per_dose",
            ConfigField::SupplyRange => "supply_range",
            ConfigField::WindowOverride => "window_override",
            ConfigField::CodeBudgets => "code_budgets",
            ConfigField::Disturbance => "disturbance",
            ConfigField::Defects => "defects",
            ConfigField::MonteCarlo => "monte_carlo",
        }
    }
}

/// One stage of the evaluation pipeline — the unit of memoization and
/// invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The variability matrix `Σ` and fabrication complexity `Φ` of the
    /// configured half cave (one stage: both derive from the same pattern
    /// and doping ladder).
    Variability,
    /// The analytic per-nanowire addressability profile.
    Addressability,
    /// The contact-group layout of the half cave.
    ContactLayout,
    /// Cave and crossbar yield from addressability and contact layout.
    CaveYield,
    /// The crossbar area model (raw and effective bit area inputs).
    CrossbarArea,
    /// The sampled fabrication-defect map (`None` for a defect-free
    /// configuration).
    DefectMap,
    /// The fully composed [`PlatformReport`] — everything the report
    /// carries except Monte-Carlo results.
    Composite,
    /// The Monte-Carlo addressability estimation under the configured
    /// disturbance (keyed additionally by samples, seed and chunk size).
    MonteCarlo,
}

impl Stage {
    /// Every stage, in pipeline order — the order
    /// [`StageCache::stats`] reports rows in.
    pub const ALL: [Stage; 8] = [
        Stage::Variability,
        Stage::Addressability,
        Stage::ContactLayout,
        Stage::CaveYield,
        Stage::CrossbarArea,
        Stage::DefectMap,
        Stage::Composite,
        Stage::MonteCarlo,
    ];

    /// The stable kebab-case name of the stage — the `stage` label of
    /// per-stage stats rows in the serve stress artifact.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Variability => "variability",
            Stage::Addressability => "addressability",
            Stage::ContactLayout => "contact-layout",
            Stage::CaveYield => "cave-yield",
            Stage::CrossbarArea => "crossbar-area",
            Stage::DefectMap => "defect-map",
            Stage::Composite => "composite",
            Stage::MonteCarlo => "monte-carlo",
        }
    }

    /// The stages whose outputs this stage consumes — the dependency edges
    /// of the module-level diagram. A stage's read set is the union of its
    /// dependencies' read sets plus its own direct reads, so invalidation
    /// propagates downstream by construction.
    #[must_use]
    pub fn depends_on(self) -> &'static [Stage] {
        match self {
            Stage::Variability | Stage::ContactLayout | Stage::DefectMap => &[],
            Stage::Addressability | Stage::MonteCarlo => &[Stage::Variability],
            Stage::CaveYield => &[Stage::Addressability, Stage::ContactLayout],
            Stage::CrossbarArea => &[Stage::ContactLayout],
            Stage::Composite => &[
                Stage::Variability,
                Stage::CaveYield,
                Stage::CrossbarArea,
                Stage::DefectMap,
            ],
        }
    }

    /// The [`SimConfig`] fields the stage (transitively) reads — exactly
    /// the fields its `*_stage_key` function formats, so a configuration
    /// change re-runs the stage iff it touches one of these.
    #[must_use]
    pub fn reads(self) -> &'static [ConfigField] {
        match self {
            Stage::Variability => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::ThresholdModel,
                ConfigField::SigmaPerDose,
                ConfigField::SupplyRange,
                ConfigField::CodeBudgets,
            ],
            Stage::Addressability => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::ThresholdModel,
                ConfigField::SigmaPerDose,
                ConfigField::SupplyRange,
                ConfigField::CodeBudgets,
                ConfigField::WindowOverride,
            ],
            Stage::ContactLayout => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::Layout,
            ],
            Stage::CaveYield => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::Layout,
                ConfigField::ThresholdModel,
                ConfigField::SigmaPerDose,
                ConfigField::SupplyRange,
                ConfigField::CodeBudgets,
                ConfigField::WindowOverride,
            ],
            Stage::CrossbarArea => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::RawBits,
                ConfigField::Layout,
            ],
            Stage::DefectMap => &[
                ConfigField::NanowiresPerHalfCave,
                ConfigField::RawBits,
                ConfigField::Layout,
                ConfigField::Defects,
            ],
            Stage::Composite => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::RawBits,
                ConfigField::Layout,
                ConfigField::ThresholdModel,
                ConfigField::SigmaPerDose,
                ConfigField::SupplyRange,
                ConfigField::WindowOverride,
                ConfigField::CodeBudgets,
                ConfigField::Defects,
            ],
            Stage::MonteCarlo => &[
                ConfigField::Code,
                ConfigField::NanowiresPerHalfCave,
                ConfigField::ThresholdModel,
                ConfigField::SigmaPerDose,
                ConfigField::SupplyRange,
                ConfigField::CodeBudgets,
                ConfigField::WindowOverride,
                ConfigField::Disturbance,
                ConfigField::MonteCarlo,
            ],
        }
    }

    /// The position of the stage in [`Stage::ALL`] — the fingerprint stream
    /// index, so two stages with an identical key string still fingerprint
    /// differently.
    fn index(self) -> u64 {
        Stage::ALL
            .iter()
            .position(|&stage| stage == self)
            .expect("every stage appears in ALL") as u64
    }

    /// The canonical memo key of the stage for a configuration: the
    /// stage's `*_stage_key` rendering of exactly its declared read set.
    /// ([`Stage::MonteCarlo`] keys carry additional sampling parameters —
    /// see [`StageCache`]'s Monte-Carlo slot — appended by the cache, not
    /// by the key function.)
    #[must_use]
    pub fn key(self, config: &SimConfig) -> String {
        match self {
            Stage::Variability => variability_stage_key(config),
            Stage::Addressability => addressability_stage_key(config),
            Stage::ContactLayout => contact_layout_stage_key(config),
            Stage::CaveYield => cave_yield_stage_key(config),
            Stage::CrossbarArea => crossbar_area_stage_key(config),
            Stage::DefectMap => defect_map_stage_key(config),
            Stage::Composite => composite_stage_key(config),
            Stage::MonteCarlo => monte_carlo_stage_key(config),
        }
    }

    /// The memo fingerprint of a canonical stage key: FNV-1a over the key,
    /// finalized through the workspace-wide `chunk_seed` under
    /// `STAGE_KEY_DOMAIN` at the stage's index.
    #[must_use]
    pub fn fingerprint(self, key: &str) -> u64 {
        key_fingerprint(STAGE_KEY_DOMAIN, self.index(), key)
    }
}

// The `*_stage_key` functions below are the machine-checked half of the
// stage graph: each formats exactly the accessors its `Stage::reads` entry
// declares, via `Debug` (injective for every field type — f64 renders
// shortest-roundtrip). The `stage-fingerprint` lint in mspt-analyze keeps
// the calls and the declared read sets from drifting apart.

pub(crate) fn variability_stage_key(config: &SimConfig) -> String {
    format!(
        "variability;code={:?};nanowires={:?};threshold={:?};sigma={:?};supply={:?};budgets={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.threshold_model(),
        config.sigma_per_dose(),
        config.supply_range(),
        config.code_budgets(),
    )
}

pub(crate) fn addressability_stage_key(config: &SimConfig) -> String {
    format!(
        "addressability;code={:?};nanowires={:?};threshold={:?};sigma={:?};supply={:?};budgets={:?};window={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.threshold_model(),
        config.sigma_per_dose(),
        config.supply_range(),
        config.code_budgets(),
        config.window_override(),
    )
}

pub(crate) fn contact_layout_stage_key(config: &SimConfig) -> String {
    format!(
        "contact-layout;code={:?};nanowires={:?};layout={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.layout(),
    )
}

pub(crate) fn cave_yield_stage_key(config: &SimConfig) -> String {
    format!(
        "cave-yield;code={:?};nanowires={:?};layout={:?};threshold={:?};sigma={:?};supply={:?};budgets={:?};window={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.layout(),
        config.threshold_model(),
        config.sigma_per_dose(),
        config.supply_range(),
        config.code_budgets(),
        config.window_override(),
    )
}

pub(crate) fn crossbar_area_stage_key(config: &SimConfig) -> String {
    format!(
        "crossbar-area;code={:?};nanowires={:?};raw={:?};layout={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.raw_bits(),
        config.layout(),
    )
}

pub(crate) fn defect_map_stage_key(config: &SimConfig) -> String {
    format!(
        "defect-map;nanowires={:?};raw={:?};layout={:?};defects={:?}",
        config.nanowires_per_half_cave(),
        config.raw_bits(),
        config.layout(),
        config.defects(),
    )
}

pub(crate) fn composite_stage_key(config: &SimConfig) -> String {
    format!(
        "composite;code={:?};nanowires={:?};raw={:?};layout={:?};threshold={:?};sigma={:?};supply={:?};window={:?};budgets={:?};defects={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.raw_bits(),
        config.layout(),
        config.threshold_model(),
        config.sigma_per_dose(),
        config.supply_range(),
        config.window_override(),
        config.code_budgets(),
        config.defects(),
    )
}

pub(crate) fn monte_carlo_stage_key(config: &SimConfig) -> String {
    format!(
        "monte-carlo;code={:?};nanowires={:?};threshold={:?};sigma={:?};supply={:?};budgets={:?};window={:?};disturbance={:?};mc={:?}",
        config.code(),
        config.nanowires_per_half_cave(),
        config.threshold_model(),
        config.sigma_per_dose(),
        config.supply_range(),
        config.code_budgets(),
        config.window_override(),
        config.disturbance(),
        config.monte_carlo(),
    )
}

/// The memoized product of the [`Stage::Variability`] stage: the
/// variability matrix and the fabrication cost ride together because both
/// derive from the same pattern and doping ladder.
#[derive(Debug, Clone)]
pub(crate) struct VariabilityStage {
    /// The variability matrix `Σ` of the configured half cave.
    pub variability: VariabilityMatrix,
    /// The fabrication complexity `Φ` of the configured half cave.
    pub cost: FabricationCost,
}

/// The counters of one stage's memo slot — a per-stage [`CacheStats`] row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// The stage the counters belong to.
    pub stage: Stage,
    /// Hit/miss/eviction counters and current entry count of the stage's
    /// memo slot.
    pub stats: CacheStats,
}

/// The per-stage memo table of the evaluation pipeline: one
/// `MemoCache` slot per [`Stage`], each with the report cache's
/// fingerprint sharding, bounded LRU, single-flight semantics and
/// hit/miss/eviction counters — the generalisation of
/// [`ReportCache`](crate::ReportCache) the stage graph runs on.
///
/// The [`ExecutionEngine`](crate::ExecutionEngine) owns one; the serial
/// entry points route through a [`StageCache::disabled`] instance, so
/// their behaviour (including every defect-map validation error) is
/// unchanged.
#[derive(Debug)]
pub struct StageCache {
    variability: MemoCache<VariabilityStage>,
    addressability: MemoCache<AddressabilityProfile>,
    contact_layout: MemoCache<ContactGroupLayout>,
    cave_yield: MemoCache<CaveYield>,
    crossbar_area: MemoCache<CrossbarArea>,
    defect_map: MemoCache<Option<DefectMap>>,
    composite: MemoCache<PlatformReport>,
    monte_carlo: MemoCache<MonteCarloOutcome>,
}

impl Default for StageCache {
    fn default() -> Self {
        StageCache::new(CacheConfig::default())
    }
}

impl StageCache {
    /// Creates a stage cache where every stage's memo slot uses `config`
    /// (the same clamping rules as [`ReportCache`](crate::ReportCache):
    /// shards clamped to `1..=capacity`, capacity `0` disables storage).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        StageCache {
            variability: MemoCache::new(config),
            addressability: MemoCache::new(config),
            contact_layout: MemoCache::new(config),
            cave_yield: MemoCache::new(config),
            crossbar_area: MemoCache::new(config),
            defect_map: MemoCache::new(config),
            composite: MemoCache::new(config),
            monte_carlo: MemoCache::new(config),
        }
    }

    /// A cache that stores nothing: every stage lookup is a leader-path
    /// miss that recomputes — the configuration behind the serial entry
    /// points, which must stay bit- and error-identical to the pre-stage
    /// monolith.
    #[must_use]
    pub fn disabled() -> Self {
        StageCache::new(CacheConfig {
            capacity: 0,
            shards: 1,
        })
    }

    /// The per-stage counters, one row per [`Stage`] in [`Stage::ALL`]
    /// order — what `cache_stats` extensions and the serve stress artifact
    /// report.
    #[must_use]
    pub fn stats(&self) -> Vec<StageStats> {
        Stage::ALL
            .iter()
            .map(|&stage| StageStats {
                stage,
                stats: match stage {
                    Stage::Variability => self.variability.stats(),
                    Stage::Addressability => self.addressability.stats(),
                    Stage::ContactLayout => self.contact_layout.stats(),
                    Stage::CaveYield => self.cave_yield.stats(),
                    Stage::CrossbarArea => self.crossbar_area.stats(),
                    Stage::DefectMap => self.defect_map.stats(),
                    Stage::Composite => self.composite.stats(),
                    Stage::MonteCarlo => self.monte_carlo.stats(),
                },
            })
            .collect()
    }

    /// Total entries stored across every stage slot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stats().iter().map(|row| row.stats.entries).sum()
    }

    /// Whether no stage slot stores anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn variability<F>(&self, config: &SimConfig, compute: F) -> Result<VariabilityStage>
    where
        F: FnOnce() -> Result<VariabilityStage>,
    {
        let key = variability_stage_key(config);
        self.variability
            .get_or_compute(Stage::Variability.fingerprint(&key), &key, compute)
    }

    pub(crate) fn addressability<F>(
        &self,
        config: &SimConfig,
        compute: F,
    ) -> Result<AddressabilityProfile>
    where
        F: FnOnce() -> Result<AddressabilityProfile>,
    {
        let key = addressability_stage_key(config);
        self.addressability
            .get_or_compute(Stage::Addressability.fingerprint(&key), &key, compute)
    }

    pub(crate) fn contact_layout<F>(
        &self,
        config: &SimConfig,
        compute: F,
    ) -> Result<ContactGroupLayout>
    where
        F: FnOnce() -> Result<ContactGroupLayout>,
    {
        let key = contact_layout_stage_key(config);
        self.contact_layout
            .get_or_compute(Stage::ContactLayout.fingerprint(&key), &key, compute)
    }

    pub(crate) fn cave_yield<F>(&self, config: &SimConfig, compute: F) -> Result<CaveYield>
    where
        F: FnOnce() -> Result<CaveYield>,
    {
        let key = cave_yield_stage_key(config);
        self.cave_yield
            .get_or_compute(Stage::CaveYield.fingerprint(&key), &key, compute)
    }

    pub(crate) fn crossbar_area<F>(&self, config: &SimConfig, compute: F) -> Result<CrossbarArea>
    where
        F: FnOnce() -> Result<CrossbarArea>,
    {
        let key = crossbar_area_stage_key(config);
        self.crossbar_area
            .get_or_compute(Stage::CrossbarArea.fingerprint(&key), &key, compute)
    }

    pub(crate) fn defect_map<F>(&self, config: &SimConfig, compute: F) -> Result<Option<DefectMap>>
    where
        F: FnOnce() -> Result<Option<DefectMap>>,
    {
        let key = defect_map_stage_key(config);
        self.defect_map
            .get_or_compute(Stage::DefectMap.fingerprint(&key), &key, compute)
    }

    pub(crate) fn composite<F>(&self, config: &SimConfig, compute: F) -> Result<PlatformReport>
    where
        F: FnOnce() -> Result<PlatformReport>,
    {
        let key = composite_stage_key(config);
        self.composite
            .get_or_compute(Stage::Composite.fingerprint(&key), &key, compute)
    }

    /// The Monte-Carlo slot keys on the stage key **plus** the sampling
    /// parameters that are part of an outcome's identity: sample count,
    /// run seed, the adaptive-stopping knobs (target half-width,
    /// confidence, sample cap), and the engine chunk size (outcomes are
    /// bit-identical across thread counts but depend on the chunk size).
    pub(crate) fn monte_carlo<F>(
        &self,
        config: &SimConfig,
        mc: MonteCarloConfig,
        chunk_size: usize,
        compute: F,
    ) -> Result<MonteCarloOutcome>
    where
        F: FnOnce() -> Result<MonteCarloOutcome>,
    {
        let key = format!(
            "{};samples={};seed={};chunk={};target={:?};confidence={:?};max={:?}",
            monte_carlo_stage_key(config),
            mc.samples,
            mc.seed,
            chunk_size,
            mc.target_half_width,
            mc.confidence,
            mc.max_samples,
        );
        self.monte_carlo
            .get_or_compute(Stage::MonteCarlo.fingerprint(&key), &key, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::DefectKind;
    use crate::disturbance::DisturbanceKind;
    use crossbar_array::LayoutRules;
    use device_physics::{Nanometers, ThresholdModel, Volts};
    use nanowire_codes::{
        ArrangedHotBudget, BalanceBudget, CodeBudgets, CodeKind, CodeSpec, LogicLevel,
    };

    fn base() -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    /// A configuration differing from [`base`] in exactly `field`.
    fn varied(field: ConfigField) -> SimConfig {
        let base = base();
        match field {
            ConfigField::Code => {
                base.with_code(CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8).unwrap())
            }
            ConfigField::NanowiresPerHalfCave => base.with_nanowires_per_half_cave(24).unwrap(),
            ConfigField::RawBits => rebuild(&base, 2 * base.raw_bits(), *base.layout(), None, None),
            ConfigField::Layout => rebuild(
                &base,
                base.raw_bits(),
                LayoutRules::new(
                    Nanometers::new(45.0),
                    Nanometers::new(10.0),
                    1.5,
                    Nanometers::new(16.0),
                )
                .unwrap(),
                None,
                None,
            ),
            ConfigField::ThresholdModel => rebuild(
                &base,
                base.raw_bits(),
                *base.layout(),
                Some(ThresholdModel::new(Nanometers::new(3.0), Volts::new(-1.0)).unwrap()),
                None,
            ),
            ConfigField::SigmaPerDose => base
                .with_sigma_per_dose(Volts::from_millivolts(40.0))
                .unwrap(),
            ConfigField::SupplyRange => rebuild(
                &base,
                base.raw_bits(),
                *base.layout(),
                None,
                Some((Volts::new(0.0), Volts::new(1.2))),
            ),
            ConfigField::WindowOverride => base.with_window(Volts::new(0.2)),
            ConfigField::CodeBudgets => base.with_code_budgets(CodeBudgets {
                balance: BalanceBudget {
                    max_nodes_per_limit: 1_000,
                    max_limit_slack: 2,
                },
                arranged_hot: ArrangedHotBudget::default(),
            }),
            ConfigField::Disturbance => base.with_disturbance(DisturbanceKind::Laplace),
            ConfigField::Defects => {
                base.with_defects(DefectKind::sampled(0.02, 0.01, 2_009).unwrap())
            }
            ConfigField::MonteCarlo => base.with_monte_carlo(MonteCarloConfig::fixed(123, 9)),
        }
    }

    /// Rebuilds [`base`] through [`SimConfig::new`] with selected
    /// parameters swapped (the fields without `with_` builders).
    fn rebuild(
        base: &SimConfig,
        raw_bits: u64,
        layout: LayoutRules,
        threshold: Option<ThresholdModel>,
        supply: Option<(Volts, Volts)>,
    ) -> SimConfig {
        SimConfig::new(
            base.code(),
            base.nanowires_per_half_cave(),
            raw_bits,
            layout,
            threshold.unwrap_or(*base.threshold_model()),
            base.sigma_per_dose(),
            supply.unwrap_or(base.supply_range()),
        )
        .unwrap()
    }

    #[test]
    fn keys_change_iff_the_field_is_in_the_read_set() {
        let base = base();
        for field in ConfigField::ALL {
            let varied = varied(field);
            assert_ne!(base, varied, "varied({field:?}) must differ from base");
            for stage in Stage::ALL {
                let declared = stage.reads().contains(&field);
                let changed = stage.key(&base) != stage.key(&varied);
                assert_eq!(
                    declared, changed,
                    "{stage:?} key change={changed} but reads declares {declared} for {field:?}"
                );
            }
        }
    }

    #[test]
    fn stage_fingerprints_are_domain_and_index_separated() {
        let config = base();
        // Identical key strings under different stages never collide.
        let key = "same-key";
        let mut fingerprints: Vec<u64> = Stage::ALL
            .iter()
            .map(|stage| stage.fingerprint(key))
            .collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), Stage::ALL.len());
        // And a stage fingerprint never equals the report-cache fingerprint
        // of the same configuration (different domain tags).
        let report = crate::cache::ReportCache::fingerprint(&config);
        for stage in Stage::ALL {
            assert_ne!(stage.fingerprint(&stage.key(&config)), report);
        }
    }

    #[test]
    fn read_sets_cover_dependencies() {
        // A stage's read set must contain every field its dependencies
        // read, or invalidation would not propagate downstream.
        for stage in Stage::ALL {
            for &dependency in stage.depends_on() {
                for field in dependency.reads() {
                    assert!(
                        stage.reads().contains(field),
                        "{stage:?} misses {field:?} read by its dependency {dependency:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let cache = StageCache::disabled();
        let config = base();
        let mut computed = 0;
        for _ in 0..2 {
            cache
                .contact_layout(&config, || {
                    computed += 1;
                    Ok(ContactGroupLayout::new(
                        config.nanowires_per_half_cave(),
                        config.code().space_size(),
                        *config.layout(),
                    )?)
                })
                .unwrap();
        }
        assert_eq!(computed, 2);
        assert!(cache.is_empty());
        let rows = cache.stats();
        let contact = rows
            .iter()
            .find(|row| row.stage == Stage::ContactLayout)
            .unwrap();
        assert_eq!((contact.stats.hits, contact.stats.misses), (0, 2));
    }

    #[test]
    fn enabled_cache_hits_on_repeats_and_counts_per_stage() {
        let cache = StageCache::new(CacheConfig::unsharded(16));
        let config = base();
        for _ in 0..3 {
            cache
                .cave_yield(&config, || {
                    let platform = crate::platform::SimulationPlatform::new(config.clone());
                    platform.cave_yield()
                })
                .unwrap();
        }
        let rows = cache.stats();
        let cave = rows
            .iter()
            .find(|row| row.stage == Stage::CaveYield)
            .unwrap();
        assert_eq!((cave.stats.hits, cave.stats.misses), (2, 1));
        // Other stages are untouched.
        let variability = rows
            .iter()
            .find(|row| row.stage == Stage::Variability)
            .unwrap();
        assert_eq!(variability.stats, CacheStats::default());
    }

    #[test]
    fn monte_carlo_keys_include_sampling_parameters() {
        let cache = StageCache::new(CacheConfig::unsharded(16));
        let config = base();
        let outcome = MonteCarloOutcome {
            profile: crossbar_array::AddressabilityProfile::new(vec![1.0]).unwrap(),
            samples: 1,
            samples_used: 1,
            ci_lower: vec![0.0],
            ci_upper: vec![1.0],
        };
        let mc = MonteCarloConfig::fixed(100, 1);
        let variants = [
            MonteCarloConfig::fixed(100, 1),
            MonteCarloConfig::fixed(200, 1),
            MonteCarloConfig::fixed(100, 2),
            MonteCarloConfig::fixed(100, 1).with_target_half_width(0.05),
            MonteCarloConfig::fixed(100, 1).with_confidence(0.99),
            MonteCarloConfig::fixed(100, 1).with_max_samples(5_000),
        ];
        for (index, variant) in variants.into_iter().enumerate() {
            let chunk = if index == 0 { 128 } else { 256 };
            cache
                .monte_carlo(&config, variant, 256, || Ok(outcome.clone()))
                .unwrap();
            cache
                .monte_carlo(&config, variant, chunk, || Ok(outcome.clone()))
                .unwrap();
        }
        // Every sampling knob (samples, seed, target, confidence, max) and
        // the chunk size are part of the key: seven distinct keys above, and
        // the five repeats with identical (config, chunk) pairs hit.
        let rows = cache.stats();
        let mc_row = rows
            .iter()
            .find(|row| row.stage == Stage::MonteCarlo)
            .unwrap();
        assert_eq!((mc_row.stats.hits, mc_row.stats.misses), (5, 7));
        // And a repeat of the first configuration hits again.
        cache
            .monte_carlo(&config, mc, 256, || Ok(outcome.clone()))
            .unwrap();
        let rows = cache.stats();
        let mc_row = rows
            .iter()
            .find(|row| row.stage == Stage::MonteCarlo)
            .unwrap();
        assert_eq!((mc_row.stats.hits, mc_row.stats.misses), (6, 7));
    }
}
