//! Fabrication-defect configuration: the serializable selection that makes
//! broken nanowires and stuck crosspoints a first-class dimension of every
//! report.
//!
//! The paper assumes defect-free arrays ("a yield close to unit"); the
//! crossbar layer's [`DefectModel`] models the two first-order defect
//! mechanisms beyond that assumption. This module is the `SimConfig`-side
//! selector: [`DefectKind::None`] reproduces the paper exactly, while
//! [`DefectKind::Sampled`] draws one deterministic [`DefectMap`] per
//! evaluation (seeded independently of the Monte-Carlo streams through the
//! defect layer's domain tag) and composes its survival with the decoder
//! yield into the report's composite quantities.
//!
//! [`DefectMap`]: crossbar_array::DefectMap

use std::fmt;

use serde::{Deserialize, Serialize};

use crossbar_array::DefectModel;

use crate::error::Result;

/// Validated fabrication-defect rates plus the defect-map seed — the
/// parameters of one [`DefectKind::Sampled`] selection.
///
/// Construction rejects rates that are NaN or outside `[0, 1]`, so a held
/// `DefectConfig` always instantiates a valid [`DefectModel`].
///
/// # Examples
///
/// ```
/// use decoder_sim::DefectConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let defects = DefectConfig::new(0.02, 0.01, 7)?;
/// assert_eq!(defects.nanowire_breakage(), 0.02);
/// assert!(DefectConfig::new(f64::NAN, 0.0, 7).is_err());
/// assert!(DefectConfig::new(0.0, 1.5, 7).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectConfig {
    nanowire_breakage: f64,
    crosspoint_defect: f64,
    seed: u64,
}

impl DefectConfig {
    /// Creates a validated defect configuration.
    ///
    /// # Errors
    ///
    /// Returns the crossbar layer's typed
    /// [`InvalidProbability`](crossbar_array::CrossbarError::InvalidProbability)
    /// (as [`SimError::Crossbar`](crate::SimError::Crossbar)) when either rate is NaN or outside
    /// `[0, 1]`.
    pub fn new(nanowire_breakage: f64, crosspoint_defect: f64, seed: u64) -> Result<Self> {
        // Validation lives in the crossbar layer's constructor; building the
        // model here means a stored DefectConfig can never hold rates the
        // model would reject.
        DefectModel::new(nanowire_breakage, crosspoint_defect)?;
        Ok(DefectConfig {
            nanowire_breakage,
            crosspoint_defect,
            seed,
        })
    }

    /// The nanowire breakage probability.
    #[must_use]
    pub fn nanowire_breakage(&self) -> f64 {
        self.nanowire_breakage
    }

    /// The stuck-crosspoint (switching-layer defect) probability.
    #[must_use]
    pub fn crosspoint_defect(&self) -> f64 {
        self.crosspoint_defect
    }

    /// The defect-map run seed. The defect layer mixes its own domain tag
    /// into this seed before chunk derivation, so a seed shared with a
    /// Monte-Carlo estimation never replays its uniform stream.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The crossbar-layer defect model of these rates.
    #[must_use]
    pub fn model(&self) -> DefectModel {
        DefectModel::new(self.nanowire_breakage, self.crosspoint_defect)
            .expect("rates validated at construction")
    }
}

/// The serializable fabrication-defect selection of a
/// [`SimConfig`](crate::SimConfig) — part of a configuration's identity, so
/// defect-free and defective runs never alias in the report cache or on
/// disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum DefectKind {
    /// The paper's assumption: no broken nanowires, no stuck crosspoints.
    /// The default, and the behaviour of every configuration serialized
    /// before this field existed.
    #[default]
    None,
    /// Sample one deterministic defect map per evaluation and compose its
    /// survival with the decoder yield.
    Sampled(DefectConfig),
}

impl DefectKind {
    /// Convenience constructor for a sampled selection.
    ///
    /// # Errors
    ///
    /// Propagates [`DefectConfig::new`] validation errors.
    pub fn sampled(nanowire_breakage: f64, crosspoint_defect: f64, seed: u64) -> Result<Self> {
        Ok(DefectKind::Sampled(DefectConfig::new(
            nanowire_breakage,
            crosspoint_defect,
            seed,
        )?))
    }

    /// Whether this is the defect-free selection.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, DefectKind::None)
    }

    /// The sampled configuration, when one is selected.
    #[must_use]
    pub fn config(&self) -> Option<&DefectConfig> {
        match self {
            DefectKind::None => None,
            DefectKind::Sampled(config) => Some(config),
        }
    }

    /// The nanowire-breakage rate of the selection (`0` for
    /// [`DefectKind::None`]) — the x-axis of the defect sweeps.
    #[must_use]
    pub fn nanowire_breakage(&self) -> f64 {
        self.config().map_or(0.0, DefectConfig::nanowire_breakage)
    }

    /// The stuck-crosspoint rate of the selection (`0` for
    /// [`DefectKind::None`]).
    #[must_use]
    pub fn crosspoint_defect(&self) -> f64 {
        self.config().map_or(0.0, DefectConfig::crosspoint_defect)
    }
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectKind::None => write!(f, "none"),
            DefectKind::Sampled(config) => write!(
                f,
                "sampled(break={:.4}, stuck={:.4}, seed={})",
                config.nanowire_breakage(),
                config.crosspoint_defect(),
                config.seed()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crossbar_array::CrossbarError;

    #[test]
    fn construction_validates_rates_with_a_typed_error() {
        for (breakage, stuck) in [
            (-0.1, 0.0),
            (0.0, -0.1),
            (1.5, 0.0),
            (0.0, 1.5),
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 0.0),
        ] {
            let error = DefectConfig::new(breakage, stuck, 1).unwrap_err();
            assert!(
                matches!(
                    error,
                    SimError::Crossbar(CrossbarError::InvalidProbability { .. })
                ),
                "({breakage}, {stuck}) produced {error:?}"
            );
            assert!(DefectKind::sampled(breakage, stuck, 1).is_err());
        }
        assert!(DefectConfig::new(0.0, 0.0, 1).is_ok());
        assert!(DefectConfig::new(1.0, 1.0, 1).is_ok());
    }

    #[test]
    fn accessors_and_model_round_trip_the_rates() {
        let config = DefectConfig::new(0.05, 0.02, 42).unwrap();
        assert_eq!(config.nanowire_breakage(), 0.05);
        assert_eq!(config.crosspoint_defect(), 0.02);
        assert_eq!(config.seed(), 42);
        let model = config.model();
        assert_eq!(model.nanowire_breakage(), 0.05);
        assert_eq!(model.crosspoint_defect(), 0.02);
    }

    #[test]
    fn kind_defaults_to_none_and_exposes_rates() {
        assert_eq!(DefectKind::default(), DefectKind::None);
        assert!(DefectKind::None.is_none());
        assert_eq!(DefectKind::None.nanowire_breakage(), 0.0);
        let sampled = DefectKind::sampled(0.1, 0.05, 7).unwrap();
        assert!(!sampled.is_none());
        assert_eq!(sampled.nanowire_breakage(), 0.1);
        assert_eq!(sampled.crosspoint_defect(), 0.05);
        assert_eq!(sampled.config().unwrap().seed(), 7);
    }

    #[test]
    fn kinds_render_for_report_rows() {
        assert_eq!(DefectKind::None.to_string(), "none");
        assert_eq!(
            DefectKind::sampled(0.02, 0.01, 2_009).unwrap().to_string(),
            "sampled(break=0.0200, stuck=0.0100, seed=2009)"
        );
    }
}
