//! # decoder-sim
//!
//! The simulation platform of Section 6 of the DAC 2009 MSPT-decoder paper:
//! one configuration object ([`SimConfig`]) holding the paper's platform
//! parameters, one orchestrator ([`SimulationPlatform`]) that takes a code
//! choice to fabrication complexity, variability, yield and bit area, the
//! parameter sweeps behind Figs. 5–8, and a Monte-Carlo cross-check of the
//! analytic yield model with pluggable disturbance distributions
//! ([`DisturbanceModel`]: Gaussian, heavy-tailed Laplace, correlated
//! inter-region) — the regimes the closed-form Gaussian integration cannot
//! reach.
//!
//! Both the Monte-Carlo validator and the sweeps run on a work-sharded
//! parallel [`ExecutionEngine`] whose results are bit-identical for any
//! thread count; the engine also shards crossbar defect-map generation
//! ([`ExecutionEngine::sample_defect_map`]) under the same per-chunk seeding
//! contract, and composes sampled defect maps into every report when a
//! configuration selects them ([`SimConfig::with_defects`] /
//! [`DefectKind`]) — the defect axis of the Fig. 7 extension. The serial
//! free functions are thin wrappers over a single-threaded engine.
//!
//! Repeated evaluations are served from the engine's sharded, bounded,
//! single-flight [`ReportCache`], which persists to a versioned snapshot —
//! compact binary through the std-only [`bincodec`] module by default, JSON
//! through [`codec`] for inspectability, with the format auto-detected on
//! load — the substrate of the `mspt-serve` concurrent serving layer.
//!
//! # Examples
//!
//! ```
//! use decoder_sim::{SimConfig, SimulationPlatform};
//! use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10)?;
//! let platform = SimulationPlatform::new(SimConfig::paper_defaults(code)?);
//! let report = platform.evaluate()?;
//! assert!(report.crossbar_yield > 0.3);
//! assert!(report.effective_bit_area < 400.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ablation;
pub mod bincodec;
mod cache;
pub mod codec;
mod config;
mod defect;
mod disturbance;
mod engine;
mod error;
mod evaluation;
mod monte_carlo;
mod platform;
mod report;
mod stage;
mod stats;
mod sweep;

pub use ablation::{
    alignment_sensitivity, half_cave_sensitivity, sigma_sensitivity, window_sensitivity,
    SensitivityPoint, SensitivitySweep,
};
pub use cache::{
    CacheConfig, CacheStats, ReportCache, SnapshotFormat, CACHE_CAPACITY_ENV, CACHE_FORMAT_ENV,
    CACHE_MAX_AGE_ENV, CACHE_PATH_ENV, CACHE_SCHEMA_VERSION, DEFAULT_CACHE_CAPACITY,
    DEFAULT_CACHE_SHARDS,
};
pub use codec::WireErrorKind;
pub use config::SimConfig;
pub use defect::{DefectConfig, DefectKind};
pub use disturbance::{
    CorrelatedDisturbance, DisturbanceKind, DisturbanceModel, GaussianDisturbance,
    LaplaceDisturbance,
};
pub use engine::{
    EngineConfig, ExecutionEngine, SamplingStats, DEFAULT_CHUNK_SIZE, ENGINE_THREADS_ENV,
};
pub use error::{Result, SimError};
pub use evaluation::{Evaluation, EvaluationBuilder, EvaluationOutcome};
pub use monte_carlo::{
    max_profile_difference, monte_carlo_addressability, monte_carlo_with_disturbance,
    MonteCarloConfig, MonteCarloOutcome, NormalSource, DEFAULT_MC_CONFIDENCE,
};
pub use stats::{inverse_normal_cdf, wilson_bounds, wilson_half_width, z_for_confidence};

// Re-exported so the sampling and defect-map determinism contracts can be
// referenced from one API: Monte-Carlo chunk `c` draws from
// `chunk_seed(seed, c)`; defect maps derive theirs through a domain tag so
// the two samplers stay decorrelated for a shared run seed.
pub use crossbar_array::chunk_seed;
pub use platform::{PlatformReport, SimulationPlatform};
pub use report::{Fig5Report, Fig6Report, Fig7Report, Fig8Report};
pub use stage::{ConfigField, Stage, StageCache, StageStats};
pub use sweep::{
    bit_area_sweep, complexity_sweep, defect_yield_sweep, full_sweep, variability_map, yield_sweep,
    BitAreaPoint, ComplexityPoint, DefectYieldPoint, VariabilityMap, YieldPoint,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimConfig>();
        assert_send_sync::<SimulationPlatform>();
        assert_send_sync::<PlatformReport>();
        assert_send_sync::<MonteCarloConfig>();
        assert_send_sync::<SimError>();
        assert_send_sync::<EngineConfig>();
        assert_send_sync::<ExecutionEngine>();
    }
}
