//! Std-only JSON codec for the types that cross process boundaries: the
//! serve layer's wire format and the report cache's warm-cache persistence.
//!
//! The vendored `serde` stand-in is marker-traits only (no data model, no
//! serializers — crates.io is unreachable in this build environment), so this
//! module hand-rolls the small amount of JSON the workspace needs:
//!
//! * a minimal [`JsonValue`] tree with a recursive-descent parser and a
//!   deterministic writer (object keys keep insertion order, so a value
//!   rendered twice is byte-identical);
//! * explicit encode/decode functions for [`SimConfig`], [`PlatformReport`],
//!   [`DisturbanceKind`] and [`DefectKind`] — every decoded configuration
//!   passes through the same validating constructors as a hand-built one.
//!
//! # Versioning discipline
//!
//! Fields added after a format shipped (the defect selection and the
//! composite report quantities) are encoded unconditionally but decoded
//! through [`JsonValue::get_opt`] with the pre-field behaviour as the
//! default, so snapshots and wire messages written before the field existed
//! keep loading; unknown *values* (an unrecognised kind tag) are still
//! rejected loudly.
//!
//! # Float round-tripping
//!
//! Finite `f64`s are written with Rust's shortest-roundtrip `Display`
//! formatting and parsed back with `str::parse::<f64>`, which restores the
//! **bit-identical** value. That is what lets a warm cache loaded from disk
//! serve byte-for-byte the same [`PlatformReport`]s the original process
//! computed. Non-finite floats are not representable in JSON; the encoder
//! maps them to `null` and the decoder rejects `null` where a number is
//! required, so corruption fails loudly instead of silently.

use nanowire_codes::{
    ArrangedHotBudget, BalanceBudget, CodeBudgets, CodeKind, CodeSpec, LogicLevel, SearchBudget,
};

use crossbar_array::LayoutRules;
use device_physics::{Nanometers, ThresholdModel, Volts};

use crate::config::SimConfig;
use crate::defect::{DefectConfig, DefectKind};
use crate::disturbance::DisturbanceKind;
use crate::error::{Result, SimError};
use crate::monte_carlo::MonteCarloConfig;
use crate::platform::PlatformReport;

/// A parsed JSON document: the minimal value tree the serve and persistence
/// codecs build on. Numbers keep their literal text so integers up to `u64`
/// and shortest-roundtrip floats survive unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal token.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order so rendering is deterministic.
    Object(Vec<(String, JsonValue)>),
}

fn err(reason: impl Into<String>) -> SimError {
    SimError::Persistence {
        reason: reason.into(),
    }
}

impl JsonValue {
    /// Encodes a finite `f64` as a number with shortest-roundtrip formatting
    /// (`null` for non-finite values, which JSON cannot represent).
    #[must_use]
    pub fn from_f64(value: f64) -> JsonValue {
        if value.is_finite() {
            JsonValue::Number(format!("{value}"))
        } else {
            JsonValue::Null
        }
    }

    /// Encodes a `u64` exactly.
    #[must_use]
    pub fn from_u64(value: u64) -> JsonValue {
        JsonValue::Number(value.to_string())
    }

    /// Encodes a `usize` exactly.
    #[must_use]
    pub fn from_usize(value: usize) -> JsonValue {
        JsonValue::Number(value.to_string())
    }

    /// The value as a finite `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not a number (in
    /// particular the `null` the encoder emits for non-finite floats).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            JsonValue::Number(literal) => literal
                .parse::<f64>()
                .ok()
                .filter(|value| value.is_finite())
                .ok_or_else(|| err(format!("number literal {literal:?} is not a finite f64"))),
            other => Err(err(format!("expected a number, got {}", other.kind_name()))),
        }
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not an unsigned
    /// integer literal.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            JsonValue::Number(literal) => literal
                .parse::<u64>()
                .map_err(|_| err(format!("number literal {literal:?} is not a u64"))),
            other => Err(err(format!("expected a number, got {}", other.kind_name()))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not an unsigned
    /// integer literal that fits a `usize`.
    pub fn as_usize(&self) -> Result<usize> {
        usize::try_from(self.as_u64()?).map_err(|_| err("integer does not fit a usize"))
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            JsonValue::String(text) => Ok(text),
            other => Err(err(format!("expected a string, got {}", other.kind_name()))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not an array.
    pub fn as_array(&self) -> Result<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(err(format!("expected an array, got {}", other.kind_name()))),
        }
    }

    /// Looks up a key of an object.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not an object or
    /// the key is absent.
    pub fn get(&self, key: &str) -> Result<&JsonValue> {
        self.get_opt(key)?
            .ok_or_else(|| err(format!("missing object key {key:?}")))
    }

    /// Looks up a key of an object, `None` when absent — the accessor
    /// behind fields added after a format shipped, so documents written
    /// before the field existed still decode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when the value is not an object.
    pub fn get_opt(&self, key: &str) -> Result<Option<&JsonValue>> {
        match self {
            JsonValue::Object(fields) => Ok(fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value)),
            other => Err(err(format!(
                "expected an object with key {key:?}, got {}",
                other.kind_name()
            ))),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a bool",
            JsonValue::Number(_) => "a number",
            JsonValue::String(_) => "a string",
            JsonValue::Array(_) => "an array",
            JsonValue::Object(_) => "an object",
        }
    }

    /// Renders the value as compact JSON. Deterministic: object keys are
    /// written in insertion order, numbers keep their literals.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(literal) => out.push_str(literal),
            JsonValue::String(text) => render_string(text, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (index, (key, value)) in fields.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on any syntax error, with the byte
    /// offset in the reason.
    pub fn parse(input: &str) -> Result<JsonValue> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            position: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(err(format!(
                "trailing characters after JSON document at byte {}",
                parser.position
            )));
        }
        Ok(value)
    }
}

fn render_string(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", ch as u32));
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
}

/// Maximum container-nesting depth the parser accepts. The recursive-descent
/// parser recurses once per nesting level, so without a bound a hostile wire
/// request of repeated `[`s would overflow the stack and abort the serving
/// process; every legitimate document in this workspace nests a handful of
/// levels.
const MAX_JSON_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
    depth: usize,
}

impl Parser<'_> {
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_JSON_DEPTH {
            return Err(err(format!(
                "JSON nesting exceeds the supported depth of {MAX_JSON_DEPTH}"
            )));
        }
        Ok(())
    }
    fn skip_whitespace(&mut self) {
        while let Some(&byte) = self.bytes.get(self.position) {
            if matches!(byte, b' ' | b'\t' | b'\n' | b'\r') {
                self.position += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.position += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected {:?} at byte {}",
                byte as char, self.position
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.position..].starts_with(literal.as_bytes()) {
            self.position += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') if self.consume_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.consume_literal("null") => Ok(JsonValue::Null),
            Some(byte) if byte == b'-' || byte.is_ascii_digit() => self.parse_number(),
            _ => Err(err(format!(
                "unexpected character at byte {}",
                self.position
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue> {
        self.descend()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b'}') => {
                    self.position += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => {
                    return Err(err(format!(
                        "expected ',' or '}}' at byte {}",
                        self.position
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b']') => {
                    self.position += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(err(format!(
                        "expected ',' or ']' at byte {}",
                        self.position
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut text = String::new();
        loop {
            let start = self.position;
            // Advance over the longest plain (unescaped, non-quote) run so
            // multi-byte UTF-8 passes through untouched.
            while let Some(&byte) = self.bytes.get(self.position) {
                if byte == b'"' || byte == b'\\' || byte < 0x20 {
                    break;
                }
                self.position += 1;
            }
            if self.position > start {
                let run = std::str::from_utf8(&self.bytes[start..self.position])
                    .map_err(|_| err("invalid UTF-8 inside string"))?;
                text.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.position += 1;
                    return Ok(text);
                }
                Some(b'\\') => {
                    self.position += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| err("unterminated escape sequence"))?;
                    self.position += 1;
                    match escape {
                        b'"' => text.push('"'),
                        b'\\' => text.push('\\'),
                        b'/' => text.push('/'),
                        b'b' => text.push('\u{0008}'),
                        b'f' => text.push('\u{000c}'),
                        b'n' => text.push('\n'),
                        b'r' => text.push('\r'),
                        b't' => text.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex_unit()?;
                            let code = match unit {
                                // High surrogate: JSON escapes non-BMP
                                // characters as a \uD8xx\uDCxx pair; combine
                                // the two units into one scalar value.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(err("unpaired high surrogate escape"));
                                    }
                                    self.position += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(err("unpaired high surrogate escape"));
                                    }
                                    self.position += 1;
                                    let low = self.parse_hex_unit()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(err(
                                            "high surrogate escape not followed by a low surrogate",
                                        ));
                                    }
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(err("unpaired low surrogate escape"));
                                }
                                code => code,
                            };
                            let ch = char::from_u32(code)
                                .ok_or_else(|| err("\\u escape is not a scalar value"))?;
                            text.push(ch);
                        }
                        other => {
                            return Err(err(format!("unknown escape '\\{}'", other as char)));
                        }
                    }
                }
                _ => return Err(err("unterminated string")),
            }
        }
    }

    /// Reads the four hex digits of one `\u` escape code unit (the `\u` is
    /// already consumed) and advances past them.
    fn parse_hex_unit(&mut self) -> Result<u32> {
        let end = self.position + 4;
        let digits = self
            .bytes
            .get(self.position..end)
            .and_then(|hex| std::str::from_utf8(hex).ok())
            .ok_or_else(|| err("truncated \\u escape"))?;
        let unit = u32::from_str_radix(digits, 16).map_err(|_| err("invalid \\u escape digits"))?;
        self.position = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.position;
        if self.peek() == Some(b'-') {
            self.position += 1;
        }
        while let Some(byte) = self.peek() {
            if byte.is_ascii_digit() || matches!(byte, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.position += 1;
            } else {
                break;
            }
        }
        let literal = std::str::from_utf8(&self.bytes[start..self.position])
            .expect("number tokens are ASCII");
        if literal.parse::<f64>().is_err() {
            return Err(err(format!("invalid number literal {literal:?}")));
        }
        Ok(JsonValue::Number(literal.to_string()))
    }
}

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

fn volts_field(value: Volts) -> JsonValue {
    JsonValue::from_f64(value.value())
}

fn volts_from(value: &JsonValue) -> Result<Volts> {
    Ok(Volts::new(value.as_f64()?))
}

fn code_kind_name(kind: CodeKind) -> &'static str {
    match kind {
        CodeKind::Tree => "tree",
        CodeKind::Gray => "gray",
        CodeKind::BalancedGray => "balanced_gray",
        CodeKind::Hot => "hot",
        CodeKind::ArrangedHot => "arranged_hot",
    }
}

fn code_kind_from(name: &str) -> Result<CodeKind> {
    CodeKind::ALL
        .into_iter()
        .find(|&kind| code_kind_name(kind) == name)
        .ok_or_else(|| err(format!("unknown code kind {name:?}")))
}

/// Encodes a [`CodeSpec`] as `{"kind","radix","length"}`.
#[must_use]
pub fn code_spec_to_json(code: CodeSpec) -> JsonValue {
    object(vec![
        (
            "kind",
            JsonValue::String(code_kind_name(code.kind()).into()),
        ),
        (
            "radix",
            JsonValue::from_u64(u64::from(code.radix().radix())),
        ),
        ("length", JsonValue::from_usize(code.code_length())),
    ])
}

/// Decodes a [`CodeSpec`], re-validating length against the family.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON, or propagates the
/// code layer's validation errors.
pub fn code_spec_from_json(value: &JsonValue) -> Result<CodeSpec> {
    let kind = code_kind_from(value.get("kind")?.as_str()?)?;
    let radix =
        u8::try_from(value.get("radix")?.as_u64()?).map_err(|_| err("radix does not fit a u8"))?;
    let radix = LogicLevel::new(radix)?;
    Ok(CodeSpec::new(
        kind,
        radix,
        value.get("length")?.as_usize()?,
    )?)
}

/// Encodes a [`DisturbanceKind`] as a tagged object (`{"kind":"gaussian"}`,
/// `{"kind":"correlated","shared_fraction":0.5}`, ...).
#[must_use]
pub fn disturbance_to_json(kind: DisturbanceKind) -> JsonValue {
    match kind {
        DisturbanceKind::Gaussian => object(vec![("kind", JsonValue::String("gaussian".into()))]),
        DisturbanceKind::Laplace => object(vec![("kind", JsonValue::String("laplace".into()))]),
        DisturbanceKind::Correlated { shared_fraction } => object(vec![
            ("kind", JsonValue::String("correlated".into())),
            ("shared_fraction", JsonValue::from_f64(shared_fraction)),
        ]),
    }
}

/// Decodes a [`DisturbanceKind`].
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON or an unknown kind.
pub fn disturbance_from_json(value: &JsonValue) -> Result<DisturbanceKind> {
    match value.get("kind")?.as_str()? {
        "gaussian" => Ok(DisturbanceKind::Gaussian),
        "laplace" => Ok(DisturbanceKind::Laplace),
        "correlated" => Ok(DisturbanceKind::Correlated {
            shared_fraction: value.get("shared_fraction")?.as_f64()?,
        }),
        other => Err(err(format!("unknown disturbance kind {other:?}"))),
    }
}

/// Encodes a [`MonteCarloConfig`] as an object carrying the fixed-mode
/// fields plus the adaptive knobs (`target_half_width` / `max_samples`
/// render as `null` when unset).
#[must_use]
pub fn monte_carlo_to_json(config: MonteCarloConfig) -> JsonValue {
    object(vec![
        ("samples", JsonValue::from_usize(config.samples)),
        ("seed", JsonValue::from_u64(config.seed)),
        (
            "target_half_width",
            config
                .target_half_width
                .map_or(JsonValue::Null, JsonValue::from_f64),
        ),
        ("confidence", JsonValue::from_f64(config.confidence)),
        (
            "max_samples",
            config
                .max_samples
                .map_or(JsonValue::Null, JsonValue::from_usize),
        ),
    ])
}

/// Decodes a [`MonteCarloConfig`]. The adaptive knobs are optional *keys*
/// as well as nullable values: documents written before adaptive stopping
/// existed (bare `{"samples":…,"seed":…}`) decode to the fixed behaviour.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON.
pub fn monte_carlo_from_json(value: &JsonValue) -> Result<MonteCarloConfig> {
    let mut config = MonteCarloConfig::fixed(
        value.get("samples")?.as_usize()?,
        value.get("seed")?.as_u64()?,
    );
    if let Some(target) = value.get_opt("target_half_width")? {
        if !matches!(target, JsonValue::Null) {
            config = config.with_target_half_width(target.as_f64()?);
        }
    }
    if let Some(confidence) = value.get_opt("confidence")? {
        if !matches!(confidence, JsonValue::Null) {
            config = config.with_confidence(confidence.as_f64()?);
        }
    }
    if let Some(max) = value.get_opt("max_samples")? {
        if !matches!(max, JsonValue::Null) {
            config = config.with_max_samples(max.as_usize()?);
        }
    }
    Ok(config)
}

/// Encodes a [`DefectKind`] as a tagged object (`{"kind":"none"}` or
/// `{"kind":"sampled","nanowire_breakage":…,"crosspoint_defect":…,"seed":…}`).
#[must_use]
pub fn defect_to_json(kind: DefectKind) -> JsonValue {
    match kind {
        DefectKind::None => object(vec![("kind", JsonValue::String("none".into()))]),
        DefectKind::Sampled(config) => object(vec![
            ("kind", JsonValue::String("sampled".into())),
            (
                "nanowire_breakage",
                JsonValue::from_f64(config.nanowire_breakage()),
            ),
            (
                "crosspoint_defect",
                JsonValue::from_f64(config.crosspoint_defect()),
            ),
            ("seed", JsonValue::from_u64(config.seed())),
        ]),
    }
}

/// Decodes a [`DefectKind`], re-validating the rates through
/// [`DefectConfig::new`].
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON or an unknown kind,
/// or propagates the defect layer's rate-validation errors.
pub fn defect_from_json(value: &JsonValue) -> Result<DefectKind> {
    match value.get("kind")?.as_str()? {
        "none" => Ok(DefectKind::None),
        "sampled" => Ok(DefectKind::Sampled(DefectConfig::new(
            value.get("nanowire_breakage")?.as_f64()?,
            value.get("crosspoint_defect")?.as_f64()?,
            value.get("seed")?.as_u64()?,
        )?)),
        other => Err(err(format!("unknown defect kind {other:?}"))),
    }
}

/// Encodes a full [`SimConfig`] — every field, including the disturbance
/// kind, the defect selection and the Monte-Carlo sampling knobs, so two
/// configurations differing only in any of them never serialize (or
/// cache-key) identically.
#[must_use]
pub fn config_to_json(config: &SimConfig) -> JsonValue {
    let layout = config.layout();
    let threshold = config.threshold_model();
    let budgets = config.code_budgets();
    let (supply_low, supply_high) = config.supply_range();
    object(vec![
        ("code", code_spec_to_json(config.code())),
        (
            "nanowires_per_half_cave",
            JsonValue::from_usize(config.nanowires_per_half_cave()),
        ),
        ("raw_bits", JsonValue::from_u64(config.raw_bits())),
        (
            "layout",
            object(vec![
                (
                    "litho_pitch_nm",
                    JsonValue::from_f64(layout.litho_pitch().value()),
                ),
                (
                    "nanowire_pitch_nm",
                    JsonValue::from_f64(layout.nanowire_pitch().value()),
                ),
                (
                    "min_contact_width_factor",
                    JsonValue::from_f64(layout.min_contact_width_factor()),
                ),
                (
                    "contact_alignment_tolerance_nm",
                    JsonValue::from_f64(layout.contact_alignment_tolerance().value()),
                ),
            ]),
        ),
        (
            "threshold_model",
            object(vec![
                (
                    "oxide_thickness_nm",
                    JsonValue::from_f64(threshold.oxide_thickness().value()),
                ),
                (
                    "flat_band_voltage_v",
                    volts_field(threshold.flat_band_voltage()),
                ),
            ]),
        ),
        ("sigma_per_dose_v", volts_field(config.sigma_per_dose())),
        (
            "supply_range_v",
            JsonValue::Array(vec![volts_field(supply_low), volts_field(supply_high)]),
        ),
        (
            "window_override_v",
            config
                .window_override()
                .map_or(JsonValue::Null, volts_field),
        ),
        (
            "code_budgets",
            object(vec![
                (
                    "balance",
                    object(vec![
                        (
                            "max_nodes_per_limit",
                            JsonValue::from_u64(budgets.balance.max_nodes_per_limit),
                        ),
                        (
                            "max_limit_slack",
                            JsonValue::from_usize(budgets.balance.max_limit_slack),
                        ),
                    ]),
                ),
                (
                    "arranged_hot",
                    object(vec![
                        (
                            "max_nodes",
                            JsonValue::from_u64(budgets.arranged_hot.max_nodes),
                        ),
                        (
                            "fallback",
                            object(vec![
                                (
                                    "max_nodes",
                                    JsonValue::from_u64(budgets.arranged_hot.fallback.max_nodes),
                                ),
                                (
                                    "max_two_opt_sweeps",
                                    JsonValue::from_u64(u64::from(
                                        budgets.arranged_hot.fallback.max_two_opt_sweeps,
                                    )),
                                ),
                            ]),
                        ),
                    ]),
                ),
            ]),
        ),
        ("disturbance", disturbance_to_json(config.disturbance())),
        ("defects", defect_to_json(config.defects())),
        ("monte_carlo", monte_carlo_to_json(config.monte_carlo())),
    ])
}

/// Decodes a [`SimConfig`], passing every field through the same validating
/// constructors a hand-built configuration uses.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON, or propagates the
/// validation errors of the reconstructed layers.
pub fn config_from_json(value: &JsonValue) -> Result<SimConfig> {
    let code = code_spec_from_json(value.get("code")?)?;
    let layout_value = value.get("layout")?;
    let layout = LayoutRules::new(
        Nanometers::new(layout_value.get("litho_pitch_nm")?.as_f64()?),
        Nanometers::new(layout_value.get("nanowire_pitch_nm")?.as_f64()?),
        layout_value.get("min_contact_width_factor")?.as_f64()?,
        Nanometers::new(
            layout_value
                .get("contact_alignment_tolerance_nm")?
                .as_f64()?,
        ),
    )?;
    let threshold_value = value.get("threshold_model")?;
    let threshold = ThresholdModel::new(
        Nanometers::new(threshold_value.get("oxide_thickness_nm")?.as_f64()?),
        volts_from(threshold_value.get("flat_band_voltage_v")?)?,
    )?;
    let supply = value.get("supply_range_v")?.as_array()?;
    if supply.len() != 2 {
        return Err(err("supply_range_v must have exactly two entries"));
    }
    let budgets_value = value.get("code_budgets")?;
    let balance_value = budgets_value.get("balance")?;
    let arranged_value = budgets_value.get("arranged_hot")?;
    let fallback_value = arranged_value.get("fallback")?;
    let budgets = CodeBudgets {
        balance: BalanceBudget {
            max_nodes_per_limit: balance_value.get("max_nodes_per_limit")?.as_u64()?,
            max_limit_slack: balance_value.get("max_limit_slack")?.as_usize()?,
        },
        arranged_hot: ArrangedHotBudget {
            max_nodes: arranged_value.get("max_nodes")?.as_u64()?,
            fallback: SearchBudget {
                max_nodes: fallback_value.get("max_nodes")?.as_u64()?,
                max_two_opt_sweeps: u32::try_from(
                    fallback_value.get("max_two_opt_sweeps")?.as_u64()?,
                )
                .map_err(|_| err("max_two_opt_sweeps does not fit a u32"))?,
            },
        },
    };
    let mut config = SimConfig::new(
        code,
        value.get("nanowires_per_half_cave")?.as_usize()?,
        value.get("raw_bits")?.as_u64()?,
        layout,
        threshold,
        volts_from(value.get("sigma_per_dose_v")?)?,
        (volts_from(&supply[0])?, volts_from(&supply[1])?),
    )?
    .with_code_budgets(budgets)
    .with_disturbance(disturbance_from_json(value.get("disturbance")?)?);
    // Absent in documents written before the defect dimension existed; the
    // default (defect-free) is exactly the pre-field behaviour.
    if let Some(defects) = value.get_opt("defects")? {
        config = config.with_defects(defect_from_json(defects)?);
    }
    // Absent in documents written before the sampling knobs moved into the
    // configuration; the default is the historical fixed-sample behaviour.
    if let Some(monte_carlo) = value.get_opt("monte_carlo")? {
        config = config.with_monte_carlo(monte_carlo_from_json(monte_carlo)?);
    }
    if !matches!(value.get("window_override_v")?, JsonValue::Null) {
        config = config.with_window(volts_from(value.get("window_override_v")?)?);
    }
    Ok(config)
}

/// Encodes a [`PlatformReport`].
#[must_use]
pub fn report_to_json(report: &PlatformReport) -> JsonValue {
    object(vec![
        ("code", code_spec_to_json(report.code)),
        (
            "nanowires_per_half_cave",
            JsonValue::from_usize(report.nanowires_per_half_cave),
        ),
        (
            "fabrication_steps",
            JsonValue::from_usize(report.fabrication_steps),
        ),
        (
            "mean_variability",
            JsonValue::from_f64(report.mean_variability),
        ),
        (
            "max_normalized_sigma",
            JsonValue::from_f64(report.max_normalized_sigma),
        ),
        ("cave_yield", JsonValue::from_f64(report.cave_yield)),
        ("crossbar_yield", JsonValue::from_f64(report.crossbar_yield)),
        ("effective_bits", JsonValue::from_f64(report.effective_bits)),
        ("raw_bit_area", JsonValue::from_f64(report.raw_bit_area)),
        (
            "effective_bit_area",
            JsonValue::from_f64(report.effective_bit_area),
        ),
        (
            "contact_groups",
            JsonValue::from_usize(report.contact_groups),
        ),
        ("defects", defect_to_json(report.defects)),
        (
            "defect_survival",
            JsonValue::from_f64(report.defect_survival),
        ),
        (
            "composite_yield",
            JsonValue::from_f64(report.composite_yield),
        ),
        (
            "composite_effective_bits",
            JsonValue::from_f64(report.composite_effective_bits),
        ),
    ])
}

/// Decodes a [`PlatformReport`] bit-identically (floats round-trip exactly).
///
/// Reports written before the defect dimension existed decode with the
/// defect-free defaults — [`DefectKind::None`], survival `1`, composite
/// quantities equal to the decoder quantities — which is exactly what a
/// fresh evaluation of their (necessarily defect-free) configuration
/// produces.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON.
pub fn report_from_json(value: &JsonValue) -> Result<PlatformReport> {
    let crossbar_yield = value.get("crossbar_yield")?.as_f64()?;
    let effective_bits = value.get("effective_bits")?.as_f64()?;
    let defects = match value.get_opt("defects")? {
        Some(kind) => defect_from_json(kind)?,
        None => DefectKind::None,
    };
    let defect_survival = match value.get_opt("defect_survival")? {
        Some(survival) => survival.as_f64()?,
        None => 1.0,
    };
    let composite_yield = match value.get_opt("composite_yield")? {
        Some(composite) => composite.as_f64()?,
        None => crossbar_yield,
    };
    let composite_effective_bits = match value.get_opt("composite_effective_bits")? {
        Some(bits) => bits.as_f64()?,
        None => effective_bits,
    };
    Ok(PlatformReport {
        code: code_spec_from_json(value.get("code")?)?,
        nanowires_per_half_cave: value.get("nanowires_per_half_cave")?.as_usize()?,
        fabrication_steps: value.get("fabrication_steps")?.as_usize()?,
        mean_variability: value.get("mean_variability")?.as_f64()?,
        max_normalized_sigma: value.get("max_normalized_sigma")?.as_f64()?,
        cave_yield: value.get("cave_yield")?.as_f64()?,
        crossbar_yield,
        effective_bits,
        raw_bit_area: value.get("raw_bit_area")?.as_f64()?,
        effective_bit_area: value.get("effective_bit_area")?.as_f64()?,
        contact_groups: value.get("contact_groups")?.as_usize()?,
        defects,
        defect_survival,
        composite_yield,
        composite_effective_bits,
    })
}

/// The class of a wire-level failure, shared by every transport front end
/// (in-process JSON and framed TCP alike) so clients can react to the
/// *category* — retry an `overloaded`, fix a `bad_request`, report an
/// `internal` — without parsing free-form reason strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireErrorKind {
    /// The request never reached evaluation: malformed JSON, a mismatched
    /// schema version, or a configuration that failed validation.
    BadRequest,
    /// The server shed the request because its bounded accept/dispatch
    /// queue was full. The request was *not* evaluated; retrying later is
    /// safe and expected.
    Overloaded,
    /// The request was well-formed but evaluation failed on the server.
    Internal,
}

impl WireErrorKind {
    /// Every kind, in wire-tag order.
    pub const ALL: [WireErrorKind; 3] = [
        WireErrorKind::BadRequest,
        WireErrorKind::Overloaded,
        WireErrorKind::Internal,
    ];

    /// The stable wire tag (`"bad_request"` / `"overloaded"` /
    /// `"internal"`).
    #[must_use]
    pub fn as_wire_str(self) -> &'static str {
        match self {
            WireErrorKind::BadRequest => "bad_request",
            WireErrorKind::Overloaded => "overloaded",
            WireErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire tag back into a kind.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on an unknown tag.
    pub fn from_wire_str(tag: &str) -> Result<WireErrorKind> {
        WireErrorKind::ALL
            .into_iter()
            .find(|kind| kind.as_wire_str() == tag)
            .ok_or_else(|| err(format!("unknown wire error kind {tag:?}")))
    }
}

/// Encodes a [`WireErrorKind`] as its JSON wire tag.
#[must_use]
pub fn wire_error_kind_to_json(kind: WireErrorKind) -> JsonValue {
    JsonValue::String(kind.as_wire_str().to_string())
}

/// Decodes a [`WireErrorKind`] from its JSON wire tag.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed JSON or an unknown tag.
pub fn wire_error_kind_from_json(value: &JsonValue) -> Result<WireErrorKind> {
    WireErrorKind::from_wire_str(value.as_str()?)
}

/// The canonical serialized form of a configuration: the deterministic
/// rendering of [`config_to_json`]. Equal configurations produce identical
/// strings; configurations differing in **any** field — including the
/// disturbance kind and the defect selection — produce different strings.
/// The report cache fingerprints this string, which is what guarantees a
/// Gaussian and a Laplace run (or a defect-free and a defective run) with
/// the same platform parameters never alias.
#[must_use]
pub fn canonical_config_string(config: &SimConfig) -> String {
    config_to_json(config).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimulationPlatform;

    fn base_config() -> SimConfig {
        let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    #[test]
    fn json_value_parses_and_renders_round_trip() {
        let text = r#"{"a":[1,2.5,-3e2],"b":"q\"\\\né","c":null,"d":true,"e":false}"#;
        let value = JsonValue::parse(text).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(value.get("b").unwrap().as_str().unwrap(), "q\"\\\né");
        assert_eq!(value.get("d").unwrap(), &JsonValue::Bool(true));
        // Render → parse is the identity.
        assert_eq!(JsonValue::parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn wire_error_kinds_round_trip_and_reject_unknown_tags() {
        for kind in WireErrorKind::ALL {
            let encoded = wire_error_kind_to_json(kind);
            assert_eq!(wire_error_kind_from_json(&encoded).unwrap(), kind);
        }
        assert_eq!(
            WireErrorKind::from_wire_str("overloaded").unwrap(),
            WireErrorKind::Overloaded
        );
        assert!(WireErrorKind::from_wire_str("toasted").is_err());
        assert!(wire_error_kind_from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "1e",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode_and_lone_surrogates_fail() {
        // Standards-compliant encoders escape non-BMP characters as a
        // surrogate pair; U+1F600 (😀) is the pair D83D + DE00.
        let value = JsonValue::parse(r#""\ud83d\ude00!""#).unwrap();
        assert_eq!(value.as_str().unwrap(), "\u{1F600}!");
        // Unescaped non-BMP UTF-8 passes through too.
        assert_eq!(
            JsonValue::parse("\"\u{1F600}\"").unwrap().as_str().unwrap(),
            "\u{1F600}"
        );
        // Lone or malformed halves are rejected, not mangled.
        for bad in [
            r#""\ud83d""#,
            r#""\ud83d\n""#,
            r#""\ud83dx""#,
            r#""\ud83dA""#,
            r#""\ude00""#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hostile_nesting_depth_is_rejected_not_a_stack_overflow() {
        // A remote client can send arbitrarily nested JSON; the parser must
        // reject it with an error instead of recursing off the stack.
        let bomb = "[".repeat(1_000_000);
        let error = JsonValue::parse(&bomb).unwrap_err();
        assert!(error.to_string().contains("depth"));
        let object_bomb = "{\"k\":".repeat(500_000);
        assert!(JsonValue::parse(&object_bomb).is_err());
        // Reasonable nesting still parses.
        let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&fine).is_ok());
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for value in [0.0, -0.0, 1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300] {
            let encoded = JsonValue::from_f64(value);
            let decoded = encoded.as_f64().unwrap();
            assert_eq!(decoded.to_bits(), value.to_bits(), "value {value}");
        }
        // Non-finite floats encode to null and fail loudly on decode.
        assert_eq!(JsonValue::from_f64(f64::NAN), JsonValue::Null);
        assert!(JsonValue::from_f64(f64::INFINITY).as_f64().is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = base_config();
        let decoded = config_from_json(&config_to_json(&config)).unwrap();
        assert_eq!(decoded, config);

        // Every override survives, including a window override, a
        // non-default disturbance, a defect selection and adaptive
        // Monte-Carlo sampling knobs.
        let tuned = base_config()
            .with_window(Volts::new(0.21))
            .with_disturbance(DisturbanceKind::Correlated {
                shared_fraction: 0.25,
            })
            .with_defects(DefectKind::sampled(0.02, 0.01, 77).unwrap())
            .with_monte_carlo(
                MonteCarloConfig::fixed(4_096, 17)
                    .with_target_half_width(0.05)
                    .with_confidence(0.99)
                    .with_max_samples(65_536),
            );
        let decoded = config_from_json(&config_to_json(&tuned)).unwrap();
        assert_eq!(decoded, tuned);
    }

    #[test]
    fn monte_carlo_documents_without_adaptive_keys_decode_to_fixed_mode() {
        // The wire shape of a fixed-sample request written before adaptive
        // stopping existed: bare samples + seed, no adaptive keys at all.
        let legacy = JsonValue::parse(r#"{"samples":500,"seed":42}"#).unwrap();
        let decoded = monte_carlo_from_json(&legacy).unwrap();
        assert_eq!(decoded, MonteCarloConfig::fixed(500, 42));
        assert!(!decoded.is_adaptive());
        // Explicit nulls mean the same thing as absent keys.
        let nulled = JsonValue::parse(
            r#"{"samples":500,"seed":42,"target_half_width":null,"confidence":0.95,"max_samples":null}"#,
        )
        .unwrap();
        assert_eq!(monte_carlo_from_json(&nulled).unwrap(), decoded);
    }

    #[test]
    fn canonical_strings_separate_monte_carlo_knobs() {
        let fixed = base_config();
        let adaptive = base_config()
            .with_monte_carlo(MonteCarloConfig::default().with_target_half_width(0.05));
        assert_ne!(
            canonical_config_string(&fixed),
            canonical_config_string(&adaptive)
        );
    }

    #[test]
    fn report_round_trips_bit_identically() {
        let report = SimulationPlatform::new(base_config()).evaluate().unwrap();
        let decoded = report_from_json(&report_to_json(&report)).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(
            decoded.crossbar_yield.to_bits(),
            report.crossbar_yield.to_bits()
        );
    }

    #[test]
    fn defect_kinds_round_trip_and_reject_bad_rates() {
        for kind in [
            DefectKind::None,
            DefectKind::sampled(0.0, 0.0, 0).unwrap(),
            DefectKind::sampled(0.05, 0.02, u64::MAX).unwrap(),
        ] {
            assert_eq!(defect_from_json(&defect_to_json(kind)).unwrap(), kind);
        }
        // Out-of-range rates in a hostile document are rejected by the same
        // validating constructor a hand-built configuration uses.
        let hostile = JsonValue::parse(
            r#"{"kind":"sampled","nanowire_breakage":1.5,"crosspoint_defect":0.0,"seed":1}"#,
        )
        .unwrap();
        assert!(defect_from_json(&hostile).is_err());
        let unknown = JsonValue::parse(r#"{"kind":"clustered"}"#).unwrap();
        assert!(defect_from_json(&unknown).is_err());
    }

    #[test]
    fn canonical_strings_separate_defect_kinds() {
        let clean = base_config();
        let defective = base_config().with_defects(DefectKind::sampled(0.02, 0.01, 1).unwrap());
        assert_ne!(
            canonical_config_string(&clean),
            canonical_config_string(&defective)
        );
        // Same rates, different seed: still distinct identities.
        let reseeded = base_config().with_defects(DefectKind::sampled(0.02, 0.01, 2).unwrap());
        assert_ne!(
            canonical_config_string(&defective),
            canonical_config_string(&reseeded)
        );
    }

    #[test]
    fn canonical_strings_separate_disturbance_kinds() {
        let gaussian = base_config();
        let laplace = base_config().with_disturbance(DisturbanceKind::Laplace);
        assert_ne!(
            canonical_config_string(&gaussian),
            canonical_config_string(&laplace)
        );
        // And equal configurations render identically (determinism).
        assert_eq!(
            canonical_config_string(&gaussian),
            canonical_config_string(&base_config())
        );
    }

    #[test]
    fn unknown_enum_tags_are_rejected() {
        let mut value = config_to_json(&base_config());
        if let JsonValue::Object(fields) = &mut value {
            for (key, field) in fields.iter_mut() {
                if key == "disturbance" {
                    *field = JsonValue::Object(vec![(
                        "kind".to_string(),
                        JsonValue::String("cauchy".to_string()),
                    )]);
                }
            }
        }
        assert!(config_from_json(&value).is_err());
        assert!(code_kind_from("mystery").is_err());
    }
}
