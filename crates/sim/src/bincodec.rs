//! Versioned, fixed-layout little-endian binary codec for the types that
//! cross process boundaries — the compact sibling of the JSON [`crate::codec`].
//!
//! The JSON codec carries full float text on every wire round trip and in
//! every warm-cache snapshot. This module encodes the same types —
//! [`SimConfig`], [`PlatformReport`], [`DisturbanceKind`], [`DefectKind`],
//! [`WireErrorKind`] — in a binary layout that is a fraction of the size and
//! needs no text parsing, while keeping the JSON codec's two contracts:
//! **bit-exact float round trips** (via `f64::to_le_bytes`, which is exact by
//! construction rather than by shortest-roundtrip formatting) and **loud
//! failure on malformed input** (every decode path returns a typed
//! [`SimError::Persistence`]; nothing panics on attacker-controlled bytes).
//!
//! # Document layout
//!
//! Every top-level document starts with a 7-byte envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  B1 4D 53 50  ("\xB1MSP" — 0xB1 is not a valid UTF-8
//!               lead byte, so a binary document can never be confused with
//!               JSON text, whose first byte is `{` or whitespace)
//! 4       2     schema version, u16 LE (this build writes and accepts 1)
//! 6       1     document kind (DOC_CONFIG, DOC_REPORT, …)
//! 7       …     payload: a stream of tag-length-value sections
//! ```
//!
//! Each section is `tag:u8  length:u32 LE  body:[u8; length]`. Section
//! bodies are fixed little-endian layouts (`u64`/`u32`/`u8` integers,
//! `f64::to_le_bytes` floats, `u32`-length-prefixed UTF-8 strings).
//!
//! # Versioning discipline
//!
//! * A document whose schema version differs from [`BIN_SCHEMA_VERSION`] is
//!   rejected loudly — a future writer's layout cannot be guessed.
//! * Within the supported version, **unknown section tags are skipped**:
//!   a version-1 reader stays forward-compatible with payloads to which a
//!   later writer appended new sections, exactly as the JSON decoder
//!   ignores object keys it does not read.
//! * Every section this version writes is **required** when decoding
//!   (except genuinely optional values such as the window override): the
//!   binary format is new in version 1, so unlike the JSON codec it has no
//!   pre-field legacy documents to stay lenient for. A truncated document
//!   therefore always fails — there is no prefix of a valid document that
//!   decodes successfully.
//! * Non-finite floats are rejected on decode. JSON cannot represent them
//!   (the JSON encoder maps them to `null`, which its decoder rejects), so
//!   accepting them here would let the two codecs disagree.

use nanowire_codes::{
    ArrangedHotBudget, BalanceBudget, CodeBudgets, CodeKind, CodeSpec, LogicLevel, SearchBudget,
};

use crossbar_array::LayoutRules;
use device_physics::{Nanometers, ThresholdModel, Volts};

use crate::codec::WireErrorKind;
use crate::config::SimConfig;
use crate::defect::{DefectConfig, DefectKind};
use crate::disturbance::DisturbanceKind;
use crate::error::{Result, SimError};
use crate::monte_carlo::MonteCarloConfig;
use crate::platform::PlatformReport;

/// The four magic bytes that open every binary document. The first byte,
/// `0xB1`, is not a valid UTF-8 lead byte, so the first byte of a framed
/// payload unambiguously discriminates binary documents from JSON text.
pub const BIN_MAGIC: [u8; 4] = [0xB1, b'M', b'S', b'P'];

/// The schema version this build writes and accepts. Any other version is
/// rejected with a typed error.
pub const BIN_SCHEMA_VERSION: u16 = 1;

/// Document kind: a [`SimConfig`].
pub const DOC_CONFIG: u8 = 1;
/// Document kind: a [`PlatformReport`].
pub const DOC_REPORT: u8 = 2;
/// Document kind: a serve-layer report request (encoded by `mspt-serve`).
pub const DOC_REQUEST: u8 = 3;
/// Document kind: a serve-layer reply (encoded by `mspt-serve`).
pub const DOC_REPLY: u8 = 4;
/// Document kind: a report-cache snapshot (encoded by the cache layer).
pub const DOC_SNAPSHOT: u8 = 5;

/// Whether a payload's first byte marks it as a binary document rather than
/// JSON text. This is the codec negotiation used by the framed transport and
/// the snapshot loader: JSON documents start with `{` (or whitespace), which
/// can never equal `BIN_MAGIC[0]`.
#[must_use]
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.first() == Some(&BIN_MAGIC[0])
}

fn err(reason: impl Into<String>) -> SimError {
    SimError::Persistence {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only little-endian byte writer for section bodies and document
/// payloads. Infallible: encoding a valid in-memory value cannot fail.
#[derive(Debug, Default)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (lossless on every supported target).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends an `f64` as its 8 IEEE-754 bytes, little-endian — the
    /// bit-exact round trip the JSON codec achieves with shortest-roundtrip
    /// formatting.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends raw bytes with no framing — the caller owns the layout.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string as a `u32` byte length followed by the bytes.
    pub fn put_str(&mut self, value: &str) {
        self.put_u32(u32::try_from(value.len()).unwrap_or(u32::MAX));
        self.buf
            .extend_from_slice(&value.as_bytes()[..value.len().min(u32::MAX as usize)]);
    }

    /// Appends a tag-length-value section.
    pub fn section(&mut self, tag: u8, body: &[u8]) {
        self.put_u8(tag);
        self.put_u32(u32::try_from(body.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(body);
    }

    /// Consumes the writer, returning the accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Wraps a payload in the 7-byte document envelope (magic, schema version,
/// document kind).
#[must_use]
pub fn document(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(7 + payload.len());
    buf.extend_from_slice(&BIN_MAGIC);
    buf.extend_from_slice(&BIN_SCHEMA_VERSION.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    buf
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian byte reader. Every `take_*` returns a
/// typed [`SimError::Persistence`] when the buffer is too short — truncation
/// can never panic or wrap around.
#[derive(Debug)]
pub struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// How many bytes remain unread.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `count` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when fewer than `count` bytes
    /// remain.
    pub fn take_bytes(&mut self, count: usize) -> Result<&'a [u8]> {
        if count > self.remaining() {
            return Err(err(format!(
                "truncated binary document: needed {count} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + count];
        self.pos += count;
        Ok(slice)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation.
    pub fn take_u16(&mut self) -> Result<u16> {
        let bytes = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation.
    pub fn take_u32(&mut self) -> Result<u32> {
        let bytes = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation.
    pub fn take_u64(&mut self) -> Result<u64> {
        let bytes = self.take_bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    /// Takes a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation or when the value
    /// does not fit this target's `usize`.
    pub fn take_usize(&mut self) -> Result<usize> {
        let value = self.take_u64()?;
        usize::try_from(value).map_err(|_| err(format!("value {value} does not fit a usize")))
    }

    /// Takes an IEEE-754 `f64`, rejecting non-finite values — JSON cannot
    /// represent them, so accepting them here would let the codecs diverge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation or a non-finite
    /// value.
    pub fn take_f64(&mut self) -> Result<f64> {
        let bytes = self.take_bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        let value = f64::from_le_bytes(raw);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(err("non-finite float in binary document"))
        }
    }

    /// Takes a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on truncation or invalid UTF-8.
    pub fn take_str(&mut self) -> Result<&'a str> {
        let length = self.take_u32()? as usize;
        let bytes = self.take_bytes(length)?;
        std::str::from_utf8(bytes).map_err(|_| err("binary document string is not valid UTF-8"))
    }

    /// Reads the next tag-length-value section, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on a truncated section header or a
    /// section length that overruns the remaining buffer (an oversized
    /// length can therefore never cause an out-of-bounds read or an
    /// allocation bomb — the body is a borrowed sub-slice).
    pub fn next_section(&mut self) -> Result<Option<(u8, &'a [u8])>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        let tag = self.take_u8()?;
        let length = self.take_u32()? as usize;
        if length > self.remaining() {
            return Err(err(format!(
                "section 0x{tag:02x} claims {length} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(Some((tag, self.take_bytes(length)?)))
    }

    /// Asserts the whole buffer was consumed — trailing garbage after a
    /// fixed-layout body is a format violation, not padding.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] when unread bytes remain.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(err(format!(
                "{} trailing bytes after binary value",
                self.remaining()
            )))
        }
    }
}

/// Validates a document envelope and returns the payload after it.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] when the buffer is shorter than the
/// envelope, the magic bytes are wrong, the schema version is not
/// [`BIN_SCHEMA_VERSION`] (a future writer's layout cannot be guessed), or
/// the document kind differs from `kind`.
pub fn document_payload(bytes: &[u8], kind: u8) -> Result<&[u8]> {
    let mut reader = BinReader::new(bytes);
    let magic = reader.take_bytes(4).map_err(|_| {
        err(format!(
            "binary document header truncated ({} bytes, envelope needs 7)",
            bytes.len()
        ))
    })?;
    if magic != BIN_MAGIC {
        return Err(err(format!(
            "bad magic {magic:02x?}; not a binary document"
        )));
    }
    let version = reader.take_u16()?;
    if version != BIN_SCHEMA_VERSION {
        return Err(err(format!(
            "unsupported binary schema version {version} (this build understands {BIN_SCHEMA_VERSION})"
        )));
    }
    let found = reader.take_u8()?;
    if found != kind {
        return Err(err(format!("expected document kind {kind}, found {found}")));
    }
    Ok(&bytes[7..])
}

// ---------------------------------------------------------------------------
// Leaf encodings (section bodies, no envelope)
// ---------------------------------------------------------------------------

fn code_kind_tag(kind: CodeKind) -> u8 {
    match kind {
        CodeKind::Tree => 0,
        CodeKind::Gray => 1,
        CodeKind::BalancedGray => 2,
        CodeKind::Hot => 3,
        CodeKind::ArrangedHot => 4,
    }
}

fn code_kind_from_tag(tag: u8) -> Result<CodeKind> {
    CodeKind::ALL
        .into_iter()
        .find(|&kind| code_kind_tag(kind) == tag)
        .ok_or_else(|| err(format!("unknown code kind tag {tag}")))
}

/// Encodes a [`CodeSpec`] body: `kind:u8  radix:u8  length:u64 LE`.
#[must_use]
pub fn code_spec_to_bin(code: CodeSpec) -> Vec<u8> {
    let mut writer = BinWriter::new();
    writer.put_u8(code_kind_tag(code.kind()));
    writer.put_u8(code.radix().radix());
    writer.put_usize(code.code_length());
    writer.into_bytes()
}

/// Decodes a [`CodeSpec`] body, re-validating length against the family.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed bytes, or propagates the
/// code layer's validation errors.
pub fn code_spec_from_bin(bytes: &[u8]) -> Result<CodeSpec> {
    let mut reader = BinReader::new(bytes);
    let kind = code_kind_from_tag(reader.take_u8()?)?;
    let radix = LogicLevel::new(reader.take_u8()?)?;
    let length = reader.take_usize()?;
    reader.finish()?;
    Ok(CodeSpec::new(kind, radix, length)?)
}

/// Encodes a [`DisturbanceKind`] body: `kind:u8` plus, for the correlated
/// kind, `shared_fraction:f64`.
#[must_use]
pub fn disturbance_to_bin(kind: DisturbanceKind) -> Vec<u8> {
    let mut writer = BinWriter::new();
    match kind {
        DisturbanceKind::Gaussian => writer.put_u8(0),
        DisturbanceKind::Laplace => writer.put_u8(1),
        DisturbanceKind::Correlated { shared_fraction } => {
            writer.put_u8(2);
            writer.put_f64(shared_fraction);
        }
    }
    writer.into_bytes()
}

/// Decodes a [`DisturbanceKind`] body.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed bytes or an unknown kind
/// tag.
pub fn disturbance_from_bin(bytes: &[u8]) -> Result<DisturbanceKind> {
    let mut reader = BinReader::new(bytes);
    let kind = match reader.take_u8()? {
        0 => DisturbanceKind::Gaussian,
        1 => DisturbanceKind::Laplace,
        2 => DisturbanceKind::Correlated {
            shared_fraction: reader.take_f64()?,
        },
        other => return Err(err(format!("unknown disturbance kind tag {other}"))),
    };
    reader.finish()?;
    Ok(kind)
}

/// Encodes a [`DefectKind`] body: `kind:u8` plus, for the sampled kind,
/// `nanowire_breakage:f64  crosspoint_defect:f64  seed:u64`.
#[must_use]
pub fn defect_to_bin(kind: DefectKind) -> Vec<u8> {
    let mut writer = BinWriter::new();
    match kind {
        DefectKind::None => writer.put_u8(0),
        DefectKind::Sampled(config) => {
            writer.put_u8(1);
            writer.put_f64(config.nanowire_breakage());
            writer.put_f64(config.crosspoint_defect());
            writer.put_u64(config.seed());
        }
    }
    writer.into_bytes()
}

/// Decodes a [`DefectKind`] body, re-validating the rates through
/// [`DefectConfig::new`].
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed bytes or an unknown kind
/// tag, or propagates the defect layer's rate-validation errors.
pub fn defect_from_bin(bytes: &[u8]) -> Result<DefectKind> {
    let mut reader = BinReader::new(bytes);
    let kind = match reader.take_u8()? {
        0 => DefectKind::None,
        1 => {
            let nanowire_breakage = reader.take_f64()?;
            let crosspoint_defect = reader.take_f64()?;
            let seed = reader.take_u64()?;
            DefectKind::Sampled(DefectConfig::new(
                nanowire_breakage,
                crosspoint_defect,
                seed,
            )?)
        }
        other => return Err(err(format!("unknown defect kind tag {other}"))),
    };
    reader.finish()?;
    Ok(kind)
}

/// Encodes a [`WireErrorKind`] body as one byte, in [`WireErrorKind::ALL`]
/// order.
#[must_use]
pub fn wire_error_kind_to_bin(kind: WireErrorKind) -> Vec<u8> {
    let tag = match kind {
        WireErrorKind::BadRequest => 0u8,
        WireErrorKind::Overloaded => 1,
        WireErrorKind::Internal => 2,
    };
    vec![tag]
}

/// Decodes a [`WireErrorKind`] body.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed bytes or an unknown tag.
pub fn wire_error_kind_from_bin(bytes: &[u8]) -> Result<WireErrorKind> {
    let mut reader = BinReader::new(bytes);
    let kind = match reader.take_u8()? {
        0 => WireErrorKind::BadRequest,
        1 => WireErrorKind::Overloaded,
        2 => WireErrorKind::Internal,
        other => return Err(err(format!("unknown wire error kind tag {other}"))),
    };
    reader.finish()?;
    Ok(kind)
}

// ---------------------------------------------------------------------------
// SimConfig document
// ---------------------------------------------------------------------------

const TAG_CONFIG_CODE: u8 = 0x01;
const TAG_CONFIG_GEOMETRY: u8 = 0x02;
const TAG_CONFIG_LAYOUT: u8 = 0x03;
const TAG_CONFIG_THRESHOLD: u8 = 0x04;
const TAG_CONFIG_NOISE: u8 = 0x05;
const TAG_CONFIG_WINDOW: u8 = 0x06;
const TAG_CONFIG_BUDGETS: u8 = 0x07;
const TAG_CONFIG_DISTURBANCE: u8 = 0x08;
const TAG_CONFIG_DEFECTS: u8 = 0x09;
const TAG_CONFIG_MONTE_CARLO: u8 = 0x0a;

fn duplicate(tag: u8) -> SimError {
    err(format!("duplicate section 0x{tag:02x} in binary document"))
}

fn missing(what: &str) -> SimError {
    err(format!("binary document is missing its {what} section"))
}

/// Stores a decoded section into its slot, rejecting a second occurrence —
/// a duplicate section is a format violation, not a "last writer wins".
fn store<T>(slot: &mut Option<T>, value: T, tag: u8) -> Result<()> {
    if slot.replace(value).is_some() {
        Err(duplicate(tag))
    } else {
        Ok(())
    }
}

/// Encodes a full [`SimConfig`] as a [`DOC_CONFIG`] document — every field,
/// including the disturbance kind and the defect selection, so two
/// configurations differing in either never serialize identically.
#[must_use]
pub fn config_to_bin(config: &SimConfig) -> Vec<u8> {
    let layout = config.layout();
    let threshold = config.threshold_model();
    let budgets = config.code_budgets();
    let (supply_low, supply_high) = config.supply_range();
    let mut payload = BinWriter::new();
    payload.section(TAG_CONFIG_CODE, &code_spec_to_bin(config.code()));
    let mut geometry = BinWriter::new();
    geometry.put_usize(config.nanowires_per_half_cave());
    geometry.put_u64(config.raw_bits());
    payload.section(TAG_CONFIG_GEOMETRY, &geometry.into_bytes());
    let mut layout_body = BinWriter::new();
    layout_body.put_f64(layout.litho_pitch().value());
    layout_body.put_f64(layout.nanowire_pitch().value());
    layout_body.put_f64(layout.min_contact_width_factor());
    layout_body.put_f64(layout.contact_alignment_tolerance().value());
    payload.section(TAG_CONFIG_LAYOUT, &layout_body.into_bytes());
    let mut threshold_body = BinWriter::new();
    threshold_body.put_f64(threshold.oxide_thickness().value());
    threshold_body.put_f64(threshold.flat_band_voltage().value());
    payload.section(TAG_CONFIG_THRESHOLD, &threshold_body.into_bytes());
    let mut noise = BinWriter::new();
    noise.put_f64(config.sigma_per_dose().value());
    noise.put_f64(supply_low.value());
    noise.put_f64(supply_high.value());
    payload.section(TAG_CONFIG_NOISE, &noise.into_bytes());
    if let Some(window) = config.window_override() {
        payload.section(TAG_CONFIG_WINDOW, &window.value().to_le_bytes());
    }
    let mut budgets_body = BinWriter::new();
    budgets_body.put_u64(budgets.balance.max_nodes_per_limit);
    budgets_body.put_usize(budgets.balance.max_limit_slack);
    budgets_body.put_u64(budgets.arranged_hot.max_nodes);
    budgets_body.put_u64(budgets.arranged_hot.fallback.max_nodes);
    budgets_body.put_u32(budgets.arranged_hot.fallback.max_two_opt_sweeps);
    payload.section(TAG_CONFIG_BUDGETS, &budgets_body.into_bytes());
    payload.section(
        TAG_CONFIG_DISTURBANCE,
        &disturbance_to_bin(config.disturbance()),
    );
    payload.section(TAG_CONFIG_DEFECTS, &defect_to_bin(config.defects()));
    // Appended last so documents written by this version still parse in
    // readers that predate the sampling knobs (they skip unknown tags).
    let mc = config.monte_carlo();
    let mut monte_carlo = BinWriter::new();
    monte_carlo.put_usize(mc.samples);
    monte_carlo.put_u64(mc.seed);
    match mc.target_half_width {
        Some(target) => {
            monte_carlo.put_u8(1);
            monte_carlo.put_f64(target);
        }
        None => monte_carlo.put_u8(0),
    }
    monte_carlo.put_f64(mc.confidence);
    match mc.max_samples {
        Some(max) => {
            monte_carlo.put_u8(1);
            monte_carlo.put_usize(max);
        }
        None => monte_carlo.put_u8(0),
    }
    payload.section(TAG_CONFIG_MONTE_CARLO, &monte_carlo.into_bytes());
    document(DOC_CONFIG, &payload.into_bytes())
}

/// Decodes a [`SimConfig`] document, passing every field through the same
/// validating constructors a hand-built configuration uses. Unknown section
/// tags are skipped; every section version 1 writes is required (the window
/// override excepted — its absence *is* the unset state — and the
/// Monte-Carlo section, which postdates version 1 and defaults to the
/// historical fixed-sample behaviour when absent).
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed bytes, or propagates the
/// validation errors of the reconstructed layers.
pub fn config_from_bin(bytes: &[u8]) -> Result<SimConfig> {
    let mut reader = BinReader::new(document_payload(bytes, DOC_CONFIG)?);
    let mut code = None;
    let mut geometry = None;
    let mut layout = None;
    let mut threshold = None;
    let mut noise = None;
    let mut window = None;
    let mut budgets = None;
    let mut disturbance = None;
    let mut defects = None;
    let mut monte_carlo = None;
    while let Some((tag, body)) = reader.next_section()? {
        match tag {
            TAG_CONFIG_CODE => store(&mut code, code_spec_from_bin(body)?, tag)?,
            TAG_CONFIG_GEOMETRY => {
                let mut section = BinReader::new(body);
                let value = (section.take_usize()?, section.take_u64()?);
                section.finish()?;
                store(&mut geometry, value, tag)?;
            }
            TAG_CONFIG_LAYOUT => {
                let mut section = BinReader::new(body);
                let value = LayoutRules::new(
                    Nanometers::new(section.take_f64()?),
                    Nanometers::new(section.take_f64()?),
                    section.take_f64()?,
                    Nanometers::new(section.take_f64()?),
                )?;
                section.finish()?;
                store(&mut layout, value, tag)?;
            }
            TAG_CONFIG_THRESHOLD => {
                let mut section = BinReader::new(body);
                let value = ThresholdModel::new(
                    Nanometers::new(section.take_f64()?),
                    Volts::new(section.take_f64()?),
                )?;
                section.finish()?;
                store(&mut threshold, value, tag)?;
            }
            TAG_CONFIG_NOISE => {
                let mut section = BinReader::new(body);
                let value = (
                    Volts::new(section.take_f64()?),
                    Volts::new(section.take_f64()?),
                    Volts::new(section.take_f64()?),
                );
                section.finish()?;
                store(&mut noise, value, tag)?;
            }
            TAG_CONFIG_WINDOW => {
                let mut section = BinReader::new(body);
                let value = Volts::new(section.take_f64()?);
                section.finish()?;
                store(&mut window, value, tag)?;
            }
            TAG_CONFIG_BUDGETS => {
                let mut section = BinReader::new(body);
                let value = CodeBudgets {
                    balance: BalanceBudget {
                        max_nodes_per_limit: section.take_u64()?,
                        max_limit_slack: section.take_usize()?,
                    },
                    arranged_hot: ArrangedHotBudget {
                        max_nodes: section.take_u64()?,
                        fallback: SearchBudget {
                            max_nodes: section.take_u64()?,
                            max_two_opt_sweeps: section.take_u32()?,
                        },
                    },
                };
                section.finish()?;
                store(&mut budgets, value, tag)?;
            }
            TAG_CONFIG_DISTURBANCE => store(&mut disturbance, disturbance_from_bin(body)?, tag)?,
            TAG_CONFIG_DEFECTS => store(&mut defects, defect_from_bin(body)?, tag)?,
            TAG_CONFIG_MONTE_CARLO => {
                let mut section = BinReader::new(body);
                let mut value = MonteCarloConfig::fixed(section.take_usize()?, section.take_u64()?);
                if section.take_u8()? != 0 {
                    value = value.with_target_half_width(section.take_f64()?);
                }
                value = value.with_confidence(section.take_f64()?);
                if section.take_u8()? != 0 {
                    value = value.with_max_samples(section.take_usize()?);
                }
                section.finish()?;
                store(&mut monte_carlo, value, tag)?;
            }
            _ => {} // Forward compatibility: skip sections a later writer added.
        }
    }
    let code = code.ok_or_else(|| missing("code"))?;
    let (nanowires, raw_bits) = geometry.ok_or_else(|| missing("geometry"))?;
    let layout = layout.ok_or_else(|| missing("layout"))?;
    let threshold = threshold.ok_or_else(|| missing("threshold"))?;
    let (sigma, supply_low, supply_high) = noise.ok_or_else(|| missing("noise"))?;
    let budgets = budgets.ok_or_else(|| missing("budgets"))?;
    let disturbance = disturbance.ok_or_else(|| missing("disturbance"))?;
    let defects = defects.ok_or_else(|| missing("defects"))?;
    let mut config = SimConfig::new(
        code,
        nanowires,
        raw_bits,
        layout,
        threshold,
        sigma,
        (supply_low, supply_high),
    )?
    .with_code_budgets(budgets)
    .with_disturbance(disturbance)
    // Optional for forward compatibility: documents written before the
    // sampling knobs existed decode to the default fixed behaviour.
    .with_monte_carlo(monte_carlo.unwrap_or_default())
    .with_defects(defects);
    if let Some(window) = window {
        config = config.with_window(window);
    }
    Ok(config)
}

// ---------------------------------------------------------------------------
// PlatformReport document
// ---------------------------------------------------------------------------

const TAG_REPORT_CODE: u8 = 0x01;
const TAG_REPORT_STRUCTURE: u8 = 0x02;
const TAG_REPORT_METRICS: u8 = 0x03;
const TAG_REPORT_DEFECTS: u8 = 0x04;
const TAG_REPORT_DEFECT_METRICS: u8 = 0x05;

/// Encodes a [`PlatformReport`] as a [`DOC_REPORT`] document.
#[must_use]
pub fn report_to_bin(report: &PlatformReport) -> Vec<u8> {
    let mut payload = BinWriter::new();
    payload.section(TAG_REPORT_CODE, &code_spec_to_bin(report.code));
    let mut structure = BinWriter::new();
    structure.put_usize(report.nanowires_per_half_cave);
    structure.put_usize(report.fabrication_steps);
    structure.put_usize(report.contact_groups);
    payload.section(TAG_REPORT_STRUCTURE, &structure.into_bytes());
    let mut metrics = BinWriter::new();
    metrics.put_f64(report.mean_variability);
    metrics.put_f64(report.max_normalized_sigma);
    metrics.put_f64(report.cave_yield);
    metrics.put_f64(report.crossbar_yield);
    metrics.put_f64(report.effective_bits);
    metrics.put_f64(report.raw_bit_area);
    metrics.put_f64(report.effective_bit_area);
    payload.section(TAG_REPORT_METRICS, &metrics.into_bytes());
    payload.section(TAG_REPORT_DEFECTS, &defect_to_bin(report.defects));
    let mut defect_metrics = BinWriter::new();
    defect_metrics.put_f64(report.defect_survival);
    defect_metrics.put_f64(report.composite_yield);
    defect_metrics.put_f64(report.composite_effective_bits);
    payload.section(TAG_REPORT_DEFECT_METRICS, &defect_metrics.into_bytes());
    document(DOC_REPORT, &payload.into_bytes())
}

/// Decodes a [`PlatformReport`] document bit-identically (floats round-trip
/// exactly). Unknown section tags are skipped; all five version-1 sections
/// are required — the binary format postdates the defect dimension, so
/// unlike the JSON decoder it has no pre-defect documents to default for.
///
/// # Errors
///
/// Returns [`SimError::Persistence`] on malformed bytes.
pub fn report_from_bin(bytes: &[u8]) -> Result<PlatformReport> {
    let mut reader = BinReader::new(document_payload(bytes, DOC_REPORT)?);
    let mut code = None;
    let mut structure = None;
    let mut metrics = None;
    let mut defects = None;
    let mut defect_metrics = None;
    while let Some((tag, body)) = reader.next_section()? {
        match tag {
            TAG_REPORT_CODE => store(&mut code, code_spec_from_bin(body)?, tag)?,
            TAG_REPORT_STRUCTURE => {
                let mut section = BinReader::new(body);
                let value = (
                    section.take_usize()?,
                    section.take_usize()?,
                    section.take_usize()?,
                );
                section.finish()?;
                store(&mut structure, value, tag)?;
            }
            TAG_REPORT_METRICS => {
                let mut section = BinReader::new(body);
                let value = [
                    section.take_f64()?,
                    section.take_f64()?,
                    section.take_f64()?,
                    section.take_f64()?,
                    section.take_f64()?,
                    section.take_f64()?,
                    section.take_f64()?,
                ];
                section.finish()?;
                store(&mut metrics, value, tag)?;
            }
            TAG_REPORT_DEFECTS => store(&mut defects, defect_from_bin(body)?, tag)?,
            TAG_REPORT_DEFECT_METRICS => {
                let mut section = BinReader::new(body);
                let value = (
                    section.take_f64()?,
                    section.take_f64()?,
                    section.take_f64()?,
                );
                section.finish()?;
                store(&mut defect_metrics, value, tag)?;
            }
            _ => {} // Forward compatibility: skip sections a later writer added.
        }
    }
    let code = code.ok_or_else(|| missing("code"))?;
    let (nanowires_per_half_cave, fabrication_steps, contact_groups) =
        structure.ok_or_else(|| missing("structure"))?;
    let [mean_variability, max_normalized_sigma, cave_yield, crossbar_yield, effective_bits, raw_bit_area, effective_bit_area] =
        metrics.ok_or_else(|| missing("metrics"))?;
    let defects = defects.ok_or_else(|| missing("defects"))?;
    let (defect_survival, composite_yield, composite_effective_bits) =
        defect_metrics.ok_or_else(|| missing("defect metrics"))?;
    Ok(PlatformReport {
        code,
        nanowires_per_half_cave,
        fabrication_steps,
        mean_variability,
        max_normalized_sigma,
        cave_yield,
        crossbar_yield,
        effective_bits,
        raw_bit_area,
        effective_bit_area,
        contact_groups,
        defects,
        defect_survival,
        composite_yield,
        composite_effective_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::SimulationPlatform;

    fn base_config() -> SimConfig {
        let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    #[test]
    fn config_round_trips_through_binary() {
        let config = base_config()
            .with_disturbance(DisturbanceKind::Correlated {
                shared_fraction: 0.25,
            })
            .with_defects(DefectKind::sampled(0.01, 0.002, 7).unwrap())
            .with_window(Volts::new(0.375))
            .with_monte_carlo(
                MonteCarloConfig::fixed(4_096, 17)
                    .with_target_half_width(0.05)
                    .with_confidence(0.99)
                    .with_max_samples(65_536),
            );
        let bytes = config_to_bin(&config);
        let decoded = config_from_bin(&bytes).unwrap();
        assert_eq!(config_to_bin(&decoded), bytes);
        assert_eq!(decoded.monte_carlo(), config.monte_carlo());
        assert_eq!(
            crate::codec::canonical_config_string(&decoded),
            crate::codec::canonical_config_string(&config)
        );
    }

    #[test]
    fn documents_without_a_monte_carlo_section_decode_to_the_default() {
        // Reconstruct the byte stream a pre-adaptive writer produced: every
        // section except the trailing Monte-Carlo one. The decoder must
        // fall back to the historical fixed-sample default.
        let config = base_config();
        let bytes = config_to_bin(&config);
        let payload = document_payload(&bytes, DOC_CONFIG).unwrap();
        let mut legacy_payload = BinWriter::new();
        let mut reader = BinReader::new(payload);
        while let Some((tag, body)) = reader.next_section().unwrap() {
            if tag != TAG_CONFIG_MONTE_CARLO {
                legacy_payload.section(tag, body);
            }
        }
        let legacy = document(DOC_CONFIG, &legacy_payload.into_bytes());
        let decoded = config_from_bin(&legacy).unwrap();
        assert_eq!(decoded.monte_carlo(), MonteCarloConfig::default());
        assert_eq!(decoded, config);
    }

    #[test]
    fn report_round_trips_bit_identically() {
        let report = SimulationPlatform::new(base_config()).evaluate().unwrap();
        let bytes = report_to_bin(&report);
        let decoded = report_from_bin(&bytes).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(report_to_bin(&decoded), bytes);
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let config = base_config();
        let mut bytes = config_to_bin(&config);
        // Append a section with an unallocated tag; a version-1 reader must
        // ignore it and still decode the known fields.
        let mut extra = BinWriter::new();
        extra.section(0x7f, &[1, 2, 3, 4]);
        bytes.extend_from_slice(&extra.into_bytes());
        let decoded = config_from_bin(&bytes).unwrap();
        assert_eq!(config_to_bin(&decoded), config_to_bin(&config));
    }

    #[test]
    fn future_versions_and_bad_magic_are_rejected() {
        let mut future = config_to_bin(&base_config());
        future[4..6].copy_from_slice(&2u16.to_le_bytes());
        let error = config_from_bin(&future).unwrap_err();
        assert!(error.to_string().contains("schema version"), "{error}");

        let mut wrong = config_to_bin(&base_config());
        wrong[0] = b'{';
        assert!(config_from_bin(&wrong)
            .unwrap_err()
            .to_string()
            .contains("magic"));
    }

    #[test]
    fn wrong_document_kind_is_rejected() {
        let config_bytes = config_to_bin(&base_config());
        let error = report_from_bin(&config_bytes).unwrap_err();
        assert!(error.to_string().contains("document kind"), "{error}");
    }

    #[test]
    fn leaf_values_round_trip() {
        for kind in [
            DisturbanceKind::Gaussian,
            DisturbanceKind::Laplace,
            DisturbanceKind::Correlated {
                shared_fraction: 0.5,
            },
        ] {
            assert_eq!(
                disturbance_from_bin(&disturbance_to_bin(kind)).unwrap(),
                kind
            );
        }
        for kind in [
            DefectKind::None,
            DefectKind::sampled(0.03, 0.001, 42).unwrap(),
        ] {
            assert_eq!(defect_from_bin(&defect_to_bin(kind)).unwrap(), kind);
        }
        for kind in WireErrorKind::ALL {
            assert_eq!(
                wire_error_kind_from_bin(&wire_error_kind_to_bin(kind)).unwrap(),
                kind
            );
        }
    }

    #[test]
    fn duplicate_sections_are_rejected() {
        let config = base_config();
        let bytes = config_to_bin(&config);
        // Duplicate the first section (code: tag + u32 length + 10-byte body).
        let mut doctored = bytes[..7].to_vec();
        doctored.extend_from_slice(&bytes[7..22]);
        doctored.extend_from_slice(&bytes[7..]);
        let error = config_from_bin(&doctored).unwrap_err();
        assert!(error.to_string().contains("duplicate"), "{error}");
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        let mut body = BinWriter::new();
        body.put_u8(2);
        body.put_f64(f64::NAN);
        let error = disturbance_from_bin(&body.into_bytes()).unwrap_err();
        assert!(error.to_string().contains("non-finite"), "{error}");
    }
}
