//! Work-sharded parallel execution engine for the Monte-Carlo validator and
//! the Fig. 5–8 parameter sweeps.
//!
//! # Determinism contract
//!
//! Monte-Carlo sampling is split into fixed-size chunks of
//! [`EngineConfig::chunk_size`] samples. Chunk `c` draws from its own
//! generator seeded as `chunk_seed(seed, c)` — a SplitMix64-style mix of the
//! run seed and the chunk index — so the stream a chunk consumes depends only
//! on `(seed, c)`, never on which thread happens to run it. Chunk results are
//! reduced in chunk order with exact integer addition, which makes every
//! [`MonteCarloOutcome`] **bit-identical for any thread count** (it does
//! depend on `chunk_size`; keep that fixed when comparing runs).
//!
//! The adaptive stopping rule ([`MonteCarloConfig::target_half_width`])
//! preserves the contract: chunks are computed in waves, but the stopping
//! decision is evaluated by a scan over per-chunk counts **in chunk order**,
//! stopping at the first chunk boundary where every nanowire's Wilson
//! half-width meets the target. Per-chunk counts depend only on
//! `(seed, chunk, chunk_size)`, so the stopping chunk — and therefore
//! `samples_used` and the profile — is identical at any thread count; chunks
//! computed past the stopping point are discarded, never folded in.
//!
//! Sweep points are evaluated independently and reassembled in parameter
//! order, so sweep results are element-identical to the serial path.
//!
//! # Memoization
//!
//! The engine carries a sharded, bounded, single-flight LRU
//! [`ReportCache`] of [`PlatformReport`]s: repeated (kind, radix, length)
//! points across `yield_sweep`, `bit_area_sweep` and `full_sweep` calls on
//! the same engine are evaluated once and served from the cache afterwards,
//! and concurrent identical requests (the serve layer's workload) block on
//! one in-flight evaluation instead of duplicating it. The cache persists to
//! a versioned JSON snapshot ([`ExecutionEngine::save_cache`] /
//! [`ExecutionEngine::load_cache`]) so repeated runs restart warm.

use std::num::NonZeroUsize;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

use serde::{Deserialize, Serialize};

use crossbar_array::{defect_band_count, AddressabilityProfile, DefectMap, DefectModel};
use device_physics::{VariabilityModel, Volts};
use mspt_fabrication::VariabilityMatrix;
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

use crate::cache::{CacheConfig, CacheStats, ReportCache};
use crate::config::SimConfig;
use crate::defect::DefectKind;
use crate::disturbance::{DisturbanceModel, GaussianDisturbance};
use crate::error::{Result, SimError};
use crate::monte_carlo::{
    chunk_seed, sample_chunk, validate_monte_carlo, McScratch, MonteCarloConfig, MonteCarloOutcome,
    SigmaMatrix,
};
use crate::platform::{PlatformReport, SimulationPlatform};
use crate::stage::{StageCache, StageStats};
use crate::stats::{wilson_bounds, wilson_half_width, z_for_confidence};
use crate::sweep::{BitAreaPoint, ComplexityPoint, YieldPoint};

/// Environment variable overriding the default engine thread count
/// (CI uses it as a cheap cross-thread determinism gate).
pub const ENGINE_THREADS_ENV: &str = "MSPT_ENGINE_THREADS";

/// Default number of Monte-Carlo samples per work chunk. Fixed (rather than
/// derived from the machine) so default-configured runs are reproducible
/// across hosts.
pub const DEFAULT_CHUNK_SIZE: usize = 256;

/// Knobs of the parallel execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of worker threads. The engine clamps zero to one.
    pub threads: usize,
    /// Monte-Carlo samples per deterministically seeded chunk. Part of the
    /// determinism contract: outcomes depend on this value (but never on
    /// `threads`). The engine clamps zero to one.
    pub chunk_size: usize,
}

impl EngineConfig {
    /// A single-threaded configuration with the default chunk size — the
    /// configuration behind every serial entry point.
    #[must_use]
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl Default for EngineConfig {
    /// Threads: the `MSPT_ENGINE_THREADS` environment variable when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    /// Chunk size: [`DEFAULT_CHUNK_SIZE`].
    fn default() -> Self {
        EngineConfig {
            threads: default_thread_count(),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

fn default_thread_count() -> usize {
    if let Ok(value) = std::env::var(ENGINE_THREADS_ENV) {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed >= 1 {
                return parsed;
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The work-sharded execution engine: runs Monte-Carlo estimations and
/// parameter sweeps across a fixed pool of scoped threads, with a memoized
/// per-[`SimConfig`] report cache.
///
/// # Examples
///
/// ```
/// use decoder_sim::{EngineConfig, ExecutionEngine, SimConfig};
/// use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = ExecutionEngine::new(EngineConfig {
///     threads: 2,
///     chunk_size: 256,
/// });
/// let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8)?;
/// let base = SimConfig::paper_defaults(code)?;
/// let reports = engine.full_sweep(
///     &base,
///     &[CodeKind::Tree, CodeKind::Gray],
///     LogicLevel::BINARY,
///     &[6, 8],
/// )?;
/// assert_eq!(reports.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExecutionEngine {
    config: EngineConfig,
    cache: ReportCache,
    stages: StageCache,
    sampling: SamplingCounters,
}

/// Internal atomic tallies behind [`ExecutionEngine::sampling_stats`].
#[derive(Debug, Default)]
struct SamplingCounters {
    runs: AtomicU64,
    samples_requested: AtomicU64,
    samples_used: AtomicU64,
}

/// Cumulative Monte-Carlo sampling counters of one engine: how many
/// estimations actually ran (stage-cache hits do not count), how many
/// samples their configurations requested as a ceiling, and how many the
/// (possibly adaptive) kernel actually drew. The serve stress artifact
/// reports these to make adaptive savings visible in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingStats {
    /// Number of Monte-Carlo estimations computed (not served from cache).
    pub runs: u64,
    /// Total sample ceiling across runs ([`MonteCarloConfig::sample_cap`]).
    pub samples_requested: u64,
    /// Total samples actually drawn; under adaptive stopping this is the
    /// smaller number the speedup comes from.
    pub samples_used: u64,
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        ExecutionEngine::new(EngineConfig::default())
    }
}

impl ExecutionEngine {
    /// Creates an engine with the default report cache
    /// ([`CacheConfig::default`]: `MSPT_CACHE_CAPACITY` or 4096 entries,
    /// 8 shards). Zero `threads` or `chunk_size` are clamped to one so every
    /// configuration is runnable.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        ExecutionEngine::with_cache(config, CacheConfig::default())
    }

    /// Creates an engine with an explicit report-cache configuration — the
    /// constructor behind cache-bound experiments and the serve layer's
    /// capacity knob. The per-stage memo table ([`ExecutionEngine::stage_cache`])
    /// shares the same capacity/shard configuration.
    #[must_use]
    pub fn with_cache(config: EngineConfig, cache: CacheConfig) -> Self {
        ExecutionEngine {
            config: EngineConfig {
                threads: config.threads.max(1),
                chunk_size: config.chunk_size.max(1),
            },
            cache: ReportCache::new(cache),
            stages: StageCache::new(cache),
            sampling: SamplingCounters::default(),
        }
    }

    /// A single-threaded engine with the default chunk size — the engine
    /// behind the serial free functions.
    #[must_use]
    pub fn serial() -> Self {
        ExecutionEngine::new(EngineConfig::serial())
    }

    /// The (clamped) configuration of the engine.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of distinct [`SimConfig`]s whose reports are memoized.
    #[must_use]
    pub fn cached_report_count(&self) -> usize {
        self.cache.len()
    }

    /// The cache's hit/miss/eviction counters — what the serve stress gate
    /// asserts its hit rates on.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The (clamped) configuration of the report cache.
    #[must_use]
    pub fn cache_config(&self) -> &CacheConfig {
        self.cache.config()
    }

    /// The engine's per-stage memo table — the stage-graph substrate every
    /// [`ExecutionEngine::report_for`] and
    /// [`ExecutionEngine::monte_carlo_for_config`] call shares. Exposed so
    /// benches and callers can drive
    /// [`SimulationPlatform::evaluate_with_stage_cache`] against a warm
    /// engine directly.
    #[must_use]
    pub fn stage_cache(&self) -> &StageCache {
        &self.stages
    }

    /// Per-stage hit/miss/eviction counters in [`crate::Stage::ALL`] order —
    /// what the stage-invalidation matrix test and the serve stress output
    /// read.
    #[must_use]
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.stages.stats()
    }

    /// Evaluates one configuration through the report cache: a repeated
    /// configuration is a cache hit, concurrent identical requests
    /// single-flight onto one evaluation. This is the serve layer's
    /// per-request entry point.
    ///
    /// A defect-configured evaluation samples its [`DefectMap`] through the
    /// engine's sharded [`ExecutionEngine::sample_defect_map`] and composes
    /// it with the decoder yield on the platform — bit-identical to the
    /// serial [`SimulationPlatform::evaluate`] at any thread count, because
    /// both assemble the same independently seeded chunks.
    ///
    /// A report-cache miss still runs through the engine's
    /// [`StageCache`]: the defect map and every pipeline stage memoize
    /// independently, so a configuration that differs from a cached one in
    /// only some fields (a sweep point) recomputes only the stages whose
    /// read set changed.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (never cached).
    pub fn report_for(&self, config: &SimConfig) -> Result<PlatformReport> {
        self.cache.get_or_compute(config, || {
            let platform = SimulationPlatform::new(config.clone());
            let map = self.stages.defect_map(config, || {
                platform.sample_defect_map_with(|model, rows, columns, seed| {
                    self.sample_defect_map(model, rows, columns, seed)
                })
            })?;
            platform.evaluate_with_stage_cache(&self.stages, map.as_ref())
        })
    }

    /// Persists the warm report cache to a versioned JSON snapshot file.
    /// Returns the number of persisted entries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on I/O failure.
    pub fn save_cache(&self, path: &Path) -> Result<usize> {
        self.cache.save_to_path(path)
    }

    /// Restores a warm report cache saved by [`ExecutionEngine::save_cache`].
    /// Returns the number of entries loaded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Persistence`] on I/O failure, malformed JSON or a
    /// mismatched snapshot schema version.
    pub fn load_cache(&self, path: &Path) -> Result<usize> {
        self.cache.load_from_path(path)
    }

    /// Cumulative Monte-Carlo sampling counters (runs, requested ceiling,
    /// samples actually drawn) — the adaptive kernel's savings, as the
    /// serve stress artifact reports them.
    #[must_use]
    pub fn sampling_stats(&self) -> SamplingStats {
        SamplingStats {
            runs: self.sampling.runs.load(Ordering::Relaxed),
            samples_requested: self.sampling.samples_requested.load(Ordering::Relaxed),
            samples_used: self.sampling.samples_used.load(Ordering::Relaxed),
        }
    }

    /// Runs `count` independent jobs across the engine's threads and returns
    /// their results in index order. Jobs are claimed from a shared atomic
    /// counter; results land in per-index slots, so the output order never
    /// depends on scheduling. On failure the error of the lowest failing
    /// index is returned (every job still runs).
    fn run_indexed<T, F>(&self, count: usize, job: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        self.run_indexed_with(count, || (), |(): &mut (), index| job(index))
    }

    /// [`ExecutionEngine::run_indexed`] with per-worker scratch state:
    /// `init` builds one scratch value per participating thread (one total
    /// on the serial path), and every job a worker claims reuses that
    /// worker's scratch — the allocation-reuse substrate of the batched
    /// Monte-Carlo kernel. Determinism is unaffected: scratch never crosses
    /// jobs' visible outputs, it only recycles buffers.
    fn run_indexed_with<S, T, I, F>(&self, count: usize, init: I, job: F) -> Result<Vec<T>>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> Result<T> + Sync,
    {
        if count == 0 {
            return Ok(Vec::new());
        }
        let threads = self.config.threads.min(count);
        if threads <= 1 {
            let mut scratch = init();
            return (0..count).map(|index| job(&mut scratch, index)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        let result = job(&mut scratch, index);
                        // Each slot is written exactly once; poison recovery
                        // cannot observe a half-written result.
                        *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    }
                });
            }
        });
        let mut results = Vec::with_capacity(count);
        for slot in slots {
            let result = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index below count is claimed exactly once");
            results.push(result?);
        }
        Ok(results)
    }

    /// Estimates the per-nanowire addressability by Monte-Carlo sampling,
    /// sharded into deterministically seeded chunks (see the module-level
    /// determinism contract).
    ///
    /// Deprecated entry point: prefer [`Evaluation`](crate::Evaluation),
    /// which derives the inputs from a [`SimConfig`] and memoizes through
    /// the engine's stage cache; this raw-matrix form is kept as a thin
    /// delegate for callers that construct their own variability matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero samples or a negative
    /// window, or propagates lower-layer errors.
    pub fn monte_carlo_addressability(
        &self,
        variability: &VariabilityMatrix,
        model: &VariabilityModel,
        window: Volts,
        config: MonteCarloConfig,
    ) -> Result<MonteCarloOutcome> {
        self.monte_carlo_with_disturbance(variability, model, window, config, &GaussianDisturbance)
    }

    /// [`ExecutionEngine::monte_carlo_addressability`] under an explicit
    /// [`DisturbanceModel`] instead of the default Gaussian. The determinism
    /// contract is unchanged: chunk `c` draws from `chunk_seed(seed, c)` and
    /// the model's fixed per-nanowire consumption keeps outcomes
    /// bit-identical for any thread count.
    ///
    /// Deprecated entry point: prefer [`Evaluation`](crate::Evaluation) with
    /// [`SimConfig::with_disturbance`](crate::SimConfig::with_disturbance),
    /// which memoizes through the engine's stage cache.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero samples or a negative
    /// window, or propagates lower-layer errors.
    pub fn monte_carlo_with_disturbance(
        &self,
        variability: &VariabilityMatrix,
        model: &VariabilityModel,
        window: Volts,
        config: MonteCarloConfig,
        disturbance: &dyn DisturbanceModel,
    ) -> Result<MonteCarloOutcome> {
        validate_monte_carlo(&config, window)?;
        let sigmas = SigmaMatrix::from_variability(variability, model)?;
        let window_half_width = window.value();
        let chunk_size = self.config.chunk_size;
        let cap = config.sample_cap();
        let chunk_count = cap.div_ceil(chunk_size);
        let chunk_samples = |chunk: usize| chunk_size.min(cap - chunk * chunk_size);
        let run_chunk = |scratch: &mut McScratch, chunk: usize| {
            Ok(sample_chunk(
                &sigmas,
                window_half_width,
                chunk_seed(config.seed, chunk as u64),
                chunk_samples(chunk),
                disturbance,
                scratch,
            ))
        };
        let z = z_for_confidence(config.confidence);
        let mut totals = vec![0usize; sigmas.nanowires()];
        let mut samples_used = 0usize;
        if let Some(target) = config.target_half_width {
            // Adaptive mode: compute chunks in waves of `threads`, then scan
            // the wave's per-chunk counts in chunk order, stopping at the
            // first boundary where every nanowire's Wilson half-width meets
            // the target. Per-chunk counts depend only on (seed, chunk,
            // chunk_size), so the stopping chunk is thread-count-invariant;
            // chunks computed past it (wave overshoot) are discarded.
            let wave = self.config.threads.max(1);
            let mut next_chunk = 0usize;
            'waves: while next_chunk < chunk_count {
                let batch = wave.min(chunk_count - next_chunk);
                let first = next_chunk;
                let wave_counts =
                    self.run_indexed_with(batch, McScratch::new, |scratch, offset| {
                        run_chunk(scratch, first + offset)
                    })?;
                for (offset, counts) in wave_counts.iter().enumerate() {
                    for (total, &count) in totals.iter_mut().zip(counts) {
                        *total += count;
                    }
                    samples_used += chunk_samples(first + offset);
                    if totals
                        .iter()
                        .all(|&successes| wilson_half_width(successes, samples_used, z) <= target)
                    {
                        break 'waves;
                    }
                }
                next_chunk += batch;
            }
        } else {
            let per_chunk_counts = self.run_indexed_with(chunk_count, McScratch::new, run_chunk)?;
            for counts in per_chunk_counts {
                for (total, count) in totals.iter_mut().zip(counts) {
                    *total += count;
                }
            }
            samples_used = cap;
        }
        self.sampling.runs.fetch_add(1, Ordering::Relaxed);
        self.sampling
            .samples_requested
            .fetch_add(cap as u64, Ordering::Relaxed);
        self.sampling
            .samples_used
            .fetch_add(samples_used as u64, Ordering::Relaxed);
        let (ci_lower, ci_upper): (Vec<f64>, Vec<f64>) = totals
            .iter()
            .map(|&successes| wilson_bounds(successes, samples_used, z))
            .unzip();
        let probabilities: Vec<f64> = totals
            .into_iter()
            .map(|count| count as f64 / samples_used as f64)
            .collect();
        Ok(MonteCarloOutcome {
            profile: AddressabilityProfile::new(probabilities)?,
            samples: cap,
            samples_used,
            ci_lower,
            ci_upper,
        })
    }

    /// Monte-Carlo addressability of a full simulation configuration under
    /// its configured [`DisturbanceKind`](crate::DisturbanceKind): derives
    /// the variability matrix, model and decision window from `sim` and
    /// samples with `sim.disturbance()` — the engine-side entry point the
    /// experiments layer sweeps over (also reachable through
    /// [`Evaluation`](crate::Evaluation)).
    ///
    /// Both the outcome and the underlying variability matrix memoize in the
    /// engine's [`StageCache`]: repeating the estimation is a Monte-Carlo
    /// stage hit, and a sweep that varies only fields outside the
    /// variability stage's read set (defect selection, sampling seed) reuses
    /// the cached matrix instead of regenerating the pattern per point.
    ///
    /// # Errors
    ///
    /// Propagates configuration, code, fabrication and sampling errors.
    pub fn monte_carlo_for_config(
        &self,
        sim: &SimConfig,
        config: MonteCarloConfig,
    ) -> Result<MonteCarloOutcome> {
        self.stages
            .monte_carlo(sim, config, self.config.chunk_size, || {
                let platform = SimulationPlatform::new(sim.clone());
                let staged = platform.variability_stage(&self.stages)?;
                let model = sim.variability_model()?;
                let window = sim.decision_window()?;
                let disturbance = sim.disturbance().model()?;
                self.monte_carlo_with_disturbance(
                    &staged.variability,
                    &model,
                    window,
                    config,
                    disturbance.as_ref(),
                )
            })
    }

    /// Samples a crossbar defect map with its bands sharded across the
    /// engine's threads — bit-identical to the serial
    /// [`DefectModel::sample_map`] at any thread count, because both assemble
    /// the same independently seeded chunks (see the layout documented on
    /// `crossbar_array::defects`): the breakage vectors are cheap and drawn
    /// inline, the `O(rows · columns)` crosspoint bands fan out through the
    /// engine and are concatenated in band order.
    ///
    /// # Errors
    ///
    /// Returns the crossbar layer's `InvalidSpec` when either dimension is
    /// zero.
    pub fn sample_defect_map(
        &self,
        model: &DefectModel,
        rows: usize,
        columns: usize,
        seed: u64,
    ) -> Result<DefectMap> {
        let bands = self.run_indexed(defect_band_count(rows), |band| {
            Ok(model.sample_defective_band(band, rows, columns, seed))
        })?;
        let defective: Vec<bool> = bands.into_iter().flatten().collect();
        Ok(DefectMap::from_parts(
            rows,
            columns,
            model.sample_row_breakage(rows, seed),
            model.sample_column_breakage(columns, seed),
            defective,
        )?)
    }

    /// Evaluates every configuration through the report cache, fanning the
    /// batch across the engine's threads. In-batch duplicates are deduped
    /// *before* the fan-out so they never occupy a worker just to block on
    /// another worker's single-flight (and are evaluated once even with a
    /// disabled cache); the single-flight cache still dedups against
    /// concurrent batches and serve-layer requests. Results come back in
    /// input order.
    fn evaluate_batch(&self, configs: &[SimConfig]) -> Result<Vec<PlatformReport>> {
        let mut unique: Vec<&SimConfig> = Vec::new();
        let mut slots = Vec::with_capacity(configs.len());
        for config in configs {
            match unique.iter().position(|&queued| queued == config) {
                Some(position) => slots.push(position),
                None => {
                    unique.push(config);
                    slots.push(unique.len() - 1);
                }
            }
        }
        let reports = self.run_indexed(unique.len(), |index| self.report_for(unique[index]))?;
        Ok(slots
            .into_iter()
            .map(|index| reports[index].clone())
            .collect())
    }

    /// Parallel [`crate::sweep::complexity_sweep`] (Fig. 5): element-identical
    /// to the serial path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySweep`] for empty parameter sets, or
    /// propagates evaluation errors.
    pub fn complexity_sweep(
        &self,
        base: &SimConfig,
        kinds: &[CodeKind],
        radices: &[LogicLevel],
        code_length: usize,
        nanowires: usize,
    ) -> Result<Vec<ComplexityPoint>> {
        if kinds.is_empty() || radices.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let mut pairs = Vec::with_capacity(kinds.len() * radices.len());
        for &radix in radices {
            for &kind in kinds {
                pairs.push((kind, radix));
            }
        }
        let steps = self.run_indexed(pairs.len(), |index| {
            let (kind, radix) = pairs[index];
            let code = CodeSpec::new(kind, radix, code_length)?;
            let platform = SimulationPlatform::new(base.clone().with_code(code));
            Ok(platform.fabrication_cost_for(nanowires)?.total())
        })?;
        Ok(pairs
            .into_iter()
            .zip(steps)
            .map(|((kind, radix), fabrication_steps)| ComplexityPoint {
                kind,
                radix,
                code_length,
                nanowires,
                fabrication_steps,
            })
            .collect())
    }

    /// Parallel [`crate::sweep::yield_sweep`] (Fig. 7): element-identical to
    /// the serial path; invalid lengths for the family are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySweep`] for an empty length set, or
    /// propagates evaluation errors.
    pub fn yield_sweep(
        &self,
        base: &SimConfig,
        kind: CodeKind,
        radix: LogicLevel,
        code_lengths: &[usize],
    ) -> Result<Vec<YieldPoint>> {
        if code_lengths.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let (lengths, configs) = valid_length_configs(base, kind, radix, code_lengths);
        let reports = self.evaluate_batch(&configs)?;
        Ok(lengths
            .into_iter()
            .zip(reports)
            .map(|(code_length, report)| YieldPoint {
                kind,
                code_length,
                cave_yield: report.cave_yield,
                crossbar_yield: report.crossbar_yield,
            })
            .collect())
    }

    /// Parallel [`crate::sweep::defect_yield_sweep`] (the defect axis of the
    /// Fig. 7 extension): evaluates one code under every fabrication-defect
    /// selection through the report cache, element-identical to the serial
    /// path. Defect maps are engine-sharded via
    /// [`ExecutionEngine::report_for`], so points stay bit-identical for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySweep`] for an empty defect set, or
    /// propagates code and evaluation errors.
    pub fn defect_yield_sweep(
        &self,
        base: &SimConfig,
        kind: CodeKind,
        radix: LogicLevel,
        code_length: usize,
        defects: &[DefectKind],
    ) -> Result<Vec<crate::sweep::DefectYieldPoint>> {
        if defects.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let code = CodeSpec::new(kind, radix, code_length)?;
        let configs: Vec<SimConfig> = defects
            .iter()
            .map(|&defect| base.clone().with_code(code).with_defects(defect))
            .collect();
        let reports = self.evaluate_batch(&configs)?;
        Ok(defects
            .iter()
            .zip(reports)
            .map(|(&defect, report)| crate::sweep::DefectYieldPoint {
                kind,
                code_length,
                defects: defect,
                decoder_yield: report.crossbar_yield,
                defect_survival: report.defect_survival,
                composite_yield: report.composite_yield,
            })
            .collect())
    }

    /// Parallel [`crate::sweep::bit_area_sweep`] (Fig. 8): element-identical
    /// to the serial path; invalid lengths for the family are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySweep`] for an empty length set, or
    /// propagates evaluation errors.
    pub fn bit_area_sweep(
        &self,
        base: &SimConfig,
        kind: CodeKind,
        radix: LogicLevel,
        code_lengths: &[usize],
    ) -> Result<Vec<BitAreaPoint>> {
        if code_lengths.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let (lengths, configs) = valid_length_configs(base, kind, radix, code_lengths);
        let reports = self.evaluate_batch(&configs)?;
        Ok(lengths
            .into_iter()
            .zip(reports)
            .map(|(code_length, report)| BitAreaPoint {
                kind,
                code_length,
                bit_area: report.effective_bit_area,
                crossbar_yield: report.crossbar_yield,
            })
            .collect())
    }

    /// Parallel [`crate::sweep::full_sweep`]: element-identical to the serial
    /// path; invalid (kind, length) pairs are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySweep`] for empty parameter sets, or
    /// propagates evaluation errors.
    pub fn full_sweep(
        &self,
        base: &SimConfig,
        kinds: &[CodeKind],
        radix: LogicLevel,
        code_lengths: &[usize],
    ) -> Result<Vec<PlatformReport>> {
        if kinds.is_empty() || code_lengths.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let mut configs = Vec::new();
        for &kind in kinds {
            for &code_length in code_lengths {
                if let Ok(code) = CodeSpec::new(kind, radix, code_length) {
                    configs.push(base.clone().with_code(code));
                }
            }
        }
        self.evaluate_batch(&configs)
    }
}

/// The (length, config) pairs of the lengths that are valid for the family —
/// the shared skip-silently discipline of the yield and bit-area sweeps.
fn valid_length_configs(
    base: &SimConfig,
    kind: CodeKind,
    radix: LogicLevel,
    code_lengths: &[usize],
) -> (Vec<usize>, Vec<SimConfig>) {
    let mut lengths = Vec::with_capacity(code_lengths.len());
    let mut configs = Vec::with_capacity(code_lengths.len());
    for &code_length in code_lengths {
        if let Ok(code) = CodeSpec::new(kind, radix, code_length) {
            lengths.push(code_length);
            configs.push(base.clone().with_code(code));
        }
    }
    (lengths, configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep;

    fn base() -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    fn engine(threads: usize) -> ExecutionEngine {
        ExecutionEngine::new(EngineConfig {
            threads,
            chunk_size: DEFAULT_CHUNK_SIZE,
        })
    }

    #[test]
    fn zero_knobs_are_clamped_to_one() {
        let engine = ExecutionEngine::new(EngineConfig {
            threads: 0,
            chunk_size: 0,
        });
        assert_eq!(engine.config().threads, 1);
        assert_eq!(engine.config().chunk_size, 1);
    }

    #[test]
    fn default_config_has_at_least_one_thread() {
        assert!(EngineConfig::default().threads >= 1);
        assert_eq!(EngineConfig::default().chunk_size, DEFAULT_CHUNK_SIZE);
        assert_eq!(EngineConfig::serial().threads, 1);
    }

    #[test]
    fn run_indexed_preserves_order_and_reports_lowest_error() {
        let engine = engine(4);
        let squares = engine.run_indexed(100, |i| Ok(i * i)).unwrap();
        assert_eq!(squares.len(), 100);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));

        let error = engine
            .run_indexed(10, |i| {
                if i >= 3 {
                    Err(SimError::InvalidConfig {
                        reason: format!("job {i}"),
                    })
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(
            error,
            SimError::InvalidConfig {
                reason: "job 3".to_string()
            }
        );
    }

    #[test]
    fn run_indexed_with_reuses_one_scratch_per_worker() {
        // Serial path: a single scratch walks every index in order.
        let serial = engine(1);
        let counts = serial
            .run_indexed_with(
                5,
                || 0usize,
                |seen: &mut usize, _| {
                    *seen += 1;
                    Ok(*seen)
                },
            )
            .unwrap();
        assert_eq!(counts, vec![1, 2, 3, 4, 5]);

        // Parallel path: 4 workers claim 64 jobs, so by pigeonhole some
        // worker's scratch sees at least 16 of them — proof the scratch is
        // per worker, not per job.
        let parallel = engine(4);
        let counts = parallel
            .run_indexed_with(
                64,
                || 0usize,
                |seen: &mut usize, _| {
                    *seen += 1;
                    Ok(*seen)
                },
            )
            .unwrap();
        assert_eq!(counts.len(), 64);
        assert!(*counts.iter().max().unwrap() >= 16);
    }

    #[test]
    fn sampling_stats_track_adaptive_savings() {
        let engine = engine(2);
        assert_eq!(engine.sampling_stats().runs, 0);
        let adaptive = MonteCarloConfig::fixed(4_096, 5).with_target_half_width(0.05);
        let outcome = engine.monte_carlo_for_config(&base(), adaptive).unwrap();
        let stats = engine.sampling_stats();
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.samples_requested, 4_096);
        assert_eq!(stats.samples_used, outcome.samples_used as u64);
        assert!(stats.samples_used < stats.samples_requested);
        // A stage-cache hit computes nothing, so the counters stand still.
        engine.monte_carlo_for_config(&base(), adaptive).unwrap();
        assert_eq!(engine.sampling_stats(), stats);
    }

    #[test]
    fn parallel_sweeps_match_the_serial_path() {
        let base = base();
        let kinds = [CodeKind::Tree, CodeKind::Gray, CodeKind::Hot];
        let radices = [LogicLevel::BINARY, LogicLevel::TERNARY];
        let lengths = [4usize, 5, 6, 8];
        let engine = engine(4);

        assert_eq!(
            engine
                .complexity_sweep(&base, &[CodeKind::Tree, CodeKind::Gray], &radices, 8, 10)
                .unwrap(),
            sweep::complexity_sweep(&base, &[CodeKind::Tree, CodeKind::Gray], &radices, 8, 10)
                .unwrap()
        );
        assert_eq!(
            engine
                .yield_sweep(&base, CodeKind::Hot, LogicLevel::BINARY, &lengths)
                .unwrap(),
            sweep::yield_sweep(&base, CodeKind::Hot, LogicLevel::BINARY, &lengths).unwrap()
        );
        assert_eq!(
            engine
                .bit_area_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, &[6, 8])
                .unwrap(),
            sweep::bit_area_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, &[6, 8]).unwrap()
        );
        assert_eq!(
            engine
                .full_sweep(&base, &kinds, LogicLevel::BINARY, &[6, 8])
                .unwrap(),
            sweep::full_sweep(&base, &kinds, LogicLevel::BINARY, &[6, 8]).unwrap()
        );
        let defects = [
            DefectKind::None,
            DefectKind::sampled(0.05, 0.02, 42).unwrap(),
        ];
        assert_eq!(
            engine
                .defect_yield_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, 8, &defects)
                .unwrap(),
            sweep::defect_yield_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, 8, &defects)
                .unwrap()
        );
    }

    #[test]
    fn repeated_points_hit_the_report_cache() {
        let base = base();
        let engine = engine(2);
        let lengths = [6usize, 8];
        let first = engine
            .yield_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, &lengths)
            .unwrap();
        let cached = engine.cached_report_count();
        assert_eq!(cached, 2);
        // The bit-area sweep over the same points evaluates nothing new.
        engine
            .bit_area_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, &lengths)
            .unwrap();
        assert_eq!(engine.cached_report_count(), cached);
        // And a repeated yield sweep returns identical points.
        let second = engine
            .yield_sweep(&base, CodeKind::Tree, LogicLevel::BINARY, &lengths)
            .unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn duplicate_points_in_one_batch_are_evaluated_once() {
        let base = base();
        let engine = engine(2);
        let reports = engine
            .full_sweep(
                &base,
                &[CodeKind::Tree, CodeKind::Tree],
                LogicLevel::BINARY,
                &[8],
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0], reports[1]);
        assert_eq!(engine.cached_report_count(), 1);
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        let engine = engine(2);
        assert!(matches!(
            engine.complexity_sweep(&base(), &[], &[LogicLevel::BINARY], 8, 10),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            engine.yield_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, &[]),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            engine.bit_area_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, &[]),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            engine.full_sweep(&base(), &[], LogicLevel::BINARY, &[8]),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            engine.defect_yield_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, 8, &[]),
            Err(SimError::EmptySweep)
        ));
    }
}
