//! Figure-shaped reports: the data series of Figs. 5–8 bundled with plain
//! text rendering, so experiments, benches and EXPERIMENTS.md all print the
//! same rows.

use std::fmt;

use serde::{Deserialize, Serialize};

use nanowire_codes::CodeKind;

use crate::sweep::{BitAreaPoint, ComplexityPoint, DefectYieldPoint, VariabilityMap, YieldPoint};

/// Fig. 5 — fabrication complexity per code type and logic radix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Report {
    /// The swept points.
    pub points: Vec<ComplexityPoint>,
}

impl fmt::Display for Fig5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5 — fabrication complexity (additional lithography/doping steps)"
        )?;
        writeln!(f, "{:<12} {:<6} {:>6}", "logic", "code", "steps")?;
        for point in &self.points {
            writeln!(
                f,
                "{:<12} {:<6} {:>6}",
                point.radix.to_string(),
                point.kind.label(),
                point.fabrication_steps
            )?;
        }
        Ok(())
    }
}

/// Fig. 6 — variability maps per code type and length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Report {
    /// One map per (code type, length) panel.
    pub maps: Vec<VariabilityMap>,
}

impl fmt::Display for Fig6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 — normalised variability sqrt(Σ)/σ_T per doping region"
        )?;
        for map in &self.maps {
            writeln!(
                f,
                "{} (L = {}, N = {}): mean Σ/σ_T² = {:.3}, max sqrt(ν) = {:.3}",
                map.kind.label(),
                map.code_length,
                map.nanowires,
                map.mean_variability,
                map.max_normalized_sigma
            )?;
            // Print a compact per-digit profile (averaged over nanowires), one
            // row per panel, matching the digit axis of the figure.
            let columns = map.normalized_sigma.columns();
            let rows = map.normalized_sigma.rows();
            write!(f, "  per-digit mean sqrt(ν):")?;
            for j in 0..columns {
                let mean: f64 = (0..rows)
                    .map(|i| *map.normalized_sigma.get(i, j).expect("in range"))
                    .sum::<f64>()
                    / rows as f64;
                write!(f, " {mean:.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Fig. 7 — crossbar yield per code type and length, plus the beyond-paper
/// defect axis: composite yield under sampled fabrication defects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Report {
    /// One series per code family (the paper's figure).
    pub series: Vec<(CodeKind, Vec<YieldPoint>)>,
    /// One yield-vs-defect-rate series per code family (empty when the
    /// defect axis was not swept — the paper assumes defect-free arrays).
    pub defect_series: Vec<(CodeKind, Vec<DefectYieldPoint>)>,
}

impl fmt::Display for Fig7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 7 — crossbar yield (fraction of addressable crosspoints)"
        )?;
        if !self.series.is_empty() {
            writeln!(
                f,
                "{:<6} {:>8} {:>12} {:>14}",
                "code", "length", "cave yield", "crossbar yield"
            )?;
            for (kind, points) in &self.series {
                for point in points {
                    writeln!(
                        f,
                        "{:<6} {:>8} {:>11.1}% {:>13.1}%",
                        kind.label(),
                        point.code_length,
                        point.cave_yield * 100.0,
                        point.crossbar_yield * 100.0
                    )?;
                }
            }
        }
        if !self.defect_series.is_empty() {
            writeln!(
                f,
                "defect axis — composite yield under sampled fabrication defects"
            )?;
            writeln!(
                f,
                "{:<6} {:>8} {:>8} {:>8} {:>10} {:>10} {:>11}",
                "code", "length", "break", "stuck", "decoder", "survival", "composite"
            )?;
            for (kind, points) in &self.defect_series {
                for point in points {
                    writeln!(
                        f,
                        "{:<6} {:>8} {:>7.2}% {:>7.2}% {:>9.2}% {:>9.2}% {:>10.2}%",
                        kind.label(),
                        point.code_length,
                        point.defects.nanowire_breakage() * 100.0,
                        point.defects.crosspoint_defect() * 100.0,
                        point.decoder_yield * 100.0,
                        point.defect_survival * 100.0,
                        point.composite_yield * 100.0
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Fig. 8 — effective bit area per code type and length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Report {
    /// One series per code family.
    pub series: Vec<(CodeKind, Vec<BitAreaPoint>)>,
}

impl Fig8Report {
    /// The smallest bit area across every series, with its code and length —
    /// the paper's headline "169 nm² for the balanced Gray code".
    #[must_use]
    pub fn best(&self) -> Option<(CodeKind, usize, f64)> {
        self.series
            .iter()
            .flat_map(|(kind, points)| {
                points
                    .iter()
                    .map(move |p| (*kind, p.code_length, p.bit_area))
            })
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite areas"))
    }
}

impl fmt::Display for Fig8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8 — average area per functional bit")?;
        writeln!(
            f,
            "{:<6} {:>8} {:>14} {:>14}",
            "code", "length", "bit area [nm²]", "crossbar yield"
        )?;
        for (kind, points) in &self.series {
            for point in points {
                writeln!(
                    f,
                    "{:<6} {:>8} {:>14.1} {:>13.1}%",
                    kind.label(),
                    point.code_length,
                    point.bit_area,
                    point.crossbar_yield * 100.0
                )?;
            }
        }
        if let Some((kind, length, area)) = self.best() {
            writeln!(
                f,
                "best: {} at M = {length} with {area:.1} nm²",
                kind.label()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sweep::{bit_area_sweep, complexity_sweep, variability_map, yield_sweep};
    use nanowire_codes::{CodeSpec, LogicLevel};

    fn base() -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    #[test]
    fn fig5_report_renders_every_point() {
        let points = complexity_sweep(
            &base(),
            &[CodeKind::Tree, CodeKind::Gray],
            &[LogicLevel::BINARY, LogicLevel::TERNARY],
            8,
            10,
        )
        .unwrap();
        let report = Fig5Report { points };
        let text = report.to_string();
        assert!(text.contains("Fig. 5"));
        assert!(text.contains("ternary"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn fig6_report_renders_per_digit_profiles() {
        let maps = vec![
            variability_map(&base(), CodeKind::Tree, LogicLevel::BINARY, 8, 20).unwrap(),
            variability_map(&base(), CodeKind::Gray, LogicLevel::BINARY, 8, 20).unwrap(),
        ];
        let report = Fig6Report { maps };
        let text = report.to_string();
        assert!(text.contains("TC (L = 8, N = 20)"));
        assert!(text.contains("GC (L = 8, N = 20)"));
        assert!(text.contains("per-digit mean"));
    }

    #[test]
    fn fig7_report_renders_series() {
        let series = vec![
            (
                CodeKind::Tree,
                yield_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, &[6, 8, 10]).unwrap(),
            ),
            (
                CodeKind::BalancedGray,
                yield_sweep(
                    &base(),
                    CodeKind::BalancedGray,
                    LogicLevel::BINARY,
                    &[6, 8, 10],
                )
                .unwrap(),
            ),
        ];
        let report = Fig7Report {
            series,
            defect_series: vec![],
        };
        let text = report.to_string();
        assert!(text.contains("Fig. 7"));
        assert!(text.contains("BGC"));
        assert!(text.contains('%'));
        assert!(!text.contains("defect axis"));
    }

    #[test]
    fn fig7_report_renders_the_defect_axis() {
        use crate::defect::DefectKind;
        use crate::sweep::defect_yield_sweep;
        let defects = [
            DefectKind::None,
            DefectKind::sampled(0.05, 0.02, 2_009).unwrap(),
        ];
        let points =
            defect_yield_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, 8, &defects).unwrap();
        let report = Fig7Report {
            series: vec![],
            defect_series: vec![(CodeKind::Tree, points)],
        };
        let text = report.to_string();
        assert!(text.contains("defect axis"));
        assert!(text.contains("survival"));
        assert!(text.contains("composite"));
        // The defect-free row keeps composite == decoder; the defective row
        // loses yield.
        let defective = &report.defect_series[0].1[1];
        assert!(defective.composite_yield < defective.decoder_yield);
        let clean = &report.defect_series[0].1[0];
        assert_eq!(clean.composite_yield, clean.decoder_yield);
    }

    #[test]
    fn fig8_report_finds_the_best_bit_area() {
        let series = vec![
            (
                CodeKind::Tree,
                bit_area_sweep(&base(), CodeKind::Tree, LogicLevel::BINARY, &[6, 10]).unwrap(),
            ),
            (
                CodeKind::BalancedGray,
                bit_area_sweep(
                    &base(),
                    CodeKind::BalancedGray,
                    LogicLevel::BINARY,
                    &[6, 10],
                )
                .unwrap(),
            ),
        ];
        let report = Fig8Report { series };
        let best = report.best().unwrap();
        assert!(best.2 > 0.0);
        // The balanced Gray code at the longer length must not lose to the
        // short tree code.
        assert!(report.to_string().contains("best:"));
    }

    #[test]
    fn empty_fig8_report_has_no_best() {
        let report = Fig8Report { series: vec![] };
        assert!(report.best().is_none());
    }
}
