//! Pluggable dose-disturbance distributions for the Monte-Carlo path.
//!
//! The analytic addressability model integrates **Gaussian** threshold
//! disturbances in closed form; that is the one distribution it can handle.
//! The Monte-Carlo sampler has no such restriction, so its region-disturbance
//! generator is a trait, [`DisturbanceModel`], with three stock
//! implementations:
//!
//! * [`GaussianDisturbance`] — the paper's model, and the default. Draws one
//!   standard normal per region; **bit-identical** to the pre-trait sampler
//!   (the fixed-seed regression in `tests/engine_equivalence.rs` pins this).
//! * [`LaplaceDisturbance`] — heavy-tailed dose noise via the inverse CDF,
//!   scaled to the same per-region variance `σ²` as the Gaussian so the two
//!   differ only in tail shape. One uniform per region.
//! * [`CorrelatedDisturbance`] — a shared per-nanowire offset plus
//!   independent per-region noise (systematic dose drift on top of local
//!   randomness). `1 + M` normals per nanowire of `M` regions.
//!
//! # Fixed-consumption contract
//!
//! Whatever the distribution, a model must draw a **fixed number** of values
//! from the source per nanowire, depending only on the region count — never
//! on the sampled values, the window, or the acceptance outcome. This is the
//! same common-random-numbers discipline the Gaussian sampler documents in
//! [`crate::monte_carlo`]: it keeps chunked sampling bit-identical for any
//! thread count and makes same-seed comparisons across windows exact.
//!
//! [`DisturbanceKind`] is the serializable, config-friendly enumeration of
//! the stock models; custom models plug in through
//! [`ExecutionEngine::monte_carlo_with_disturbance`](crate::ExecutionEngine::monte_carlo_with_disturbance).

use std::fmt;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SimError};
use crate::monte_carlo::NormalSource;

/// A distribution of per-region threshold-voltage disturbances, sampled one
/// nanowire at a time.
///
/// Implementations must obey the module-level fixed-consumption contract:
/// the number of draws taken from `draws` may depend only on `sigmas.len()`.
///
/// # Examples
///
/// A custom distribution — uniform dose noise on `[-σ√3, σ√3]`, which has the
/// same variance `σ²` as the stock models:
///
/// ```
/// use decoder_sim::{DisturbanceModel, NormalSource};
/// use rand::rngs::StdRng;
///
/// #[derive(Debug)]
/// struct UniformDisturbance;
///
/// impl DisturbanceModel for UniformDisturbance {
///     fn sample_regions(
///         &self,
///         sigmas: &[f64],
///         draws: &mut NormalSource<StdRng>,
///         out: &mut [f64],
///     ) {
///         // One uniform per region: fixed consumption, as required.
///         for (slot, &sigma) in out.iter_mut().zip(sigmas) {
///             *slot = sigma * 3f64.sqrt() * (2.0 * draws.uniform() - 1.0);
///         }
///     }
/// }
///
/// let sigmas = [0.1, 0.2, 0.3];
/// let mut draws = NormalSource::from_seed(7);
/// let mut deviations = [0.0f64; 3];
/// UniformDisturbance.sample_regions(&sigmas, &mut draws, &mut deviations);
/// assert!(deviations
///     .iter()
///     .zip(&sigmas)
///     .all(|(d, s)| d.abs() <= s * 3f64.sqrt()));
/// ```
pub trait DisturbanceModel: fmt::Debug + Send + Sync {
    /// Fills `out` with one sampled disturbance per doping region of one
    /// nanowire; `sigmas[j]` is the standard deviation the analytic model
    /// assigns to region `j` (`out.len() == sigmas.len()`).
    fn sample_regions(&self, sigmas: &[f64], draws: &mut NormalSource<StdRng>, out: &mut [f64]);

    /// Fills a whole `nanowires × regions` deviation matrix in one call —
    /// the structure-of-arrays entry point of the batched sampling kernel.
    /// `sigmas` and `out` are flat row-major matrices of equal length whose
    /// rows are `regions` wide.
    ///
    /// The provided body loops [`sample_regions`](Self::sample_regions) over
    /// the rows in order, so every implementation consumes the draw stream
    /// exactly as the scalar path did; implementations may override it with
    /// a batched draw **only** when the batch consumes the identical stream
    /// (see [`GaussianDisturbance`], whose override leans on
    /// [`NormalSource::fill`] replaying the scalar stream bit-exactly).
    fn sample_matrix(
        &self,
        sigmas: &[f64],
        regions: usize,
        draws: &mut NormalSource<StdRng>,
        out: &mut [f64],
    ) {
        if regions == 0 {
            return;
        }
        for (row_sigmas, row_out) in sigmas
            .chunks_exact(regions)
            .zip(out.chunks_exact_mut(regions))
        {
            self.sample_regions(row_sigmas, draws, row_out);
        }
    }
}

/// The paper's Gaussian disturbance: region `j` deviates by `σ_j · Z` with
/// `Z` standard normal. Draws exactly one normal per region, in region
/// order — the identical stream the pre-trait sampler consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaussianDisturbance;

impl DisturbanceModel for GaussianDisturbance {
    fn sample_regions(&self, sigmas: &[f64], draws: &mut NormalSource<StdRng>, out: &mut [f64]) {
        for (slot, &sigma) in out.iter_mut().zip(sigmas) {
            *slot = sigma * draws.sample();
        }
    }

    /// Batched draw: one [`NormalSource::fill`] over the whole matrix, then
    /// an elementwise scale the compiler can autovectorize. Bit-identical to
    /// the row loop because the Gaussian consumes exactly one normal per
    /// cell in row-major order — the flat order *is* the scalar order.
    fn sample_matrix(
        &self,
        sigmas: &[f64],
        _regions: usize,
        draws: &mut NormalSource<StdRng>,
        out: &mut [f64],
    ) {
        draws.fill(out);
        for (slot, &sigma) in out.iter_mut().zip(sigmas) {
            *slot *= sigma;
        }
    }
}

/// Heavy-tailed Laplace dose noise, sampled by inverse CDF from one uniform
/// per region and scaled to variance `σ_j²` (Laplace scale `b = σ/√2`), so it
/// is directly comparable to [`GaussianDisturbance`]: same second moment,
/// fatter tails (excess kurtosis 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaplaceDisturbance;

impl DisturbanceModel for LaplaceDisturbance {
    fn sample_regions(&self, sigmas: &[f64], draws: &mut NormalSource<StdRng>, out: &mut [f64]) {
        for (slot, &sigma) in out.iter_mut().zip(sigmas) {
            // Inverse CDF of the centred Laplace with scale b:
            // x = -b·sgn(t)·ln(1 − 2|t|), t = u − ½ ∈ [−½, ½).
            let t = draws.uniform() - 0.5;
            let scale = sigma / std::f64::consts::SQRT_2;
            let arg = (1.0 - 2.0 * t.abs()).max(f64::MIN_POSITIVE);
            *slot = -scale * t.signum() * arg.ln();
        }
    }
}

/// Correlated inter-region disturbance: one shared offset per nanowire (a
/// systematic dose drift hitting every region of the wire) plus independent
/// per-region noise, mixed so each region keeps variance `σ_j²`:
///
/// `ΔV_j = σ_j · (√ρ · Z₀ + √(1−ρ) · Z_j)`
///
/// where `ρ` is the [`shared_fraction`](CorrelatedDisturbance::shared_fraction)
/// of the variance carried by the shared offset `Z₀`. `ρ = 0` degenerates to
/// the Gaussian model (but consumes one extra normal per nanowire); `ρ = 1`
/// moves every region of a wire in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedDisturbance {
    shared_fraction: f64,
}

impl CorrelatedDisturbance {
    /// Creates a correlated model with the given shared variance fraction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `shared_fraction` is outside
    /// `[0, 1]` or not finite.
    pub fn new(shared_fraction: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&shared_fraction) || !shared_fraction.is_finite() {
            return Err(SimError::InvalidConfig {
                reason: format!("shared variance fraction {shared_fraction} is outside [0, 1]"),
            });
        }
        Ok(CorrelatedDisturbance { shared_fraction })
    }

    /// The fraction of each region's variance carried by the shared
    /// per-nanowire offset.
    #[must_use]
    pub fn shared_fraction(&self) -> f64 {
        self.shared_fraction
    }
}

impl DisturbanceModel for CorrelatedDisturbance {
    fn sample_regions(&self, sigmas: &[f64], draws: &mut NormalSource<StdRng>, out: &mut [f64]) {
        let shared = draws.sample();
        let shared_weight = self.shared_fraction.sqrt();
        let local_weight = (1.0 - self.shared_fraction).sqrt();
        for (slot, &sigma) in out.iter_mut().zip(sigmas) {
            *slot = sigma * (shared_weight * shared + local_weight * draws.sample());
        }
    }
}

/// The serializable selection of a stock disturbance model — the form a
/// distribution takes inside [`SimConfig`](crate::SimConfig) and sweep
/// configurations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum DisturbanceKind {
    /// [`GaussianDisturbance`] — the paper's model and the default.
    #[default]
    Gaussian,
    /// [`LaplaceDisturbance`] — heavy-tailed dose noise.
    Laplace,
    /// [`CorrelatedDisturbance`] — shared per-nanowire offset plus
    /// independent region noise.
    Correlated {
        /// Fraction of each region's variance carried by the shared offset.
        shared_fraction: f64,
    },
}

impl DisturbanceKind {
    /// Instantiates the selected model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the kind's parameters are
    /// invalid (a correlated fraction outside `[0, 1]`).
    pub fn model(&self) -> Result<Box<dyn DisturbanceModel>> {
        Ok(match *self {
            DisturbanceKind::Gaussian => Box::new(GaussianDisturbance),
            DisturbanceKind::Laplace => Box::new(LaplaceDisturbance),
            DisturbanceKind::Correlated { shared_fraction } => {
                Box::new(CorrelatedDisturbance::new(shared_fraction)?)
            }
        })
    }
}

impl fmt::Display for DisturbanceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisturbanceKind::Gaussian => write!(f, "gaussian"),
            DisturbanceKind::Laplace => write!(f, "laplace"),
            DisturbanceKind::Correlated { shared_fraction } => {
                write!(f, "correlated(ρ={shared_fraction:.2})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Draws `count` single-region samples with unit sigma.
    fn draw(model: &dyn DisturbanceModel, count: usize, seed: u64) -> Vec<f64> {
        let mut draws = NormalSource::from_seed(seed);
        let mut out = [0.0f64];
        (0..count)
            .map(|_| {
                model.sample_regions(&[1.0], &mut draws, &mut out);
                out[0]
            })
            .collect()
    }

    fn mean_and_variance(samples: &[f64]) -> (f64, f64) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        (mean, variance)
    }

    #[test]
    fn all_stock_models_have_zero_mean_and_unit_variance() {
        for kind in [
            DisturbanceKind::Gaussian,
            DisturbanceKind::Laplace,
            DisturbanceKind::Correlated {
                shared_fraction: 0.5,
            },
        ] {
            let samples = draw(kind.model().unwrap().as_ref(), 40_000, 123);
            let (mean, variance) = mean_and_variance(&samples);
            assert!(mean.abs() < 0.03, "{kind}: mean {mean}");
            assert!((variance - 1.0).abs() < 0.05, "{kind}: variance {variance}");
        }
    }

    #[test]
    fn laplace_tails_are_heavier_than_gaussian() {
        let gaussian = draw(&GaussianDisturbance, 40_000, 9);
        let laplace = draw(&LaplaceDisturbance, 40_000, 9);
        let beyond = |samples: &[f64]| samples.iter().filter(|x| x.abs() > 3.0).count();
        // P(|X| > 3σ): ≈ 0.27 % Gaussian vs ≈ 1.4 % Laplace at equal variance.
        assert!(
            beyond(&laplace) > 2 * beyond(&gaussian),
            "laplace {} vs gaussian {}",
            beyond(&laplace),
            beyond(&gaussian)
        );
        // Excess kurtosis: ≈ 0 for the Gaussian, ≈ 3 for the Laplace.
        let kurtosis = |samples: &[f64]| {
            let (mean, variance) = mean_and_variance(samples);
            samples.iter().map(|x| (x - mean).powi(4)).sum::<f64>()
                / (samples.len() as f64 * variance * variance)
                - 3.0
        };
        assert!(kurtosis(&gaussian).abs() < 0.5);
        assert!(kurtosis(&laplace) > 1.5);
    }

    #[test]
    fn correlated_regions_share_their_offset() {
        let model = CorrelatedDisturbance::new(0.8).unwrap();
        let mut draws = NormalSource::from_seed(11);
        let sigmas = [1.0, 1.0];
        let mut out = [0.0f64; 2];
        let pairs: Vec<(f64, f64)> = (0..20_000)
            .map(|_| {
                model.sample_regions(&sigmas, &mut draws, &mut out);
                (out[0], out[1])
            })
            .collect();
        let covariance = pairs.iter().map(|(a, b)| a * b).sum::<f64>() / pairs.len() as f64;
        // Corr(ΔV_i, ΔV_j) = ρ for i ≠ j.
        assert!(
            (covariance - 0.8).abs() < 0.05,
            "inter-region correlation {covariance}"
        );

        // ρ = 1: every region of a nanowire moves in lockstep.
        let lockstep = CorrelatedDisturbance::new(1.0).unwrap();
        lockstep.sample_regions(&sigmas, &mut draws, &mut out);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn consumption_is_fixed_per_nanowire() {
        // Two different windows or sampled magnitudes never change how many
        // draws a model takes: after sampling the same nanowire count, two
        // sources produce the same next value.
        for kind in [
            DisturbanceKind::Gaussian,
            DisturbanceKind::Laplace,
            DisturbanceKind::Correlated {
                shared_fraction: 0.3,
            },
        ] {
            let model = kind.model().unwrap();
            let mut a = NormalSource::from_seed(77);
            let mut b = NormalSource::from_seed(77);
            let mut out = [0.0f64; 3];
            model.sample_regions(&[0.1, 0.2, 0.3], &mut a, &mut out);
            model.sample_regions(&[10.0, 20.0, 30.0], &mut b, &mut out);
            assert_eq!(a.sample(), b.sample(), "{kind}: consumption diverged");
        }
    }

    #[test]
    fn sample_matrix_matches_the_row_by_row_scalar_path() {
        // The batched entry point (including the Gaussian's fill-based
        // override) must produce the exact deviations of looping
        // sample_regions over the rows — same stream, same values.
        for kind in [
            DisturbanceKind::Gaussian,
            DisturbanceKind::Laplace,
            DisturbanceKind::Correlated {
                shared_fraction: 0.4,
            },
        ] {
            let model = kind.model().unwrap();
            let regions = 3;
            let sigmas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2];
            let mut batched = NormalSource::from_seed(55);
            let mut scalar = NormalSource::from_seed(55);
            let mut batched_out = [0.0f64; 12];
            let mut scalar_out = [0.0f64; 12];
            // Two consecutive matrices: the cached Box–Muller half must
            // carry across batch calls exactly as it does across rows.
            for _ in 0..2 {
                model.sample_matrix(&sigmas, regions, &mut batched, &mut batched_out);
                for (row_sigmas, row_out) in sigmas
                    .chunks_exact(regions)
                    .zip(scalar_out.chunks_exact_mut(regions))
                {
                    model.sample_regions(row_sigmas, &mut scalar, row_out);
                }
                assert_eq!(batched_out, scalar_out, "{kind}: batched path diverged");
            }
            assert_eq!(batched.sample(), scalar.sample(), "{kind}: stream desync");
        }
    }

    #[test]
    fn invalid_correlation_fractions_are_rejected() {
        assert!(CorrelatedDisturbance::new(-0.1).is_err());
        assert!(CorrelatedDisturbance::new(1.1).is_err());
        assert!(CorrelatedDisturbance::new(f64::NAN).is_err());
        assert!(DisturbanceKind::Correlated {
            shared_fraction: 2.0
        }
        .model()
        .is_err());
        assert!(
            CorrelatedDisturbance::new(0.0)
                .unwrap()
                .shared_fraction()
                .abs()
                < f64::EPSILON
        );
    }

    #[test]
    fn kinds_render_and_default_to_gaussian() {
        assert_eq!(DisturbanceKind::default(), DisturbanceKind::Gaussian);
        assert_eq!(DisturbanceKind::Gaussian.to_string(), "gaussian");
        assert_eq!(DisturbanceKind::Laplace.to_string(), "laplace");
        assert_eq!(
            DisturbanceKind::Correlated {
                shared_fraction: 0.5
            }
            .to_string(),
            "correlated(ρ=0.50)"
        );
    }
}
