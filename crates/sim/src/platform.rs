//! The simulation platform of Section 6.1: one call takes a code choice to
//! every quantity the paper's figures report — fabrication complexity,
//! variability statistics, cave and crossbar yield, and effective bit area.

use serde::{Deserialize, Serialize};

use crossbar_array::{
    AddressabilityProfile, CaveYield, ContactGroupLayout, CrossbarArea, DefectMap, HalfCave,
};
use mspt_fabrication::{FabricationCost, PatternMatrix, VariabilityMatrix};
use nanowire_codes::{CodeSequence, CodeSpec};

use crate::config::SimConfig;
use crate::defect::DefectKind;
use crate::error::{Result, SimError};
use crate::stage::{StageCache, VariabilityStage};

/// The outcome of evaluating one decoder design on the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformReport {
    /// The evaluated code.
    pub code: CodeSpec,
    /// Number of nanowires per half cave used in the evaluation.
    pub nanowires_per_half_cave: usize,
    /// Total fabrication complexity `Φ` of one half cave.
    pub fabrication_steps: usize,
    /// Average variability `‖Σ‖₁ / (N·M)` in units of σ_T².
    pub mean_variability: f64,
    /// Largest normalised region deviation `sqrt(ν)` of the half cave.
    pub max_normalized_sigma: f64,
    /// Cave (nanowire) yield `Y`.
    pub cave_yield: f64,
    /// Crossbar (crosspoint) yield `Y²`.
    pub crossbar_yield: f64,
    /// Effective density `D_EFF = D_RAW · Y²` in bits.
    pub effective_bits: f64,
    /// Raw area per crosspoint in nm².
    pub raw_bit_area: f64,
    /// Effective area per functional bit in nm² (Fig. 8).
    pub effective_bit_area: f64,
    /// Number of contact groups per half cave.
    pub contact_groups: usize,
    /// The fabrication-defect selection the report was evaluated under.
    pub defects: DefectKind,
    /// Fraction of crosspoints surviving the sampled defect map — `1` for a
    /// defect-free ([`DefectKind::None`]) evaluation.
    pub defect_survival: f64,
    /// Composite crossbar yield: decoder yield `Y²` × defect survival.
    /// Equals [`crossbar_yield`](PlatformReport::crossbar_yield) exactly for
    /// a defect-free evaluation.
    pub composite_yield: f64,
    /// Composite effective density `D_RAW · Y² · survival` in bits.
    pub composite_effective_bits: f64,
}

/// The Section 6.1 simulation platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationPlatform {
    config: SimConfig,
}

impl SimulationPlatform {
    /// Creates a platform around a configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        SimulationPlatform { config }
    }

    /// The configuration of the platform.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Generates the code sequence of the configured code.
    ///
    /// # Errors
    ///
    /// Propagates code-generation errors.
    pub fn code_sequence(&self) -> Result<CodeSequence> {
        Ok(self
            .config
            .code()
            .generate_with(self.config.code_budgets())?)
    }

    /// The half-cave assignment (the configured code applied cyclically to
    /// the configured number of nanowires).
    ///
    /// # Errors
    ///
    /// Propagates code and crossbar errors.
    pub fn half_cave(&self) -> Result<HalfCave> {
        Ok(HalfCave::new(
            self.config.nanowires_per_half_cave(),
            &self.code_sequence()?,
        )?)
    }

    /// The variability matrix `Σ` of the configured half cave.
    ///
    /// # Errors
    ///
    /// Propagates fabrication and device-physics errors.
    pub fn variability(&self) -> Result<VariabilityMatrix> {
        let pattern = self.half_cave()?.pattern()?;
        Ok(VariabilityMatrix::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
            &self.config.variability_model()?,
        )?)
    }

    /// The fabrication complexity `Φ` of the configured half cave.
    ///
    /// # Errors
    ///
    /// Propagates fabrication and device-physics errors.
    pub fn fabrication_cost(&self) -> Result<FabricationCost> {
        let pattern = self.half_cave()?.pattern()?;
        Ok(FabricationCost::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
        )?)
    }

    /// The fabrication complexity of a half cave with an explicit nanowire
    /// count (Fig. 5 uses `N = 10` independently of the crossbar geometry).
    ///
    /// # Errors
    ///
    /// Propagates code, fabrication and device-physics errors.
    pub fn fabrication_cost_for(&self, nanowires: usize) -> Result<FabricationCost> {
        let sequence = self.code_sequence()?.take_cyclic(nanowires)?;
        let pattern = PatternMatrix::from_sequence(&sequence)?;
        Ok(FabricationCost::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
        )?)
    }

    /// The variability matrix of a half cave with an explicit nanowire count
    /// (Fig. 6 uses `N = 20`).
    ///
    /// # Errors
    ///
    /// Propagates code, fabrication and device-physics errors.
    pub fn variability_for(&self, nanowires: usize) -> Result<VariabilityMatrix> {
        let sequence = self.code_sequence()?.take_cyclic(nanowires)?;
        let pattern = PatternMatrix::from_sequence(&sequence)?;
        Ok(VariabilityMatrix::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
            &self.config.variability_model()?,
        )?)
    }

    /// The contact-group layout of the configured half cave.
    ///
    /// # Errors
    ///
    /// Propagates crossbar errors.
    pub fn contact_layout(&self) -> Result<ContactGroupLayout> {
        Ok(ContactGroupLayout::new(
            self.config.nanowires_per_half_cave(),
            self.config.code().space_size(),
            *self.config.layout(),
        )?)
    }

    /// The analytic per-nanowire addressability profile of the configured
    /// half cave.
    ///
    /// # Errors
    ///
    /// Propagates crossbar and device-physics errors.
    pub fn addressability(&self) -> Result<AddressabilityProfile> {
        Ok(AddressabilityProfile::from_variability(
            &self.variability()?,
            &self.config.variability_model()?,
            self.config.decision_window()?,
        )?)
    }

    /// The cave and crossbar yield of the configured design.
    ///
    /// # Errors
    ///
    /// Propagates crossbar errors.
    pub fn cave_yield(&self) -> Result<CaveYield> {
        Ok(CaveYield::compute(
            &self.addressability()?,
            &self.contact_layout()?,
        )?)
    }

    /// Samples the defect map of the configured [`DefectKind`] serially —
    /// `None` for a defect-free configuration. Bit-identical to the
    /// engine-sharded
    /// [`ExecutionEngine::sample_defect_map`](crate::ExecutionEngine::sample_defect_map)
    /// of the same model and seed, because both assemble the same
    /// independently seeded chunks.
    ///
    /// # Errors
    ///
    /// Propagates crossbar-specification errors.
    pub fn sample_defect_map(&self) -> Result<Option<DefectMap>> {
        self.sample_defect_map_with(|model, rows, columns, seed| {
            Ok(model.sample_map(rows, columns, seed)?)
        })
    }

    /// [`SimulationPlatform::sample_defect_map`] with an explicit map
    /// sampler — the single place that decides *whether* a map is drawn and
    /// *which* dimensions and seed it gets, so the serial path and the
    /// engine-sharded path (which passes
    /// [`ExecutionEngine::sample_defect_map`](crate::ExecutionEngine::sample_defect_map)
    /// here) can never diverge in dispatch.
    ///
    /// # Errors
    ///
    /// Propagates crossbar-specification and sampler errors.
    pub fn sample_defect_map_with<F>(&self, sampler: F) -> Result<Option<DefectMap>>
    where
        F: FnOnce(&crossbar_array::DefectModel, usize, usize, u64) -> Result<DefectMap>,
    {
        match self.config.defects() {
            DefectKind::None => Ok(None),
            DefectKind::Sampled(defects) => {
                let edge = self.config.crossbar_spec()?.nanowires_per_layer();
                Ok(Some(sampler(&defects.model(), edge, edge, defects.seed())?))
            }
        }
    }

    /// Runs the full evaluation and collects every reported quantity,
    /// sampling the configured defect map serially.
    ///
    /// Callers holding an [`ExecutionEngine`](crate::ExecutionEngine) should
    /// prefer [`Evaluation`](crate::Evaluation), which runs the same
    /// pipeline through the engine's report and stage caches.
    ///
    /// # Errors
    ///
    /// Propagates errors from every stage of the pipeline.
    pub fn evaluate(&self) -> Result<PlatformReport> {
        self.evaluate_with_defect_map(self.sample_defect_map()?.as_ref())
    }

    /// [`SimulationPlatform::evaluate`] with an externally sampled defect
    /// map — the entry point the execution engine uses to shard map
    /// generation across its threads while keeping the composition here.
    ///
    /// The map must correspond to the configured [`DefectKind`]: `Some` of
    /// the right dimensions for [`DefectKind::Sampled`], `None` for
    /// [`DefectKind::None`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the map's presence or
    /// dimensions do not match the configuration, or propagates pipeline
    /// errors.
    pub fn evaluate_with_defect_map(&self, map: Option<&DefectMap>) -> Result<PlatformReport> {
        self.evaluate_with_stage_cache(&StageCache::disabled(), map)
    }

    /// The memoized variability stage: the variability matrix and the
    /// fabrication cost, which share one pattern/ladder build. This is the
    /// root stage both the report pipeline and the Monte-Carlo validator
    /// hang off — a sweep over the defect axis (or the disturbance kind)
    /// hits this slot instead of regenerating the pattern per point.
    pub(crate) fn variability_stage(&self, stages: &StageCache) -> Result<VariabilityStage> {
        stages.variability(&self.config, || {
            // Σ and Φ share the pattern and the doping ladder, so one
            // stage computes both from a single pattern build.
            let pattern = self.half_cave()?.pattern()?;
            let ladder = self.config.doping_ladder()?;
            Ok(VariabilityStage {
                variability: VariabilityMatrix::from_pattern(
                    &pattern,
                    &ladder,
                    &self.config.variability_model()?,
                )?,
                cost: FabricationCost::from_pattern(&pattern, &ladder)?,
            })
        })
    }

    /// [`SimulationPlatform::evaluate_with_defect_map`] through an explicit
    /// per-stage memo table — the stage-graph entry point the
    /// [`ExecutionEngine`](crate::ExecutionEngine) routes every cached
    /// evaluation through. Each pipeline stage (variability, contact layout,
    /// addressability, cave yield, crossbar area, defect composition) looks
    /// up its own fingerprint in `stages` first, so a configuration change
    /// recomputes only the stages whose declared read set it touches (see
    /// [`Stage::reads`](crate::Stage::reads)).
    ///
    /// With a [`StageCache::disabled`] cache every stage is a leader-path
    /// miss and the evaluation is bit-identical to the pre-stage monolith —
    /// the configuration behind [`SimulationPlatform::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the map's presence or
    /// dimensions do not match the configuration (checked **before** any
    /// memo lookup, so a warm cache never masks a mismatched map), or
    /// propagates pipeline errors.
    pub fn evaluate_with_stage_cache(
        &self,
        stages: &StageCache,
        map: Option<&DefectMap>,
    ) -> Result<PlatformReport> {
        let spec = self.config.crossbar_spec()?;
        let edge = spec.nanowires_per_layer();
        check_defect_map(self.config.defects(), map, edge)?;
        stages.composite(&self.config, || {
            let code = self.config.code();
            let staged = self.variability_stage(stages)?;
            let layout = stages.contact_layout(&self.config, || self.contact_layout())?;
            let profile = stages.addressability(&self.config, || {
                Ok(AddressabilityProfile::from_variability(
                    &staged.variability,
                    &self.config.variability_model()?,
                    self.config.decision_window()?,
                )?)
            })?;
            let yield_ =
                stages.cave_yield(&self.config, || Ok(CaveYield::compute(&profile, &layout)?))?;
            let area = stages.crossbar_area(&self.config, || {
                Ok(CrossbarArea::compute(&spec, code.code_length(), &layout)?)
            })?;
            let effective_bit_area = area.effective_bit_area(&spec, &yield_)?;
            let effective_bits = yield_.effective_bits(spec.raw_crosspoints());

            let (defect_survival, composite_yield, composite_effective_bits) =
                compose_defect_quantities(
                    self.config.defects(),
                    map,
                    edge,
                    &yield_,
                    effective_bits,
                    spec.raw_crosspoints(),
                )?;

            Ok(PlatformReport {
                code,
                nanowires_per_half_cave: self.config.nanowires_per_half_cave(),
                fabrication_steps: staged.cost.total(),
                mean_variability: staged.variability.mean_in_sigma_units(),
                max_normalized_sigma: staged.variability.normalized_map().max(),
                cave_yield: yield_.nanowire_yield(),
                crossbar_yield: yield_.crossbar_yield(),
                effective_bits,
                raw_bit_area: area.raw_bit_area(&spec).value(),
                effective_bit_area: effective_bit_area.value(),
                contact_groups: layout.group_count(),
                defects: self.config.defects(),
                defect_survival,
                composite_yield,
                composite_effective_bits,
            })
        })
    }
}

/// Presence and dimension checks of an externally supplied defect map — the
/// three error cases of [`SimulationPlatform::evaluate_with_defect_map`],
/// factored out so the staged path rejects a mismatched map *before* any
/// memo lookup (a composite cache hit must never mask one).
fn check_defect_map(defects: DefectKind, map: Option<&DefectMap>, edge: usize) -> Result<()> {
    match (defects, map) {
        (DefectKind::None, None) => Ok(()),
        (DefectKind::Sampled(_), Some(map)) => {
            if map.rows() != edge || map.columns() != edge {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "defect map is {}x{} but the crossbar is {edge}x{edge}",
                        map.rows(),
                        map.columns()
                    ),
                });
            }
            Ok(())
        }
        (DefectKind::None, Some(_)) => Err(SimError::InvalidConfig {
            reason: "defect map supplied for a defect-free configuration".to_string(),
        }),
        (DefectKind::Sampled(_), None) => Err(SimError::InvalidConfig {
            reason: "defect-configured evaluation needs a sampled defect map".to_string(),
        }),
    }
}

/// The defect-composition quantities of a report:
/// `(defect_survival, composite_yield, composite_effective_bits)`. A
/// defect-free evaluation returns the decoder quantities bit-for-bit (no
/// multiplication by `1.0` that could perturb them).
fn compose_defect_quantities(
    defects: DefectKind,
    map: Option<&DefectMap>,
    edge: usize,
    yield_: &CaveYield,
    effective_bits: f64,
    raw_crosspoints: u64,
) -> Result<(f64, f64, f64)> {
    check_defect_map(defects, map, edge)?;
    Ok(match map {
        None => (1.0, yield_.crossbar_yield(), effective_bits),
        Some(map) => {
            let composite = map.compose_with(yield_);
            (
                composite.defect_survival,
                composite.crossbar_yield,
                composite.effective_bits(raw_crosspoints),
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{CodeKind, LogicLevel};

    fn platform(kind: CodeKind, length: usize) -> SimulationPlatform {
        let code = CodeSpec::new(kind, LogicLevel::BINARY, length).unwrap();
        SimulationPlatform::new(SimConfig::paper_defaults(code).unwrap())
    }

    #[test]
    fn evaluation_produces_consistent_quantities() {
        let report = platform(CodeKind::BalancedGray, 10).evaluate().unwrap();
        assert!(report.cave_yield > 0.0 && report.cave_yield <= 1.0);
        assert!((report.crossbar_yield - report.cave_yield.powi(2)).abs() < 1e-12);
        assert!(report.effective_bits > 0.0);
        assert!(report.effective_bit_area >= report.raw_bit_area);
        assert!(report.fabrication_steps >= 2 * report.nanowires_per_half_cave - 1);
        assert!(report.mean_variability >= 1.0);
        assert!(report.max_normalized_sigma >= 1.0);
        assert!(report.contact_groups >= 1);
    }

    #[test]
    fn defect_free_reports_keep_composite_equal_to_decoder_quantities() {
        let report = platform(CodeKind::Tree, 8).evaluate().unwrap();
        assert_eq!(report.defects, DefectKind::None);
        assert_eq!(report.defect_survival, 1.0);
        assert_eq!(
            report.composite_yield.to_bits(),
            report.crossbar_yield.to_bits()
        );
        assert_eq!(
            report.composite_effective_bits.to_bits(),
            report.effective_bits.to_bits()
        );
    }

    #[test]
    fn defect_composition_reduces_yield_and_bits() {
        let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
        let defects = DefectKind::sampled(0.05, 0.02, 2_009).unwrap();
        let config = SimConfig::paper_defaults(code)
            .unwrap()
            .with_defects(defects);
        let report = SimulationPlatform::new(config).evaluate().unwrap();
        assert_eq!(report.defects, defects);
        assert!(report.defect_survival > 0.0 && report.defect_survival < 1.0);
        assert!(
            (report.composite_yield - report.crossbar_yield * report.defect_survival).abs() < 1e-15
        );
        assert!(report.composite_yield < report.crossbar_yield);
        assert!(report.composite_effective_bits < report.effective_bits);
        // The survival lands near the analytic expectation for these rates
        // (a single sampled instance; broken wires kill whole rows, so the
        // variance is dominated by the 363-wire breakage draw).
        let expected = 0.95 * 0.95 * 0.98;
        assert!(
            (report.defect_survival - expected).abs() < 0.05,
            "survival {} vs expected {expected}",
            report.defect_survival
        );
    }

    #[test]
    fn mismatched_defect_maps_are_rejected() {
        let defective = platform(CodeKind::Tree, 8)
            .config()
            .clone()
            .with_defects(DefectKind::sampled(0.05, 0.02, 1).unwrap());
        let defective = SimulationPlatform::new(defective);
        // A defect-configured evaluation without a map is an error...
        assert!(defective.evaluate_with_defect_map(None).is_err());
        // ...as is a map of the wrong dimensions...
        let small = crossbar_array::DefectModel::new(0.05, 0.02)
            .unwrap()
            .sample_map(4, 4, 1)
            .unwrap();
        assert!(defective.evaluate_with_defect_map(Some(&small)).is_err());
        // ...and a map supplied to a defect-free configuration.
        let clean = platform(CodeKind::Tree, 8);
        assert!(clean.evaluate_with_defect_map(Some(&small)).is_err());
        assert!(clean.sample_defect_map().unwrap().is_none());
    }

    #[test]
    fn gray_never_does_worse_than_tree_on_the_platform() {
        let tree = platform(CodeKind::Tree, 8).evaluate().unwrap();
        let gray = platform(CodeKind::Gray, 8).evaluate().unwrap();
        assert!(gray.fabrication_steps <= tree.fabrication_steps);
        assert!(gray.mean_variability <= tree.mean_variability);
        assert!(gray.crossbar_yield >= tree.crossbar_yield);
        assert!(gray.effective_bit_area <= tree.effective_bit_area);
    }

    #[test]
    fn longer_tree_codes_improve_yield_in_the_paper_range() {
        // Fig. 7: yield increases with code length up to M ≈ 10 for TC.
        let short = platform(CodeKind::Tree, 6).evaluate().unwrap();
        let long = platform(CodeKind::Tree, 10).evaluate().unwrap();
        assert!(long.crossbar_yield > short.crossbar_yield);
        // Fig. 8: and the effective bit area shrinks accordingly.
        assert!(long.effective_bit_area < short.effective_bit_area);
    }

    #[test]
    fn intermediate_accessors_agree_with_the_report() {
        let p = platform(CodeKind::Hot, 6);
        let report = p.evaluate().unwrap();
        assert_eq!(
            p.fabrication_cost().unwrap().total(),
            report.fabrication_steps
        );
        let yield_ = p.cave_yield().unwrap();
        assert!((yield_.crossbar_yield() - report.crossbar_yield).abs() < 1e-12);
        assert_eq!(
            p.contact_layout().unwrap().group_count(),
            report.contact_groups
        );
        assert_eq!(p.half_cave().unwrap().nanowire_count(), 20);
        assert_eq!(p.config().nanowires_per_half_cave(), 20);
    }

    #[test]
    fn explicit_nanowire_counts_for_standalone_figures() {
        let p = platform(CodeKind::Gray, 8);
        let cost = p.fabrication_cost_for(10).unwrap();
        assert_eq!(cost.step_count(), 10);
        let variability = p.variability_for(20).unwrap();
        assert_eq!(variability.nanowire_count(), 20);
        assert_eq!(variability.region_count(), 8);
    }
}
