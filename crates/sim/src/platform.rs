//! The simulation platform of Section 6.1: one call takes a code choice to
//! every quantity the paper's figures report — fabrication complexity,
//! variability statistics, cave and crossbar yield, and effective bit area.

use serde::{Deserialize, Serialize};

use crossbar_array::{
    AddressabilityProfile, CaveYield, ContactGroupLayout, CrossbarArea, HalfCave,
};
use mspt_fabrication::{FabricationCost, PatternMatrix, VariabilityMatrix};
use nanowire_codes::{CodeSequence, CodeSpec};

use crate::config::SimConfig;
use crate::error::Result;

/// The outcome of evaluating one decoder design on the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformReport {
    /// The evaluated code.
    pub code: CodeSpec,
    /// Number of nanowires per half cave used in the evaluation.
    pub nanowires_per_half_cave: usize,
    /// Total fabrication complexity `Φ` of one half cave.
    pub fabrication_steps: usize,
    /// Average variability `‖Σ‖₁ / (N·M)` in units of σ_T².
    pub mean_variability: f64,
    /// Largest normalised region deviation `sqrt(ν)` of the half cave.
    pub max_normalized_sigma: f64,
    /// Cave (nanowire) yield `Y`.
    pub cave_yield: f64,
    /// Crossbar (crosspoint) yield `Y²`.
    pub crossbar_yield: f64,
    /// Effective density `D_EFF = D_RAW · Y²` in bits.
    pub effective_bits: f64,
    /// Raw area per crosspoint in nm².
    pub raw_bit_area: f64,
    /// Effective area per functional bit in nm² (Fig. 8).
    pub effective_bit_area: f64,
    /// Number of contact groups per half cave.
    pub contact_groups: usize,
}

/// The Section 6.1 simulation platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationPlatform {
    config: SimConfig,
}

impl SimulationPlatform {
    /// Creates a platform around a configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        SimulationPlatform { config }
    }

    /// The configuration of the platform.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Generates the code sequence of the configured code.
    ///
    /// # Errors
    ///
    /// Propagates code-generation errors.
    pub fn code_sequence(&self) -> Result<CodeSequence> {
        Ok(self
            .config
            .code()
            .generate_with(self.config.code_budgets())?)
    }

    /// The half-cave assignment (the configured code applied cyclically to
    /// the configured number of nanowires).
    ///
    /// # Errors
    ///
    /// Propagates code and crossbar errors.
    pub fn half_cave(&self) -> Result<HalfCave> {
        Ok(HalfCave::new(
            self.config.nanowires_per_half_cave(),
            &self.code_sequence()?,
        )?)
    }

    /// The variability matrix `Σ` of the configured half cave.
    ///
    /// # Errors
    ///
    /// Propagates fabrication and device-physics errors.
    pub fn variability(&self) -> Result<VariabilityMatrix> {
        let pattern = self.half_cave()?.pattern()?;
        Ok(VariabilityMatrix::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
            &self.config.variability_model()?,
        )?)
    }

    /// The fabrication complexity `Φ` of the configured half cave.
    ///
    /// # Errors
    ///
    /// Propagates fabrication and device-physics errors.
    pub fn fabrication_cost(&self) -> Result<FabricationCost> {
        let pattern = self.half_cave()?.pattern()?;
        Ok(FabricationCost::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
        )?)
    }

    /// The fabrication complexity of a half cave with an explicit nanowire
    /// count (Fig. 5 uses `N = 10` independently of the crossbar geometry).
    ///
    /// # Errors
    ///
    /// Propagates code, fabrication and device-physics errors.
    pub fn fabrication_cost_for(&self, nanowires: usize) -> Result<FabricationCost> {
        let sequence = self.code_sequence()?.take_cyclic(nanowires)?;
        let pattern = PatternMatrix::from_sequence(&sequence)?;
        Ok(FabricationCost::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
        )?)
    }

    /// The variability matrix of a half cave with an explicit nanowire count
    /// (Fig. 6 uses `N = 20`).
    ///
    /// # Errors
    ///
    /// Propagates code, fabrication and device-physics errors.
    pub fn variability_for(&self, nanowires: usize) -> Result<VariabilityMatrix> {
        let sequence = self.code_sequence()?.take_cyclic(nanowires)?;
        let pattern = PatternMatrix::from_sequence(&sequence)?;
        Ok(VariabilityMatrix::from_pattern(
            &pattern,
            &self.config.doping_ladder()?,
            &self.config.variability_model()?,
        )?)
    }

    /// The contact-group layout of the configured half cave.
    ///
    /// # Errors
    ///
    /// Propagates crossbar errors.
    pub fn contact_layout(&self) -> Result<ContactGroupLayout> {
        Ok(ContactGroupLayout::new(
            self.config.nanowires_per_half_cave(),
            self.config.code().space_size(),
            *self.config.layout(),
        )?)
    }

    /// The analytic per-nanowire addressability profile of the configured
    /// half cave.
    ///
    /// # Errors
    ///
    /// Propagates crossbar and device-physics errors.
    pub fn addressability(&self) -> Result<AddressabilityProfile> {
        Ok(AddressabilityProfile::from_variability(
            &self.variability()?,
            &self.config.variability_model()?,
            self.config.decision_window()?,
        )?)
    }

    /// The cave and crossbar yield of the configured design.
    ///
    /// # Errors
    ///
    /// Propagates crossbar errors.
    pub fn cave_yield(&self) -> Result<CaveYield> {
        Ok(CaveYield::compute(
            &self.addressability()?,
            &self.contact_layout()?,
        )?)
    }

    /// Runs the full evaluation and collects every reported quantity.
    ///
    /// # Errors
    ///
    /// Propagates errors from every stage of the pipeline.
    pub fn evaluate(&self) -> Result<PlatformReport> {
        let code = self.config.code();
        let variability = self.variability()?;
        let cost = self.fabrication_cost()?;
        let layout = self.contact_layout()?;
        let profile = AddressabilityProfile::from_variability(
            &variability,
            &self.config.variability_model()?,
            self.config.decision_window()?,
        )?;
        let yield_ = CaveYield::compute(&profile, &layout)?;
        let spec = self.config.crossbar_spec()?;
        let area = CrossbarArea::compute(&spec, code.code_length(), &layout)?;
        let effective_bit_area = area.effective_bit_area(&spec, &yield_)?;

        Ok(PlatformReport {
            code,
            nanowires_per_half_cave: self.config.nanowires_per_half_cave(),
            fabrication_steps: cost.total(),
            mean_variability: variability.mean_in_sigma_units(),
            max_normalized_sigma: variability.normalized_map().max(),
            cave_yield: yield_.nanowire_yield(),
            crossbar_yield: yield_.crossbar_yield(),
            effective_bits: yield_.effective_bits(spec.raw_crosspoints()),
            raw_bit_area: area.raw_bit_area(&spec).value(),
            effective_bit_area: effective_bit_area.value(),
            contact_groups: layout.group_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{CodeKind, LogicLevel};

    fn platform(kind: CodeKind, length: usize) -> SimulationPlatform {
        let code = CodeSpec::new(kind, LogicLevel::BINARY, length).unwrap();
        SimulationPlatform::new(SimConfig::paper_defaults(code).unwrap())
    }

    #[test]
    fn evaluation_produces_consistent_quantities() {
        let report = platform(CodeKind::BalancedGray, 10).evaluate().unwrap();
        assert!(report.cave_yield > 0.0 && report.cave_yield <= 1.0);
        assert!((report.crossbar_yield - report.cave_yield.powi(2)).abs() < 1e-12);
        assert!(report.effective_bits > 0.0);
        assert!(report.effective_bit_area >= report.raw_bit_area);
        assert!(report.fabrication_steps >= 2 * report.nanowires_per_half_cave - 1);
        assert!(report.mean_variability >= 1.0);
        assert!(report.max_normalized_sigma >= 1.0);
        assert!(report.contact_groups >= 1);
    }

    #[test]
    fn gray_never_does_worse_than_tree_on_the_platform() {
        let tree = platform(CodeKind::Tree, 8).evaluate().unwrap();
        let gray = platform(CodeKind::Gray, 8).evaluate().unwrap();
        assert!(gray.fabrication_steps <= tree.fabrication_steps);
        assert!(gray.mean_variability <= tree.mean_variability);
        assert!(gray.crossbar_yield >= tree.crossbar_yield);
        assert!(gray.effective_bit_area <= tree.effective_bit_area);
    }

    #[test]
    fn longer_tree_codes_improve_yield_in_the_paper_range() {
        // Fig. 7: yield increases with code length up to M ≈ 10 for TC.
        let short = platform(CodeKind::Tree, 6).evaluate().unwrap();
        let long = platform(CodeKind::Tree, 10).evaluate().unwrap();
        assert!(long.crossbar_yield > short.crossbar_yield);
        // Fig. 8: and the effective bit area shrinks accordingly.
        assert!(long.effective_bit_area < short.effective_bit_area);
    }

    #[test]
    fn intermediate_accessors_agree_with_the_report() {
        let p = platform(CodeKind::Hot, 6);
        let report = p.evaluate().unwrap();
        assert_eq!(
            p.fabrication_cost().unwrap().total(),
            report.fabrication_steps
        );
        let yield_ = p.cave_yield().unwrap();
        assert!((yield_.crossbar_yield() - report.crossbar_yield).abs() < 1e-12);
        assert_eq!(
            p.contact_layout().unwrap().group_count(),
            report.contact_groups
        );
        assert_eq!(p.half_cave().unwrap().nanowire_count(), 20);
        assert_eq!(p.config().nanowires_per_half_cave(), 20);
    }

    #[test]
    fn explicit_nanowire_counts_for_standalone_figures() {
        let p = platform(CodeKind::Gray, 8);
        let cost = p.fabrication_cost_for(10).unwrap();
        assert_eq!(cost.step_count(), 10);
        let variability = p.variability_for(20).unwrap();
        assert_eq!(variability.nanowire_count(), 20);
        assert_eq!(variability.region_count(), 8);
    }
}
