//! Sensitivity (ablation) sweeps over the calibration constants the
//! reproduction had to choose where the paper does not pin a value: the
//! per-dose variability σ_T, the addressability decision window, the contact
//! alignment tolerance and the half-cave size.
//!
//! These sweeps back the "Design choices flagged for ablation" section of
//! DESIGN.md: the paper's qualitative conclusions (optimised arrangements
//! win, longer codes help up to a point) must hold across the plausible range
//! of every constant, not just at the chosen default.

use serde::{Deserialize, Serialize};

use crossbar_array::LayoutRules;
use device_physics::{Nanometers, Volts};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

use crate::config::SimConfig;
use crate::error::{Result, SimError};
use crate::platform::SimulationPlatform;

/// One point of a sensitivity sweep: the swept parameter value and the
/// resulting crossbar yield / bit area of a pair of designs (a baseline code
/// and its optimised arrangement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The value of the swept parameter (unit depends on the sweep).
    pub parameter: f64,
    /// Crossbar yield of the baseline code (TC or HC).
    pub baseline_yield: f64,
    /// Crossbar yield of the optimised code (BGC or AHC).
    pub optimised_yield: f64,
    /// Effective bit area of the baseline code in nm².
    pub baseline_bit_area: f64,
    /// Effective bit area of the optimised code in nm².
    pub optimised_bit_area: f64,
}

impl SensitivityPoint {
    /// Whether the optimised arrangement still wins at this parameter value
    /// (the paper's central qualitative claim).
    #[must_use]
    pub fn optimised_wins(&self) -> bool {
        self.optimised_yield >= self.baseline_yield
            && self.optimised_bit_area <= self.baseline_bit_area
    }
}

/// A full sensitivity sweep of one calibration constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivitySweep {
    /// Human-readable name of the swept parameter.
    pub parameter_name: String,
    /// The swept points, in increasing parameter order.
    pub points: Vec<SensitivityPoint>,
}

impl SensitivitySweep {
    /// Whether the optimised arrangement wins at every swept value.
    #[must_use]
    pub fn optimised_always_wins(&self) -> bool {
        self.points.iter().all(SensitivityPoint::optimised_wins)
    }
}

fn evaluate_pair(
    base: &SimConfig,
    baseline: CodeSpec,
    optimised: CodeSpec,
    parameter: f64,
) -> Result<SensitivityPoint> {
    let baseline_report = SimulationPlatform::new(base.clone().with_code(baseline)).evaluate()?;
    let optimised_report = SimulationPlatform::new(base.clone().with_code(optimised)).evaluate()?;
    Ok(SensitivityPoint {
        parameter,
        baseline_yield: baseline_report.crossbar_yield,
        optimised_yield: optimised_report.crossbar_yield,
        baseline_bit_area: baseline_report.effective_bit_area,
        optimised_bit_area: optimised_report.effective_bit_area,
    })
}

fn default_pair(radix: LogicLevel, code_length: usize) -> Result<(CodeSpec, CodeSpec)> {
    Ok((
        CodeSpec::new(CodeKind::Tree, radix, code_length)?,
        CodeSpec::new(CodeKind::BalancedGray, radix, code_length)?,
    ))
}

/// Sweeps the per-dose threshold-voltage deviation σ_T (in millivolts).
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`] for an empty value list, or propagates
/// evaluation errors.
pub fn sigma_sensitivity(
    base: &SimConfig,
    sigma_millivolts: &[f64],
    code_length: usize,
) -> Result<SensitivitySweep> {
    if sigma_millivolts.is_empty() {
        return Err(SimError::EmptySweep);
    }
    let (baseline, optimised) = default_pair(LogicLevel::BINARY, code_length)?;
    let mut points = Vec::with_capacity(sigma_millivolts.len());
    for &sigma in sigma_millivolts {
        let config = base
            .clone()
            .with_sigma_per_dose(Volts::from_millivolts(sigma))?;
        points.push(evaluate_pair(&config, baseline, optimised, sigma)?);
    }
    Ok(SensitivitySweep {
        parameter_name: "sigma_per_dose_mv".to_string(),
        points,
    })
}

/// Sweeps the addressability decision window (in millivolts).
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`] for an empty value list, or propagates
/// evaluation errors.
pub fn window_sensitivity(
    base: &SimConfig,
    window_millivolts: &[f64],
    code_length: usize,
) -> Result<SensitivitySweep> {
    if window_millivolts.is_empty() {
        return Err(SimError::EmptySweep);
    }
    let (baseline, optimised) = default_pair(LogicLevel::BINARY, code_length)?;
    let mut points = Vec::with_capacity(window_millivolts.len());
    for &window in window_millivolts {
        let config = base.clone().with_window(Volts::from_millivolts(window));
        points.push(evaluate_pair(&config, baseline, optimised, window)?);
    }
    Ok(SensitivitySweep {
        parameter_name: "decision_window_mv".to_string(),
        points,
    })
}

/// Sweeps the contact alignment tolerance (in nanometres) — the constant
/// behind the boundary-nanowire losses of ref. \[6\].
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`] for an empty value list, or propagates
/// evaluation errors.
pub fn alignment_sensitivity(
    base: &SimConfig,
    tolerance_nanometers: &[f64],
    code_length: usize,
) -> Result<SensitivitySweep> {
    if tolerance_nanometers.is_empty() {
        return Err(SimError::EmptySweep);
    }
    let (baseline, optimised) = default_pair(LogicLevel::BINARY, code_length)?;
    let mut points = Vec::with_capacity(tolerance_nanometers.len());
    for &tolerance in tolerance_nanometers {
        let rules = LayoutRules::new(
            base.layout().litho_pitch(),
            base.layout().nanowire_pitch(),
            base.layout().min_contact_width_factor(),
            Nanometers::new(tolerance),
        )?;
        let config = SimConfig::new(
            base.code(),
            base.nanowires_per_half_cave(),
            base.raw_bits(),
            rules,
            *base.threshold_model(),
            base.sigma_per_dose(),
            base.supply_range(),
        )?;
        points.push(evaluate_pair(&config, baseline, optimised, tolerance)?);
    }
    Ok(SensitivitySweep {
        parameter_name: "alignment_tolerance_nm".to_string(),
        points,
    })
}

/// Sweeps the number of nanowires per half cave — the constant the paper
/// leaves implicit ("fixed according to the raw crosspoint density").
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`] for an empty value list, or propagates
/// evaluation errors.
pub fn half_cave_sensitivity(
    base: &SimConfig,
    nanowire_counts: &[usize],
    code_length: usize,
) -> Result<SensitivitySweep> {
    if nanowire_counts.is_empty() {
        return Err(SimError::EmptySweep);
    }
    let (baseline, optimised) = default_pair(LogicLevel::BINARY, code_length)?;
    let mut points = Vec::with_capacity(nanowire_counts.len());
    for &count in nanowire_counts {
        let config = base.clone().with_nanowires_per_half_cave(count)?;
        points.push(evaluate_pair(&config, baseline, optimised, count as f64)?);
    }
    Ok(SensitivitySweep {
        parameter_name: "nanowires_per_half_cave".to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    #[test]
    fn sigma_sweep_is_monotone_and_preserves_the_ordering() {
        let sweep = sigma_sensitivity(&base(), &[20.0, 50.0, 80.0, 110.0], 8).unwrap();
        assert_eq!(sweep.points.len(), 4);
        assert!(sweep.optimised_always_wins());
        // Yields fall as σ_T grows, for both designs.
        for pair in sweep.points.windows(2) {
            assert!(pair[1].baseline_yield <= pair[0].baseline_yield + 1e-12);
            assert!(pair[1].optimised_yield <= pair[0].optimised_yield + 1e-12);
        }
    }

    #[test]
    fn window_sweep_is_monotone_and_preserves_the_ordering() {
        let sweep = window_sensitivity(&base(), &[150.0, 250.0, 350.0], 8).unwrap();
        assert!(sweep.optimised_always_wins());
        // Wider windows can only help.
        for pair in sweep.points.windows(2) {
            assert!(pair[1].baseline_yield >= pair[0].baseline_yield - 1e-12);
            assert!(pair[1].optimised_yield >= pair[0].optimised_yield - 1e-12);
        }
    }

    #[test]
    fn alignment_sweep_preserves_the_ordering_and_hurts_short_codes_more() {
        let sweep = alignment_sensitivity(&base(), &[0.0, 16.0, 32.0], 8).unwrap();
        assert!(sweep.optimised_always_wins());
        // More alignment uncertainty can only reduce the yield.
        for pair in sweep.points.windows(2) {
            assert!(pair[1].baseline_yield <= pair[0].baseline_yield + 1e-12);
        }
    }

    #[test]
    fn half_cave_sweep_preserves_the_ordering() {
        let sweep = half_cave_sensitivity(&base(), &[10, 20, 40], 8).unwrap();
        assert!(sweep.optimised_always_wins());
        assert_eq!(sweep.parameter_name, "nanowires_per_half_cave");
        // Larger half caves accumulate more doses and can only reduce yield.
        for pair in sweep.points.windows(2) {
            assert!(pair[1].optimised_yield <= pair[0].optimised_yield + 1e-12);
        }
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        assert!(matches!(
            sigma_sensitivity(&base(), &[], 8),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            window_sensitivity(&base(), &[], 8),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            alignment_sensitivity(&base(), &[], 8),
            Err(SimError::EmptySweep)
        ));
        assert!(matches!(
            half_cave_sensitivity(&base(), &[], 8),
            Err(SimError::EmptySweep)
        ));
    }
}
