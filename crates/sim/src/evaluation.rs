//! One front door for the evaluation entry-point zoo: a builder that names
//! *what* to evaluate (a configuration, optionally narrowed to a stage set,
//! optionally with a Monte-Carlo validation pass) and *where* to run it (an
//! [`ExecutionEngine`]), mirroring the serve layer's `ReportRequest::builder`
//! idiom.
//!
//! Before this module the crate had grown parallel entry points per
//! concern — `evaluate` vs `evaluate_with_defect_map` on the platform,
//! `monte_carlo_addressability` / `monte_carlo_with_disturbance` /
//! `monte_carlo_for_config` on the engine plus serial free-function twins.
//! They all still exist as thin delegates (nothing breaks), but new callers
//! should write:
//!
//! ```
//! use decoder_sim::{Evaluation, ExecutionEngine, SimConfig};
//! use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8)?;
//! let engine = ExecutionEngine::serial();
//! let outcome = Evaluation::builder(SimConfig::paper_defaults(code)?).run(&engine)?;
//! assert!(outcome.report.is_some());
//! # Ok(())
//! # }
//! ```
//!
//! Every run memoizes through the engine's [`StageCache`](crate::StageCache),
//! so repeating an evaluation (or varying only fields outside a stage's read
//! set) hits the per-stage memo slots instead of recomputing the pipeline.

use crate::config::SimConfig;
use crate::defect::DefectKind;
use crate::disturbance::DisturbanceKind;
use crate::engine::ExecutionEngine;
use crate::error::Result;
use crate::monte_carlo::{MonteCarloConfig, MonteCarloOutcome};
use crate::platform::PlatformReport;
use crate::stage::Stage;

/// Namespace of the unified evaluation API: [`Evaluation::builder`] is the
/// one entry point that subsumes the platform's `evaluate*` family and the
/// engine's `monte_carlo_*` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evaluation;

impl Evaluation {
    /// Starts building an evaluation of `config`. With no further calls the
    /// evaluation produces the full [`PlatformReport`] (the classic
    /// [`SimulationPlatform::evaluate`](crate::SimulationPlatform::evaluate)
    /// semantics, engine-sharded and memoized).
    #[must_use]
    pub fn builder(config: SimConfig) -> EvaluationBuilder {
        EvaluationBuilder {
            config,
            stages: Vec::new(),
            monte_carlo: None,
        }
    }
}

/// Builder of one evaluation: configuration tweaks, an optional stage
/// narrowing, and an optional Monte-Carlo validation pass. Constructed by
/// [`Evaluation::builder`]; consumed by [`EvaluationBuilder::run`].
#[derive(Debug, Clone)]
pub struct EvaluationBuilder {
    config: SimConfig,
    stages: Vec<Stage>,
    monte_carlo: Option<MonteCarloConfig>,
}

impl EvaluationBuilder {
    /// Replaces the configuration's disturbance model (shorthand for
    /// [`SimConfig::with_disturbance`] at the call site of the builder).
    #[must_use]
    pub fn disturbance(mut self, kind: DisturbanceKind) -> Self {
        self.config = self.config.with_disturbance(kind);
        self
    }

    /// Replaces the configuration's fabrication-defect selection (shorthand
    /// for [`SimConfig::with_defects`]).
    #[must_use]
    pub fn defects(mut self, kind: DefectKind) -> Self {
        self.config = self.config.with_defects(kind);
        self
    }

    /// Narrows the evaluation to the listed stages (cumulative across
    /// calls). An empty stage list — the default — means the full report
    /// pipeline. Listing only [`Stage::MonteCarlo`] skips the report and
    /// runs just the sampling validator; any other stage keeps the report
    /// (the stage graph evaluates a stage's dependencies as part of
    /// evaluating the stage, so the report is the natural unit of "run
    /// these stages").
    #[must_use]
    pub fn stages(mut self, stages: &[Stage]) -> Self {
        self.stages.extend_from_slice(stages);
        self
    }

    /// Adds a Monte-Carlo validation pass with an explicit sampling
    /// configuration. Listing [`Stage::MonteCarlo`] in
    /// [`EvaluationBuilder::stages`] without calling this runs the pass
    /// under the configuration's own [`SimConfig::monte_carlo`] knobs.
    #[must_use]
    pub fn monte_carlo(mut self, config: MonteCarloConfig) -> Self {
        self.monte_carlo = Some(config);
        self
    }

    /// The configuration the evaluation will run, with every builder tweak
    /// applied.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the evaluation on `engine`. The report half goes through the
    /// engine's report cache and stage cache
    /// ([`ExecutionEngine::report_for`]); the Monte-Carlo half goes through
    /// the Monte-Carlo stage slot
    /// ([`ExecutionEngine::monte_carlo_for_config`]). Results are
    /// bit-identical to the serial entry points at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration, evaluation and sampling errors (never
    /// cached).
    pub fn run(&self, engine: &ExecutionEngine) -> Result<EvaluationOutcome> {
        let wants_monte_carlo =
            self.monte_carlo.is_some() || self.stages.contains(&Stage::MonteCarlo);
        let wants_report =
            self.stages.is_empty() || self.stages.iter().any(|&stage| stage != Stage::MonteCarlo);
        let report = if wants_report {
            Some(engine.report_for(&self.config)?)
        } else {
            None
        };
        let monte_carlo = if wants_monte_carlo {
            Some(
                engine.monte_carlo_for_config(
                    &self.config,
                    self.monte_carlo
                        .unwrap_or_else(|| self.config.monte_carlo()),
                )?,
            )
        } else {
            None
        };
        Ok(EvaluationOutcome {
            report,
            monte_carlo,
        })
    }
}

/// What one [`EvaluationBuilder::run`] produced: the halves not requested
/// stay `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationOutcome {
    /// The full platform report, when the evaluation included any report
    /// stage (always, unless the builder narrowed to Monte-Carlo only).
    pub report: Option<PlatformReport>,
    /// The Monte-Carlo addressability outcome, when the evaluation included
    /// a sampling pass.
    pub monte_carlo: Option<MonteCarloOutcome>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

    fn base() -> SimConfig {
        let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).unwrap();
        SimConfig::paper_defaults(code).unwrap()
    }

    #[test]
    fn default_builder_produces_the_classic_report() {
        let engine = ExecutionEngine::serial();
        let outcome = Evaluation::builder(base()).run(&engine).unwrap();
        let classic = crate::platform::SimulationPlatform::new(base())
            .evaluate()
            .unwrap();
        assert_eq!(outcome.report, Some(classic));
        assert!(outcome.monte_carlo.is_none());
    }

    #[test]
    fn monte_carlo_only_skips_the_report() {
        let engine = ExecutionEngine::serial();
        let mc = MonteCarloConfig::fixed(200, 11);
        let outcome = Evaluation::builder(base())
            .stages(&[Stage::MonteCarlo])
            .monte_carlo(mc)
            .run(&engine)
            .unwrap();
        assert!(outcome.report.is_none());
        let direct = engine.monte_carlo_for_config(&base(), mc).unwrap();
        assert_eq!(outcome.monte_carlo, Some(direct));
    }

    #[test]
    fn monte_carlo_stage_without_config_uses_the_default_sampling() {
        let engine = ExecutionEngine::serial();
        let outcome = Evaluation::builder(base())
            .stages(&[Stage::MonteCarlo])
            .run(&engine)
            .unwrap();
        assert_eq!(
            outcome.monte_carlo.unwrap().samples,
            MonteCarloConfig::default().samples
        );
        // And a configuration carrying its own sampling knobs wins over
        // the crate default when the builder does not override them.
        let tuned = base().with_monte_carlo(MonteCarloConfig::fixed(128, 21));
        let outcome = Evaluation::builder(tuned)
            .stages(&[Stage::MonteCarlo])
            .run(&engine)
            .unwrap();
        assert_eq!(outcome.monte_carlo.unwrap().samples, 128);
    }

    #[test]
    fn report_and_monte_carlo_run_together() {
        let engine = ExecutionEngine::serial();
        let outcome = Evaluation::builder(base())
            .monte_carlo(MonteCarloConfig::fixed(200, 3))
            .run(&engine)
            .unwrap();
        assert!(outcome.report.is_some());
        assert!(outcome.monte_carlo.is_some());
    }

    #[test]
    fn builder_tweaks_forward_to_the_config() {
        let defects = DefectKind::sampled(0.05, 0.02, 7).unwrap();
        let builder = Evaluation::builder(base())
            .disturbance(DisturbanceKind::Laplace)
            .defects(defects);
        assert_eq!(builder.config().disturbance(), DisturbanceKind::Laplace);
        assert_eq!(builder.config().defects(), defects);
    }

    #[test]
    fn repeated_runs_hit_the_caches() {
        let engine = ExecutionEngine::serial();
        let builder = Evaluation::builder(base()).monte_carlo(MonteCarloConfig::fixed(200, 5));
        let first = builder.run(&engine).unwrap();
        let second = builder.run(&engine).unwrap();
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let mc_row = engine
            .stage_stats()
            .into_iter()
            .find(|row| row.stage == Stage::MonteCarlo)
            .unwrap();
        assert_eq!((mc_row.stats.hits, mc_row.stats.misses), (1, 1));
    }
}
