//! Serial vs engine-sharded defect-map generation: the same independently
//! seeded band layout assembled by one thread or many — bit-identical maps
//! at every thread count, only the wall-clock changes. Plus the end-to-end
//! cost of a defect-composed report: map sampling + composition on top of
//! the decoder evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use crossbar_array::DefectModel;
use decoder_sim::{DefectKind, EngineConfig, ExecutionEngine, SimConfig, DEFAULT_CHUNK_SIZE};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

/// Crossbar edge used by the bench: 768 × 768 crosspoints spans twelve
/// 64-row bands, enough for the sharding to matter.
const EDGE: usize = 768;

fn bench_defect_map(c: &mut Criterion) {
    let model = DefectModel::new(0.02, 0.01).expect("model");
    let mut group = c.benchmark_group(format!("defect_map_{EDGE}x{EDGE}"));
    group.sample_size(10);
    group.bench_function("serial_sample_map", |b| {
        b.iter(|| model.sample_map(EDGE, EDGE, 42).expect("map"))
    });
    for threads in [1usize, 2, 4, 8] {
        let engine = ExecutionEngine::new(EngineConfig {
            threads,
            chunk_size: DEFAULT_CHUNK_SIZE,
        });
        group.bench_function(format!("engine_{threads}_threads"), |b| {
            b.iter(|| {
                engine
                    .sample_defect_map(&model, EDGE, EDGE, 42)
                    .expect("map")
            })
        });
    }
    group.finish();
}

/// The report-path cost of the defect dimension: evaluating the paper's
/// best balanced-Gray configuration defect-free vs with a sampled defect
/// map composed in (363 × 363 crosspoints sampled + composed per cold
/// evaluation). Caching is disabled so every iteration pays the full cost.
fn bench_defect_report(c: &mut Criterion) {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).expect("code");
    let base = SimConfig::paper_defaults(code).expect("config");
    let defective = base
        .clone()
        .with_defects(DefectKind::sampled(0.02, 0.01, 2_009).expect("rates"));
    let engine = ExecutionEngine::with_cache(
        EngineConfig {
            threads: 2,
            chunk_size: DEFAULT_CHUNK_SIZE,
        },
        decoder_sim::CacheConfig::unsharded(0),
    );
    let mut group = c.benchmark_group("defect_report");
    group.sample_size(10);
    group.bench_function("defect_free", |b| {
        b.iter(|| engine.report_for(black_box(&base)).expect("report"))
    });
    group.bench_function("defect_composed", |b| {
        b.iter(|| engine.report_for(black_box(&defective)).expect("report"))
    });
    group.finish();
}

criterion_group!(benches, bench_defect_map, bench_defect_report);
criterion_main!(benches);
