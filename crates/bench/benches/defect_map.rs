//! Serial vs engine-sharded defect-map generation: the same independently
//! seeded band layout assembled by one thread or many — bit-identical maps
//! at every thread count, only the wall-clock changes.

use criterion::{criterion_group, criterion_main, Criterion};
use crossbar_array::DefectModel;
use decoder_sim::{EngineConfig, ExecutionEngine, DEFAULT_CHUNK_SIZE};

/// Crossbar edge used by the bench: 768 × 768 crosspoints spans twelve
/// 64-row bands, enough for the sharding to matter.
const EDGE: usize = 768;

fn bench_defect_map(c: &mut Criterion) {
    let model = DefectModel::new(0.02, 0.01).expect("model");
    let mut group = c.benchmark_group(format!("defect_map_{EDGE}x{EDGE}"));
    group.sample_size(10);
    group.bench_function("serial_sample_map", |b| {
        b.iter(|| model.sample_map(EDGE, EDGE, 42).expect("map"))
    });
    for threads in [1usize, 2, 4, 8] {
        let engine = ExecutionEngine::new(EngineConfig {
            threads,
            chunk_size: DEFAULT_CHUNK_SIZE,
        });
        group.bench_function(format!("engine_{threads}_threads"), |b| {
            b.iter(|| {
                engine
                    .sample_defect_map(&model, EDGE, EDGE, 42)
                    .expect("map")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_defect_map);
criterion_main!(benches);
