//! Ablation bench: analytic (closed-form Gaussian) vs Monte-Carlo yield
//! estimation for the same decoder design.

use criterion::{criterion_group, criterion_main, Criterion};
use crossbar_array::AddressabilityProfile;
use decoder_sim::{monte_carlo_addressability, MonteCarloConfig, SimConfig, SimulationPlatform};
use device_physics::Volts;
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn bench_monte_carlo(c: &mut Criterion) {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).expect("code");
    let config = SimConfig::paper_defaults(code).expect("config");
    let platform = SimulationPlatform::new(config.clone());
    let variability = platform.variability().expect("variability");
    let model = config.variability_model().expect("model");
    let window = config.decision_window().expect("window");

    let mut group = c.benchmark_group("yield_estimation");
    group.sample_size(10);
    group.bench_function("analytic", |b| {
        b.iter(|| {
            AddressabilityProfile::from_variability(&variability, &model, window)
                .expect("analytic profile")
        })
    });
    for samples in [500usize, 2_000] {
        group.bench_function(format!("monte_carlo_{samples}_samples"), |b| {
            b.iter(|| {
                monte_carlo_addressability(
                    &variability,
                    &model,
                    Volts::new(window.value()),
                    MonteCarloConfig::fixed(samples, 17),
                )
                .expect("monte carlo profile")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monte_carlo);
criterion_main!(benches);
