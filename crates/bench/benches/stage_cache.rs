//! Incremental recomputation through the stage graph: a cold staged
//! evaluation vs the composite-stage hit floor, and the two partial
//! re-evaluation shapes the stage cache exists for — a defect-rate sweep
//! point (new defect seed, Monte-Carlo-grade upstream stages all hit) and a
//! disturbance change (every report stage hits, only the sampling stage
//! re-runs). Cold sits around the full-pipeline cost; the hit floor and the
//! disturbance re-evaluation should be orders of magnitude below it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decoder_sim::{
    CacheConfig, DefectKind, DisturbanceKind, EngineConfig, Evaluation, ExecutionEngine,
    MonteCarloConfig, SimConfig, SimulationPlatform, StageCache,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn paper_config() -> SimConfig {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
    SimConfig::paper_defaults(code).unwrap()
}

fn warm_engine(base: &SimConfig) -> ExecutionEngine {
    let engine = ExecutionEngine::new(EngineConfig {
        threads: 1,
        chunk_size: 256,
    });
    engine.report_for(base).unwrap();
    engine
}

fn bench_stage_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_cache");
    group.sample_size(10);
    let base = paper_config();

    // A disabled cache turns every stage lookup into a leader-path miss:
    // the whole pipeline runs, same work as the monolithic evaluation.
    group.bench_function("staged_cold", |b| {
        let platform = SimulationPlatform::new(base.clone());
        let stages = StageCache::disabled();
        b.iter(|| {
            platform
                .evaluate_with_stage_cache(black_box(&stages), None)
                .unwrap()
        });
    });

    // The hit floor: the composite slot serves the whole report, no inner
    // stage is even consulted.
    group.bench_function("staged_hit", |b| {
        let platform = SimulationPlatform::new(base.clone());
        let stages = StageCache::new(CacheConfig::default());
        platform.evaluate_with_stage_cache(&stages, None).unwrap();
        b.iter(|| {
            platform
                .evaluate_with_stage_cache(black_box(&stages), None)
                .unwrap()
        });
    });

    // One point of a defect-rate sweep: every iteration evaluates a config
    // differing from the warm one only in its defect seed, so variability,
    // addressability, layout, yield and area are all stage hits and only
    // the defect map is resampled and recomposed.
    group.bench_function("partial_reeval_new_defect_seed", |b| {
        let engine = warm_engine(&base);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = base
                .clone()
                .with_defects(DefectKind::sampled(0.02, 0.01, seed).unwrap());
            engine.report_for(black_box(&config)).unwrap()
        });
    });

    // A disturbance change through the unified entry point: no report stage
    // reads the disturbance, so a warm engine serves the re-evaluation
    // entirely from stage hits — this should sit near the hit floor, far
    // below the cold pipeline.
    group.bench_function("disturbance_change_partial_reeval", |b| {
        let engine = warm_engine(&base);
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            // A fresh shared fraction each iteration keeps every sample a
            // genuine re-evaluation (a report-cache miss) instead of
            // converging to an all-hit loop.
            #[allow(clippy::cast_precision_loss)]
            let kind = DisturbanceKind::Correlated {
                shared_fraction: (step % 97) as f64 / 97.0,
            };
            Evaluation::builder(black_box(&base).clone())
                .disturbance(kind)
                .run(&engine)
                .unwrap()
        });
    });

    // A new sampling seed on an unchanged config: only the Monte-Carlo
    // stage misses; the variability stage it draws from is a hit.
    group.bench_function("mc_new_seed_reuses_variability", |b| {
        let engine = warm_engine(&base);
        engine
            .monte_carlo_for_config(&base, MonteCarloConfig::fixed(64, 0))
            .unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            engine
                .monte_carlo_for_config(black_box(&base), MonteCarloConfig::fixed(64, seed))
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(stage_cache, bench_stage_cache);
criterion_main!(stage_cache);
