//! Bench for Fig. 8: regenerating the effective-bit-area series for every
//! code family on the 16 kB platform.

use criterion::{criterion_group, criterion_main, Criterion};
use decoder_sim::bit_area_sweep;
use mspt_bench::bench_base_config;
use nanowire_codes::{CodeKind, LogicLevel};

fn bench_fig8(c: &mut Criterion) {
    let base = bench_base_config().expect("base config");
    let mut group = c.benchmark_group("fig8_bit_area");
    group.sample_size(10);

    for kind in [
        CodeKind::Tree,
        CodeKind::Gray,
        CodeKind::BalancedGray,
        CodeKind::Hot,
        CodeKind::ArrangedHot,
    ] {
        let lengths: Vec<usize> = if kind.is_hot_family() {
            vec![4, 6, 8]
        } else {
            vec![6, 8, 10]
        };
        group.bench_function(format!("{}_series", kind.label()), |b| {
            b.iter(|| {
                bit_area_sweep(&base, kind, LogicLevel::BINARY, &lengths).expect("fig8 series")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
