//! Bench for Fig. 6: regenerating the normalised variability maps of TC, GC
//! and BGC at code lengths 8 and 10 with N = 20 nanowires.

use criterion::{criterion_group, criterion_main, Criterion};
use decoder_sim::variability_map;
use mspt_bench::bench_base_config;
use nanowire_codes::{CodeKind, LogicLevel};

fn bench_fig6(c: &mut Criterion) {
    let base = bench_base_config().expect("base config");
    let mut group = c.benchmark_group("fig6_variability_maps");
    group.sample_size(20);

    for kind in [CodeKind::Tree, CodeKind::Gray, CodeKind::BalancedGray] {
        for length in [8usize, 10] {
            group.bench_function(format!("{}_L{length}_N20", kind.label()), |b| {
                b.iter(|| {
                    variability_map(&base, kind, LogicLevel::BINARY, length, 20)
                        .expect("fig6 panel")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
