//! Ablation bench: exhaustive branch-and-bound vs greedy vs greedy+2-opt
//! arrangement search on hot-code spaces (the strategies behind the arranged
//! hot codes of Section 5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use nanowire_codes::{
    arrange_min_transitions, hot_code, ArrangementStrategy, LogicLevel, SearchBudget,
};

fn bench_arrangement(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrangement_search");
    group.sample_size(10);

    let small = hot_code(LogicLevel::BINARY, 6).expect("hot code M=6");
    let large = hot_code(LogicLevel::BINARY, 8).expect("hot code M=8");

    for (name, strategy) in [
        ("greedy", ArrangementStrategy::Greedy),
        ("greedy_two_opt", ArrangementStrategy::GreedyTwoOpt),
        ("exhaustive", ArrangementStrategy::Exhaustive),
    ] {
        group.bench_function(format!("{name}_hc6_20_words"), |b| {
            b.iter(|| {
                arrange_min_transitions(small.words().to_vec(), strategy, SearchBudget::default())
                    .expect("arrangement")
            })
        });
    }
    for (name, strategy) in [
        ("greedy", ArrangementStrategy::Greedy),
        ("greedy_two_opt", ArrangementStrategy::GreedyTwoOpt),
    ] {
        group.bench_function(format!("{name}_hc8_70_words"), |b| {
            b.iter(|| {
                arrange_min_transitions(large.words().to_vec(), strategy, SearchBudget::default())
                    .expect("arrangement")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arrangement);
criterion_main!(benches);
