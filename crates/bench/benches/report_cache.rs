//! Throughput of the serving substrate: a cold evaluation vs a report-cache
//! hit vs the full wire round trip (serialize → parse → serve), plus the
//! engine's single-flight batch path. These are the numbers the serving
//! layer's latency budget rests on — a cache hit should be orders of
//! magnitude cheaper than an evaluation, and the wire codec should cost far
//! less than a miss.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decoder_sim::codec::{config_from_json, config_to_json};
use decoder_sim::{
    CacheConfig, EngineConfig, ExecutionEngine, ReportCache, SimConfig, SimulationPlatform,
};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn paper_config() -> SimConfig {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).unwrap();
    SimConfig::paper_defaults(code).unwrap()
}

fn bench_report_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("report_cache");
    group.sample_size(10);
    let config = paper_config();

    group.bench_function("evaluate_cold", |b| {
        b.iter(|| {
            SimulationPlatform::new(black_box(&config).clone())
                .evaluate()
                .unwrap()
        });
    });

    let cache = ReportCache::new(CacheConfig::default());
    cache
        .get_or_compute(&config, || {
            SimulationPlatform::new(config.clone()).evaluate()
        })
        .unwrap();
    group.bench_function("cache_hit", |b| {
        b.iter(|| {
            cache
                .get_or_compute(black_box(&config), || unreachable!("cache is warm"))
                .unwrap()
        });
    });

    group.bench_function("wire_codec_round_trip", |b| {
        b.iter(|| {
            let json = config_to_json(black_box(&config)).render();
            config_from_json(&decoder_sim::codec::JsonValue::parse(&json).unwrap()).unwrap()
        });
    });

    // The engine batch path over a warm cache: 16 sweep points, all hits.
    let engine = ExecutionEngine::new(EngineConfig {
        threads: 2,
        chunk_size: 256,
    });
    let base = paper_config();
    engine
        .full_sweep(
            &base,
            &[CodeKind::Tree, CodeKind::BalancedGray],
            LogicLevel::BINARY,
            &[6, 8, 10],
        )
        .unwrap();
    group.bench_function("warm_full_sweep", |b| {
        b.iter(|| {
            engine
                .full_sweep(
                    black_box(&base),
                    &[CodeKind::Tree, CodeKind::BalancedGray],
                    LogicLevel::BINARY,
                    &[6, 8, 10],
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(report_cache, bench_report_cache);
criterion_main!(report_cache);
