//! Ablation bench: generation cost of each code family (tree enumeration,
//! Gray construction, balanced-Gray search, hot enumeration, revolving-door /
//! search arrangement).

use criterion::{criterion_group, criterion_main, Criterion};
use mspt_bench::benchmark_code_specs;

fn bench_code_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_generation");
    group.sample_size(20);
    for spec in benchmark_code_specs() {
        group.bench_function(
            format!("{}_M{}", spec.kind().label(), spec.code_length()),
            |b| b.iter(|| spec.generate().expect("code generation")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_code_generation);
criterion_main!(benches);
