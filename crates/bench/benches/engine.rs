//! Serial vs parallel execution engine: the Monte-Carlo validator sharded
//! into deterministic chunks, and the full Fig. 7/8 sweep batched across
//! threads. The outcomes are bit-identical at every thread count — only the
//! wall-clock changes.

use criterion::{criterion_group, criterion_main, Criterion};
use decoder_sim::{EngineConfig, ExecutionEngine, MonteCarloConfig, SimConfig, DEFAULT_CHUNK_SIZE};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

fn engine(threads: usize) -> ExecutionEngine {
    ExecutionEngine::new(EngineConfig {
        threads,
        chunk_size: DEFAULT_CHUNK_SIZE,
    })
}

fn bench_engine(c: &mut Criterion) {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).expect("code");
    let config = SimConfig::paper_defaults(code).expect("config");
    let platform = decoder_sim::SimulationPlatform::new(config.clone());
    let variability = platform.variability().expect("variability");
    let model = config.variability_model().expect("model");
    let window = config.decision_window().expect("window");

    let mut group = c.benchmark_group("engine_monte_carlo_8k_samples");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let engine = engine(threads);
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                engine
                    .monte_carlo_addressability(
                        &variability,
                        &model,
                        window,
                        MonteCarloConfig::fixed(8_000, 17),
                    )
                    .expect("monte carlo outcome")
            })
        });
    }
    group.finish();

    let base = config;
    let kinds = [
        CodeKind::Tree,
        CodeKind::Gray,
        CodeKind::BalancedGray,
        CodeKind::Hot,
    ];
    let lengths = [4usize, 6, 8, 10];
    let mut group = c.benchmark_group("engine_full_sweep_cold_cache");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                // A fresh engine per iteration keeps the report cache cold so
                // the bench measures evaluation, not memoization.
                engine(threads)
                    .full_sweep(&base, &kinds, LogicLevel::BINARY, &lengths)
                    .expect("sweep reports")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
