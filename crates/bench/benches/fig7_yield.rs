//! Bench for Fig. 7: regenerating the crossbar-yield series for TC/BGC
//! (M = 6, 8, 10) and HC/AHC (M = 4, 6, 8) on the 16 kB platform.

use criterion::{criterion_group, criterion_main, Criterion};
use decoder_sim::yield_sweep;
use mspt_bench::bench_base_config;
use nanowire_codes::{CodeKind, LogicLevel};

fn bench_fig7(c: &mut Criterion) {
    let base = bench_base_config().expect("base config");
    let mut group = c.benchmark_group("fig7_crossbar_yield");
    group.sample_size(10);

    for (kind, lengths) in [
        (CodeKind::Tree, vec![6usize, 8, 10]),
        (CodeKind::BalancedGray, vec![6, 8, 10]),
        (CodeKind::Hot, vec![4, 6, 8]),
        (CodeKind::ArrangedHot, vec![4, 6, 8]),
    ] {
        group.bench_function(format!("{}_series", kind.label()), |b| {
            b.iter(|| yield_sweep(&base, kind, LogicLevel::BINARY, &lengths).expect("fig7 series"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
