//! Bench for Fig. 5: regenerating the fabrication-complexity sweep (tree vs
//! Gray codes, binary/ternary/quaternary logic, N = 10).

use criterion::{criterion_group, criterion_main, Criterion};
use decoder_sim::complexity_sweep;
use mspt_bench::bench_base_config;
use nanowire_codes::{CodeKind, LogicLevel};

fn bench_fig5(c: &mut Criterion) {
    let base = bench_base_config().expect("base config");
    let mut group = c.benchmark_group("fig5_fabrication_complexity");
    group.sample_size(20);

    group.bench_function("tc_gc_binary_to_quaternary_n10", |b| {
        b.iter(|| {
            complexity_sweep(
                &base,
                &[CodeKind::Tree, CodeKind::Gray],
                &[
                    LogicLevel::BINARY,
                    LogicLevel::TERNARY,
                    LogicLevel::QUATERNARY,
                ],
                8,
                10,
            )
            .expect("fig5 sweep")
        })
    });

    for radix in [
        LogicLevel::BINARY,
        LogicLevel::TERNARY,
        LogicLevel::QUATERNARY,
    ] {
        group.bench_function(format!("single_point_gc_{radix}"), |b| {
            b.iter(|| {
                complexity_sweep(&base, &[CodeKind::Gray], &[radix], 8, 10).expect("fig5 point")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
