//! The batched adaptive Monte-Carlo kernel against its two ablations: a
//! fixed sampling budget on the same tight-window config (what the adaptive
//! stopping rule saves), and the scalar row-by-row Gaussian path (what the
//! structure-of-arrays `NormalSource::fill` kernel saves). A counting
//! global allocator reports the steady-state allocations per sampling call,
//! pinning the scratch-reuse contract: chunk buffers live on the engine's
//! worker threads, not in the inner loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decoder_sim::{
    DisturbanceModel, EngineConfig, ExecutionEngine, GaussianDisturbance, MonteCarloConfig,
    NormalSource, SimConfig, SimulationPlatform, DEFAULT_CHUNK_SIZE,
};
use device_physics::Volts;
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
use rand::rngs::StdRng;

/// Counts every heap allocation so the bench can report a per-call figure.
/// Lives in the bench target (the `mspt-bench` library itself stays under
/// `#![forbid(unsafe_code)]`).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A Gaussian disturbance that deliberately does **not** override
/// [`DisturbanceModel::sample_matrix`]: every deviation goes through the
/// provided row-by-row loop, so benching it against [`GaussianDisturbance`]
/// isolates the batched `NormalSource::fill` kernel from everything else.
#[derive(Debug)]
struct ScalarGaussian;

impl DisturbanceModel for ScalarGaussian {
    fn sample_regions(&self, sigmas: &[f64], draws: &mut NormalSource<StdRng>, out: &mut [f64]) {
        GaussianDisturbance.sample_regions(sigmas, draws, out);
    }
}

/// Paper defaults with the decision window tightened well below the 0.25 V
/// half-width: addressability probabilities collapse toward zero, which is
/// exactly when sequential confidence stopping pays off.
fn tight_window_config() -> SimConfig {
    let code = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10).expect("code");
    SimConfig::paper_defaults(code)
        .expect("config")
        .with_window(Volts::new(0.1))
}

fn engine() -> ExecutionEngine {
    ExecutionEngine::new(EngineConfig {
        threads: 1,
        chunk_size: DEFAULT_CHUNK_SIZE,
    })
}

const FIXED_SAMPLES: usize = 20_000;
const KERNEL_SAMPLES: usize = 8_000;
const TARGET_HALF_WIDTH: f64 = 0.05;

/// Steady-state allocations per sampling call: one warmup call, then the
/// counter delta across `calls` further calls. With engine-owned scratch
/// the deviation matrices cost nothing per chunk; what remains is chunk
/// bookkeeping (one small per-chunk counts vector — the engine's
/// chunk-ordered reduction protocol) plus the outcome itself, so the
/// figure grows with the *chunk count*, never with `samples × nanowires ×
/// regions` the way the pre-SoA kernel did.
fn allocations_per_call(
    engine: &ExecutionEngine,
    config: &SimConfig,
    samples: usize,
    calls: u64,
) -> u64 {
    let mc = |seed: u64| MonteCarloConfig::fixed(samples, seed);
    engine
        .monte_carlo_for_config(config, mc(u64::MAX - samples as u64))
        .expect("warmup outcome");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for seed in 0..calls {
        black_box(
            engine
                .monte_carlo_for_config(config, mc(seed))
                .expect("outcome"),
        );
    }
    (ALLOCATIONS.load(Ordering::Relaxed) - before) / calls
}

fn bench_mc_kernel(c: &mut Criterion) {
    let config = tight_window_config();
    let engine = engine();
    let platform = SimulationPlatform::new(config.clone());
    let variability = platform.variability().expect("variability");
    let model = config.variability_model().expect("model");
    let window = config.decision_window().expect("window");

    // Scratch-reuse evidence, printed ahead of the timing rows: doubling
    // the budget must not double the allocation count by anything close
    // to the per-sample deviation volume (each sample fills a
    // nanowires × regions matrix — reused scratch, zero allocations).
    let allocs_1x = allocations_per_call(&engine, &config, KERNEL_SAMPLES, 8);
    let allocs_2x = allocations_per_call(&engine, &config, 2 * KERNEL_SAMPLES, 8);
    eprintln!(
        "mc_kernel: {allocs_1x} heap allocations per {KERNEL_SAMPLES}-sample call, \
         {allocs_2x} per {}-sample call (chunk bookkeeping only)",
        2 * KERNEL_SAMPLES
    );

    let mut group = c.benchmark_group("mc_kernel");
    group.sample_size(10);

    // The adaptive stopping rule on a tight window vs the same run forced
    // to draw its full budget. A fresh seed every iteration keeps the
    // Monte-Carlo stage a genuine miss (variability stays a stage hit).
    group.bench_function("fixed_20k_tight_window", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            engine
                .monte_carlo_for_config(
                    black_box(&config),
                    MonteCarloConfig::fixed(FIXED_SAMPLES, seed),
                )
                .expect("fixed outcome")
        });
    });
    group.bench_function("adaptive_20k_tight_window", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            engine
                .monte_carlo_for_config(
                    black_box(&config),
                    MonteCarloConfig::fixed(FIXED_SAMPLES, seed)
                        .with_target_half_width(TARGET_HALF_WIDTH),
                )
                .expect("adaptive outcome")
        });
    });

    // The structure-of-arrays fill kernel vs the scalar row loop, same
    // fixed budget, no stage cache in the way: both go straight through
    // `monte_carlo_with_disturbance`.
    group.bench_function("batched_fill_8k", |b| {
        b.iter(|| {
            engine
                .monte_carlo_with_disturbance(
                    black_box(&variability),
                    &model,
                    window,
                    MonteCarloConfig::fixed(KERNEL_SAMPLES, 17),
                    &GaussianDisturbance,
                )
                .expect("batched outcome")
        });
    });
    group.bench_function("scalar_rows_8k", |b| {
        b.iter(|| {
            engine
                .monte_carlo_with_disturbance(
                    black_box(&variability),
                    &model,
                    window,
                    MonteCarloConfig::fixed(KERNEL_SAMPLES, 17),
                    &ScalarGaussian,
                )
                .expect("scalar outcome")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_mc_kernel);
criterion_main!(benches);
