//! # mspt-bench
//!
//! Criterion benchmark harness for the MSPT nanowire-decoder reproduction.
//!
//! One bench target exists per figure of the paper — it regenerates the
//! figure's data series and measures how long that takes — plus ablation
//! benches for the design choices called out in `DESIGN.md`:
//!
//! * `fig5_complexity` — fabrication-complexity sweep (Fig. 5)
//! * `fig6_variability` — variability maps (Fig. 6)
//! * `fig7_yield` — yield sweep (Fig. 7)
//! * `fig8_bit_area` — bit-area sweep (Fig. 8)
//! * `code_generation` — generation cost of each code family
//! * `arrangement_search` — exhaustive vs greedy/2-opt arrangement search
//! * `monte_carlo` — analytic vs Monte-Carlo yield estimation
//!
//! Run them with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use decoder_sim::{Result, SimConfig};
use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};

/// The base configuration shared by the figure benches (the paper's platform
/// with a binary tree code placeholder).
///
/// # Errors
///
/// Propagates configuration errors (none for the defaults).
pub fn bench_base_config() -> Result<SimConfig> {
    let code = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8)?;
    SimConfig::paper_defaults(code)
}

/// The binary code specs exercised by the code-generation bench.
///
/// # Panics
///
/// Never panics: every listed combination is valid.
#[must_use]
pub fn benchmark_code_specs() -> Vec<CodeSpec> {
    [
        (CodeKind::Tree, 10),
        (CodeKind::Gray, 10),
        (CodeKind::BalancedGray, 10),
        (CodeKind::Hot, 8),
        (CodeKind::ArrangedHot, 8),
    ]
    .into_iter()
    .map(|(kind, length)| {
        CodeSpec::new(kind, LogicLevel::BINARY, length).expect("valid benchmark code spec")
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_and_specs_are_valid() {
        assert!(bench_base_config().is_ok());
        let specs = benchmark_code_specs();
        assert_eq!(specs.len(), 5);
        for spec in specs {
            assert!(spec.generate().is_ok());
        }
    }
}
