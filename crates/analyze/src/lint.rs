//! The lint framework: the [`Lint`] trait, the default registry, and the
//! driver that runs every lint over a [`Workspace`] and then applies the
//! escape comments.
//!
//! A lint sees the whole workspace at once (the domain-tag registry and the
//! lock-acquisition graph are inherently cross-file) and appends
//! [`Finding`]s. The driver owns the suppression pass: a deny finding whose
//! line carries (or sits directly under) a well-formed
//! `// mspt-analyze: allow(<lint>) <reason>` comment is downgraded to a
//! suppressed finding — still reported, still in the artifact, no longer
//! fatal. Escape comments are themselves checked: a malformed marker, an
//! empty reason, or an allow that no longer suppresses anything each produce
//! findings of their own, so the escape hatch cannot rot silently.

use crate::diagnostics::{Finding, Severity};
use crate::source::Workspace;

/// One registered lint.
pub trait Lint {
    /// Kebab-case registry name — what `allow(…)` clauses reference.
    fn name(&self) -> &'static str;
    /// One-line description of the contract the lint enforces.
    fn description(&self) -> &'static str;
    /// Appends findings for the whole workspace.
    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>);
}

/// The lint registry's own name for findings about escape comments.
pub const ALLOW_AUDIT_LINT: &str = "allow-audit";

/// The default registry: every repo-contract lint, in reporting order.
#[must_use]
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(crate::lints::raw_seed::RawSeed),
        Box::new(crate::lints::domain_tag::DomainTag::default()),
        Box::new(crate::lints::unsafe_calls::UnsafeCalls),
        Box::new(crate::lints::locks::LockDiscipline),
        Box::new(crate::lints::codec_symmetry::CodecSymmetry),
        Box::new(crate::lints::stage_fingerprint::StageFingerprint::default()),
    ]
}

/// Runs `lints` over the workspace, applies escape comments, and audits
/// them. Returns every finding (active, warned and suppressed alike), in
/// lint-registry order.
#[must_use]
pub fn run_lints(workspace: &Workspace, lints: &[Box<dyn Lint>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in lints {
        let mut raw = Vec::new();
        lint.check(workspace, &mut raw);
        for mut finding in raw {
            if let Some(file) = workspace
                .files
                .iter()
                .find(|file| file.path.to_string_lossy() == finding.file)
            {
                if let Some(allow) = file.allow_for(lint.name(), finding.line) {
                    finding.allowed = Some(allow.reason.clone());
                }
            }
            findings.push(finding);
        }
    }
    audit_allows(workspace, lints, &findings[..])
        .into_iter()
        .for_each({
            let findings = &mut findings;
            move |finding| findings.push(finding)
        });
    findings
}

/// Checks the escape comments themselves: malformed markers and empty
/// reasons are deny findings; an allow that suppressed nothing this run is a
/// warn finding (stale escape hatch).
fn audit_allows(
    workspace: &Workspace,
    lints: &[Box<dyn Lint>],
    findings: &[Finding],
) -> Vec<Finding> {
    let known: Vec<&str> = lints.iter().map(|lint| lint.name()).collect();
    let mut audit = Vec::new();
    for file in &workspace.files {
        let path = file.path.to_string_lossy().into_owned();
        for allow in &file.allows {
            if !allow.well_formed {
                audit.push(Finding::deny(
                    ALLOW_AUDIT_LINT,
                    path.clone(),
                    allow.line,
                    1,
                    format!(
                        "malformed escape comment (expected `mspt-analyze: allow(<lint>) <reason>`): {:?}",
                        allow.reason
                    ),
                ));
                continue;
            }
            if !known.contains(&allow.lint.as_str()) {
                audit.push(Finding::deny(
                    ALLOW_AUDIT_LINT,
                    path.clone(),
                    allow.line,
                    1,
                    format!("escape comment names unknown lint {:?}", allow.lint),
                ));
                continue;
            }
            if allow.reason.is_empty() {
                audit.push(Finding::deny(
                    ALLOW_AUDIT_LINT,
                    path.clone(),
                    allow.line,
                    1,
                    format!(
                        "escape comment for `{}` has no reason; justify the suppression",
                        allow.lint
                    ),
                ));
                continue;
            }
            let used = findings.iter().any(|finding| {
                finding.file == path
                    && finding.allowed.is_some()
                    && finding.lint == allow.lint
                    && finding.line >= allow.line
                    && finding.line.saturating_sub(allow.line) <= MAX_ALLOW_DISTANCE
            });
            if !used {
                audit.push(Finding {
                    lint: ALLOW_AUDIT_LINT,
                    severity: Severity::Warn,
                    file: path.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "escape comment for `{}` suppressed nothing this run; remove it if stale",
                        allow.lint
                    ),
                    allowed: None,
                });
            }
        }
    }
    audit
}

/// How many lines below its comment an allow may act (stacked escape lines
/// above one statement). Used only by the staleness audit; actual matching
/// walks real escape lines in [`crate::source::SourceFile::allow_for`].
const MAX_ALLOW_DISTANCE: u32 = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    struct FireOnNeedle;

    impl Lint for FireOnNeedle {
        fn name(&self) -> &'static str {
            "needle"
        }
        fn description(&self) -> &'static str {
            "fires on the identifier `needle`"
        }
        fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
            for file in &workspace.files {
                for (index, token) in file.tokens.iter().enumerate() {
                    if token.is_ident("needle") && !file.is_test_token(index) {
                        findings.push(Finding::deny(
                            "needle",
                            file.path.to_string_lossy().into_owned(),
                            token.line,
                            token.col,
                            "found a needle",
                        ));
                    }
                }
            }
        }
    }

    fn workspace(source: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::from_source("a.rs", "sim", source)],
        }
    }

    #[test]
    fn allows_suppress_and_unused_allows_warn() {
        let lints: Vec<Box<dyn Lint>> = vec![Box::new(FireOnNeedle)];
        let ws = workspace(
            "let needle = 1; // mspt-analyze: allow(needle) this one is fine\n\
             let needle = 2;\n\
             let clean = 3; // mspt-analyze: allow(needle) stale\n",
        );
        let findings = run_lints(&ws, &lints);
        let active: Vec<_> = findings.iter().filter(|f| f.is_active_deny()).collect();
        assert_eq!(active.len(), 1, "{findings:?}");
        assert_eq!(active[0].line, 2);
        assert!(findings.iter().any(|f| f.allowed.is_some() && f.line == 1));
        // The stale allow on line 3 warns without failing the run.
        assert!(findings
            .iter()
            .any(|f| f.lint == ALLOW_AUDIT_LINT && f.severity == Severity::Warn && f.line == 3));
    }

    #[test]
    fn reasonless_and_unknown_lint_allows_are_deny_findings() {
        let lints: Vec<Box<dyn Lint>> = vec![Box::new(FireOnNeedle)];
        let ws = workspace(
            "let needle = 1; // mspt-analyze: allow(needle)\n\
             let x = 2; // mspt-analyze: allow(no-such-lint) reason\n",
        );
        let findings = run_lints(&ws, &lints);
        assert!(findings
            .iter()
            .any(|f| f.lint == ALLOW_AUDIT_LINT && f.message.contains("no reason")));
        assert!(findings
            .iter()
            .any(|f| f.lint == ALLOW_AUDIT_LINT && f.message.contains("unknown lint")));
        // A reasonless allow still suppresses nothing? No: it *does*
        // suppress (the match only needs the lint name), but the audit
        // finding keeps the run red, so the suppression cannot ship.
        assert!(findings.iter().filter(|f| f.is_active_deny()).count() >= 2);
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let lints: Vec<Box<dyn Lint>> = vec![Box::new(FireOnNeedle)];
        let ws = workspace("#[cfg(test)]\nmod tests { fn f() { let needle = 1; } }\n");
        let findings = run_lints(&ws, &lints);
        assert!(findings.iter().all(|f| !f.is_active_deny()), "{findings:?}");
    }
}
