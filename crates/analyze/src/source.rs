//! The analyzed source model: one lexed file with its test regions and
//! escape comments, and the workspace walker that collects them.
//!
//! # Test-code exclusion
//!
//! The contracts the lints enforce bind **library** code; tests violate them
//! on purpose (pinned raw seeds, deliberate poison, hostile documents). The
//! walker therefore excludes `tests/`, `benches/` and `examples/`
//! directories entirely, and [`SourceFile::from_source`] computes the token
//! spans guarded by a `#[cfg(test)]` attribute (a `mod tests { … }` block or
//! a single item) so in-file unit tests are exempt too.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, AllowComment, Token};

/// One lexed source file plus the metadata the lints key on.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative when walked).
    pub path: PathBuf,
    /// The crate directory name under `crates/` (`sim`, `serve`, …); the
    /// facade crate reports as `mspt`.
    pub crate_name: String,
    /// Token stream (comments stripped, string contents preserved).
    pub tokens: Vec<Token>,
    /// `// mspt-analyze: allow(…)` escape comments, in source order.
    pub allows: Vec<AllowComment>,
    /// Half-open token-index ranges under `#[cfg(test)]`.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes a source text into an analyzable file.
    #[must_use]
    pub fn from_source(path: impl Into<PathBuf>, crate_name: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_spans = test_spans(&lexed.tokens);
        SourceFile {
            path: path.into(),
            crate_name: crate_name.to_string(),
            tokens: lexed.tokens,
            allows: lexed.allows,
            test_spans,
        }
    }

    /// Whether the token at `index` sits inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn is_test_token(&self, index: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| index >= start && index < end)
    }

    /// Finds the escape comment silencing `lint` for a finding on `line`:
    /// either on the line itself, or in the contiguous run of escape-comment
    /// lines immediately above it (so multiple lints can be allowed for one
    /// statement, stacked one per line).
    #[must_use]
    pub fn allow_for(&self, lint: &str, line: u32) -> Option<&AllowComment> {
        let mut probe = line;
        loop {
            if let Some(found) = self
                .allows
                .iter()
                .find(|allow| allow.line == probe && allow.well_formed && allow.lint == lint)
            {
                return Some(found);
            }
            // Step onto the previous line only while it is a *pure* escape
            // line: an escape comment with no code tokens of its own, so an
            // inline allow never leaks onto the statement below it.
            let above = probe.checked_sub(1)?;
            let above_is_pure_escape = self.allows.iter().any(|allow| allow.line == above)
                && !self.tokens.iter().any(|token| token.line == above);
            if !above_is_pure_escape {
                return None;
            }
            probe = above;
        }
    }
}

/// Computes the token spans guarded by `#[cfg(test)]`-style attributes: the
/// attribute tokens themselves plus the following item (to its closing `}`
/// or terminating `;`).
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        if !tokens[index].is_punct('#') {
            index += 1;
            continue;
        }
        if !tokens
            .get(index + 1)
            .is_some_and(|token| token.is_punct('['))
        {
            index += 1;
            continue;
        }
        let Some(close) = matching(tokens, index + 1, '[', ']') else {
            index += 1;
            continue;
        };
        let guards_test = tokens[index + 2..close]
            .windows(2)
            .any(|pair| pair[0].is_ident("cfg") && pair[1].is_punct('('))
            && tokens[index + 2..close]
                .iter()
                .any(|token| token.is_ident("test"));
        if !guards_test {
            index = close + 1;
            continue;
        }
        // Skip any further attributes between the cfg and its item.
        let mut item = close + 1;
        while item < tokens.len() && tokens[item].is_punct('#') {
            match matching(tokens, item + 1, '[', ']') {
                Some(end) => item = end + 1,
                None => break,
            }
        }
        // The guarded item ends at its balanced `{ … }` or at `;`.
        let mut end = item;
        let mut depth_paren = 0i32;
        while end < tokens.len() {
            let token = &tokens[end];
            if token.is_punct('(') || token.is_punct('[') {
                depth_paren += 1;
            } else if token.is_punct(')') || token.is_punct(']') {
                depth_paren -= 1;
            } else if token.is_punct('{') && depth_paren == 0 {
                end = matching(tokens, end, '{', '}').unwrap_or(tokens.len() - 1);
                break;
            } else if token.is_punct(';') && depth_paren == 0 {
                break;
            }
            end += 1;
        }
        spans.push((index, (end + 1).min(tokens.len())));
        index = end + 1;
    }
    spans
}

/// Index of the token closing the bracket opened at `open_index`.
#[must_use]
pub fn matching(tokens: &[Token], open_index: usize, open: char, close: char) -> Option<usize> {
    if !tokens.get(open_index)?.is_punct(open) {
        return None;
    }
    let mut depth = 0i32;
    for (offset, token) in tokens[open_index..].iter().enumerate() {
        if token.is_punct(open) {
            depth += 1;
        } else if token.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(open_index + offset);
            }
        }
    }
    None
}

/// The whole analyzed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Every analyzed file.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks a workspace root, lexing `src/lib.rs`-rooted crate sources:
    /// the facade `src/` plus every `crates/<name>/src/` tree. `vendor/`
    /// stand-ins, `target/`, and `tests`/`benches`/`examples` directories
    /// are excluded (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns an error string when the root has no `crates/` directory or a
    /// source file cannot be read.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let facade = root.join("src");
        if facade.is_dir() {
            collect(&facade, root, "mspt", &mut files)?;
        }
        let crates = root.join("crates");
        if !crates.is_dir() {
            return Err(format!("{} has no crates/ directory", root.display()));
        }
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|error| format!("reading {}: {error}", crates.display()))?
            .filter_map(std::result::Result::ok)
            .map(|entry| entry.path())
            .filter(|path| path.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let name = crate_dir
                .file_name()
                .map(|name| name.to_string_lossy().into_owned())
                .unwrap_or_default();
            let src = crate_dir.join("src");
            if src.is_dir() {
                collect(&src, root, &name, &mut files)?;
            }
        }
        Ok(Workspace { files })
    }
}

fn collect(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|error| format!("reading {}: {error}", dir.display()))?
        .filter_map(std::result::Result::ok)
        .map(|entry| entry.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let dir_name = path
                .file_name()
                .map(|name| name.to_string_lossy().into_owned());
            if matches!(
                dir_name.as_deref(),
                Some("tests" | "benches" | "examples" | "fixtures" | "target")
            ) {
                continue;
            }
            collect(&path, root, crate_name, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let source = std::fs::read_to_string(&path)
                .map_err(|error| format!("reading {}: {error}", path.display()))?;
            let relative = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile::from_source(relative, crate_name, &source));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_mod_blocks_and_single_items() {
        let file = SourceFile::from_source(
            "x.rs",
            "sim",
            "fn live() { seed(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { seed(); }\n}\n\
             #[cfg(test)]\nuse std::collections::HashMap;\n\
             fn also_live() {}\n",
        );
        let seeds: Vec<bool> = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, token)| token.is_ident("seed"))
            .map(|(index, _)| file.is_test_token(index))
            .collect();
        assert_eq!(seeds, [false, true]);
        let map_index = file
            .tokens
            .iter()
            .position(|token| token.is_ident("HashMap"))
            .unwrap();
        assert!(file.is_test_token(map_index));
        let live_index = file
            .tokens
            .iter()
            .position(|token| token.is_ident("also_live"))
            .unwrap();
        assert!(!file.is_test_token(live_index));
    }

    #[test]
    fn cfg_all_test_regions_are_detected_too() {
        let file = SourceFile::from_source(
            "x.rs",
            "sim",
            "#[cfg(all(test, feature = \"x\"))]\nmod tests { fn t() {} }\n",
        );
        let t_index = file
            .tokens
            .iter()
            .position(|token| token.is_ident("t"))
            .unwrap();
        assert!(file.is_test_token(t_index));
    }

    #[test]
    fn allow_matches_same_line_and_stacked_lines_above() {
        let file = SourceFile::from_source(
            "x.rs",
            "sim",
            "// mspt-analyze: allow(raw-seed) reason one\n\
             // mspt-analyze: allow(lock-discipline) reason two\n\
             let x = 1; // mspt-analyze: allow(codec-symmetry) inline reason\n",
        );
        assert!(file.allow_for("raw-seed", 3).is_some());
        assert!(file.allow_for("lock-discipline", 3).is_some());
        assert!(file.allow_for("codec-symmetry", 3).is_some());
        // A non-adjacent allow does not leak downward.
        assert!(file.allow_for("raw-seed", 5).is_none());
        // An unrelated lint is not silenced.
        assert!(file.allow_for("domain-tag-registry", 3).is_none());
    }
}
