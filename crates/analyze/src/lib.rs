//! mspt-analyze: the workspace lint pass that machine-checks the
//! determinism, locking and codec contracts.
//!
//! The workspace's correctness story rests on three contracts that the type
//! system cannot express and code review keeps re-litigating:
//!
//! * **determinism** — every random stream derives from
//!   `chunk_seed(seed ^ DOMAIN, chunk)`, domain tags are globally unique,
//!   and no wall clock or hash-order iteration feeds an evaluation result;
//! * **locking** — a consistent acquisition order, condvar predicates
//!   re-checked in loops, an explicit poison policy, and no blocking calls
//!   under a held guard;
//! * **codec symmetry** — every key a `*_to_json` encoder writes is read by
//!   its `*_from_json` decoder and vice versa.
//!
//! This crate machine-checks all three. It is deliberately dependency-free:
//! a hand-rolled [`lexer`] strips comments and strings into a token stream,
//! [`source`] walks the workspace and computes `#[cfg(test)]` regions, and
//! the [`lint`] framework runs the five lints in [`lints`] and applies the
//! escape comments.
//!
//! # Escape comments
//!
//! A finding is suppressed — visibly, auditable in the JSON artifact — by a
//! comment on the same line or the contiguous comment lines directly above:
//!
//! ```text
//! // mspt-analyze: allow(raw-seed) seed already derived by run_indexed
//! let rng = StdRng::seed_from_u64(seed);
//! ```
//!
//! The reason is mandatory; a reasonless or malformed escape comment is
//! itself a deny finding, and an escape comment that suppresses nothing is
//! a warning so stale allows surface instead of rotting.
//!
//! # CI
//!
//! The `static-analysis` job runs `mspt-analyze` in deny mode before the
//! build matrix and uploads `ANALYZE_findings.json`; any active deny
//! finding fails the job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod lexer;
pub mod lint;
pub mod lints;
pub mod source;

pub use diagnostics::{render_findings_json, write_findings_json, Finding, Severity};
pub use lint::{default_lints, run_lints, Lint};
pub use source::{SourceFile, Workspace};
