//! A minimal Rust lexer for lint purposes: strips comments and collapses
//! string literals, emitting line/column-tagged tokens.
//!
//! This is **not** a compiler front end. It understands exactly enough of
//! Rust's lexical grammar to make token-pattern lints sound:
//!
//! * line comments (`//`), nested block comments (`/* /* */ */`);
//! * string, raw-string (`r#"…"#`), byte-string and char literals — their
//!   *contents* survive as [`TokenKind::Str`] tokens (the codec-symmetry
//!   lint matches on key literals) but never produce identifier tokens, so
//!   a lint needle inside a string can never fire;
//! * lifetimes (`'a`) vs. char literals (`'a'`);
//! * identifiers, number literals and single-character punctuation.
//!
//! The lexer also extracts the analyzer's escape hatch while scanning line
//! comments: `// mspt-analyze: allow(<lint>) <reason>` becomes an
//! [`AllowComment`] carrying its line, the lint it silences and the
//! mandatory human-readable reason.

/// What a token is, at the granularity the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `seed_from_u64`, `Mutex`, …).
    Ident,
    /// A number literal, kept as its source text (`0xcafe_f00d`, `1e300`).
    Number,
    /// The *contents* of a string / byte-string literal (quotes stripped).
    Str,
    /// The contents of a char literal (quotes stripped).
    Char,
    /// A lifetime (`'a`), without the leading quote.
    Lifetime,
    /// One punctuation character (`{`, `.`, `#`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (see [`TokenKind`] for what is kept per class).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// The marker a line comment must start with (after `//` and whitespace) to
/// be an analyzer escape comment.
pub const ALLOW_MARKER: &str = "mspt-analyze:";

/// A parsed `// mspt-analyze: allow(<lint>) <reason>` escape comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowComment {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The lint name inside `allow(…)`.
    pub lint: String,
    /// Free-form justification after the closing parenthesis. The driver
    /// rejects empty reasons: an unexplained suppression is itself a
    /// finding.
    pub reason: String,
    /// Whether the comment parsed as a well-formed `allow(<lint>)` clause.
    /// Malformed markers (e.g. `mspt-analyze: allowed(x)`) are reported
    /// instead of silently ignored.
    pub well_formed: bool,
}

/// The output of [`lex`]: tokens plus the escape comments found on the way.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// All `mspt-analyze:` escape comments, in source order.
    pub allows: Vec<AllowComment>,
}

/// Lexes a Rust source text. Never fails: unterminated literals simply end
/// at end-of-file (the real compiler rejects such files long before the
/// analyzer matters).
#[must_use]
pub fn lex(source: &str) -> LexOutput {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexOutput,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters. Multi-byte
    /// UTF-8 continuation bytes do not advance the column, so columns count
    /// characters, not bytes.
    fn bump(&mut self) -> Option<u8> {
        let byte = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if byte & 0xc0 != 0x80 {
            self.col += 1;
        }
        Some(byte)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> LexOutput {
        while let Some(byte) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match byte {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.bump();
                    let text = self.string_body(0);
                    self.push(TokenKind::Str, text, line, col);
                }
                b'r' | b'b' if self.raw_or_byte_string(line, col) => {}
                b'\'' => self.char_or_lifetime(line, col),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    let text = self.ident_body();
                    self.push(TokenKind::Ident, text, line, col);
                }
                b'0'..=b'9' => {
                    let text = self.number_body();
                    self.push(TokenKind::Number, text, line, col);
                }
                _ => {
                    self.bump();
                    // Multi-byte characters outside literals only occur in
                    // doc text the comment paths already consumed; emit the
                    // lead byte as opaque punctuation either way.
                    self.push(TokenKind::Punct, (byte as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let start = self.pos;
        while let Some(byte) = self.peek(0) {
            if byte == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.parse_allow(&text, line);
    }

    fn parse_allow(&mut self, comment: &str, line: u32) {
        // Tolerate doc-comment slashes and `!` before the marker.
        let body = comment.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix(ALLOW_MARKER) else {
            return;
        };
        let rest = rest.trim_start();
        // Only `allow…` clauses are escape-comment candidates; prose that
        // merely mentions the tool name (docs, READMEs quoted in comments)
        // is not a malformed marker.
        if !rest.starts_with("allow") {
            return;
        }
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|clause| clause.split_once(')'))
            .map(|(lint, reason)| (lint.trim().to_string(), reason.trim().to_string()));
        match parsed {
            Some((lint, reason)) if !lint.is_empty() => self.out.allows.push(AllowComment {
                line,
                lint,
                reason,
                well_formed: true,
            }),
            _ => self.out.allows.push(AllowComment {
                line,
                lint: String::new(),
                reason: rest.to_string(),
                well_formed: false,
            }),
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a plain string body (opening quote already consumed),
    /// honoring `\` escapes, and returns its raw contents.
    fn string_body(&mut self, _hashes: usize) -> String {
        let start = self.pos;
        while let Some(byte) = self.peek(0) {
            match byte {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump(); // closing quote
        text
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and friends. Returns
    /// `false` when the `r`/`b` is just the start of an identifier, leaving
    /// the position untouched.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 1;
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        let is_raw = self.bytes[self.pos] == b'r' || ahead == 2;
        // Count `#`s after the prefix (raw strings only).
        let mut hashes = 0;
        if is_raw {
            while self.peek(ahead + hashes) == Some(b'#') {
                hashes += 1;
            }
        }
        if self.peek(ahead + hashes) != Some(b'"') {
            return false;
        }
        for _ in 0..(ahead + hashes + 1) {
            self.bump();
        }
        if !is_raw {
            let text = self.string_body(0);
            self.push(TokenKind::Str, text, line, col);
            return true;
        }
        // Raw body: ends at `"` followed by `hashes` hash characters.
        let start = self.pos;
        let closing: Vec<u8> = std::iter::once(b'"')
            .chain((0..hashes).map(|_| b'#'))
            .collect();
        loop {
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.bytes[self.pos..].starts_with(&closing) {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        for _ in 0..closing.len() {
            self.bump();
        }
        self.push(TokenKind::Str, text, line, col);
        true
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime =
            matches!(first, Some(b'_' | b'a'..=b'z' | b'A'..=b'Z')) && second != Some(b'\'');
        if is_lifetime {
            let text = self.ident_body();
            self.push(TokenKind::Lifetime, text, line, col);
            return;
        }
        let start = self.pos;
        while let Some(byte) = self.peek(0) {
            match byte {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(TokenKind::Char, text, line, col);
    }

    fn ident_body(&mut self) -> String {
        let start = self.pos;
        while let Some(byte) = self.peek(0) {
            if byte.is_ascii_alphanumeric() || byte == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// Number literals: digits, `_` separators, hex/typed suffixes, and a
    /// decimal point only when a digit follows (so `1.max(2)` and tuple
    /// indexing stay punctuation).
    fn number_body(&mut self) -> String {
        let start = self.pos;
        while let Some(byte) = self.peek(0) {
            if byte.is_ascii_alphanumeric()
                || byte == b'_'
                || (byte == b'.' && matches!(self.peek(1), Some(b'0'..=b'9')))
            {
                self.bump();
            } else if matches!(byte, b'+' | b'-')
                && matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            {
                // Exponent sign (`1e-3`), only directly after `e`/`E`.
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|token| token.kind == TokenKind::Ident)
            .map(|token| token.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_never_produce_identifier_tokens() {
        let source = r##"
            // seed_from_u64 in a line comment
            /* seed_from_u64 in /* a nested */ block comment */
            let a = "seed_from_u64 in a string";
            let b = r#"seed_from_u64 in a raw string"#;
            let c = b"seed_from_u64 bytes";
        "##;
        let names = idents(source);
        assert!(!names.contains(&"seed_from_u64".to_string()), "{names:?}");
        assert!(names.contains(&"let".to_string()));
    }

    #[test]
    fn string_contents_survive_as_str_tokens() {
        let tokens = lex(r#"get("kind")"#).tokens;
        assert_eq!(tokens[0].text, "get");
        assert!(tokens[1].is_punct('('));
        assert_eq!(tokens[2].kind, TokenKind::Str);
        assert_eq!(tokens[2].text, "kind");
        assert!(tokens[3].is_punct(')'));
    }

    #[test]
    fn lifetimes_do_not_swallow_the_rest_of_the_file() {
        let names = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(names, ["fn", "f", "x", "str", "str", "x"]);
        let tokens = lex("let c = 'x'; let nl = '\\n';").tokens;
        let chars: Vec<_> = tokens
            .iter()
            .filter(|token| token.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let tokens = lex("ab\n  cd").tokens;
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn numbers_keep_hex_and_separators_but_not_method_calls() {
        let tokens = lex("0xcac4_e4e7 1e300 1.max(2) 2.5").tokens;
        assert_eq!(tokens[0].text, "0xcac4_e4e7");
        assert_eq!(tokens[1].text, "1e300");
        assert_eq!(tokens[2].text, "1");
        assert!(tokens[3].is_punct('.'));
        assert_eq!(tokens[4].text, "max");
        assert_eq!(tokens.last().unwrap().text, "2.5");
    }

    #[test]
    fn allow_comments_are_extracted_with_lint_and_reason() {
        let out = lex(
            "let x = 1; // mspt-analyze: allow(raw-seed) caller derives the seed\n\
             // mspt-analyze: allow(lock-discipline)\n\
             // mspt-analyze: allow lock-discipline missing parens\n\
             //! mspt-analyze: the lint pass (prose, not a marker)\n",
        );
        assert_eq!(out.allows.len(), 3);
        assert_eq!(out.allows[0].line, 1);
        assert_eq!(out.allows[0].lint, "raw-seed");
        assert_eq!(out.allows[0].reason, "caller derives the seed");
        assert!(out.allows[0].well_formed);
        // Reasonless allow still parses (the driver rejects it later).
        assert_eq!(out.allows[1].lint, "lock-discipline");
        assert_eq!(out.allows[1].reason, "");
        // Malformed marker is flagged, not dropped.
        assert!(!out.allows[2].well_formed);
    }
}
