//! Findings, severities and the JSON artifact the CI job uploads.
//!
//! The artifact is hand-rolled JSON (the analyzer is dependency-free on
//! purpose): a fixed schema of `{schema_version, counts, findings[]}` where
//! each finding carries its lint, severity, location and message, plus —
//! for suppressed findings — the escape comment's reason. Suppressed
//! findings stay in the artifact: an allow is an auditable decision, not an
//! eraser.

use std::fmt;
use std::path::Path;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the deny-mode run.
    Deny,
    /// Reported but never fails the run (e.g. an allow comment that no
    /// longer suppresses anything).
    Warn,
}

impl Severity {
    /// The stable artifact tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint that produced it (kebab-case registry name).
    pub lint: &'static str,
    /// Gate level.
    pub severity: Severity,
    /// Workspace-relative file, `(registry)` for registry-side findings.
    pub file: String,
    /// 1-based line (0 when no source location applies).
    pub line: u32,
    /// 1-based column (0 when no source location applies).
    pub col: u32,
    /// Human-readable description of the violated contract.
    pub message: String,
    /// The escape-comment reason when the finding is suppressed.
    pub allowed: Option<String>,
}

impl Finding {
    /// A deny-level finding at a source location.
    #[must_use]
    pub fn deny(
        lint: &'static str,
        file: impl Into<String>,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            lint,
            severity: Severity::Deny,
            file: file.into(),
            line,
            col,
            message: message.into(),
            allowed: None,
        }
    }

    /// Whether this finding fails a deny-mode run: deny severity and not
    /// suppressed by an escape comment.
    #[must_use]
    pub fn is_active_deny(&self) -> bool {
        self.severity == Severity::Deny && self.allowed.is_none()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match (&self.allowed, self.severity) {
            (Some(_), _) => "allowed",
            (None, Severity::Deny) => "deny",
            (None, Severity::Warn) => "warn",
        };
        write!(
            f,
            "{state}[{lint}] {file}:{line}:{col}: {message}",
            lint = self.lint,
            file = self.file,
            line = self.line,
            col = self.col,
            message = self.message
        )?;
        if let Some(reason) = &self.allowed {
            write!(f, " (allowed: {reason})")?;
        }
        Ok(())
    }
}

/// Schema version of the findings artifact. Bump on any shape change.
pub const FINDINGS_SCHEMA_VERSION: u64 = 1;

fn escape_json(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", ch as u32));
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
}

/// Renders the findings artifact (`ANALYZE_findings.json`): deterministic
/// key order, findings in the order the registry produced them.
#[must_use]
pub fn render_findings_json(findings: &[Finding]) -> String {
    let deny = findings.iter().filter(|f| f.is_active_deny()).count();
    let warn = findings
        .iter()
        .filter(|f| f.severity == Severity::Warn && f.allowed.is_none())
        .count();
    let suppressed = findings.iter().filter(|f| f.allowed.is_some()).count();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema_version\":{FINDINGS_SCHEMA_VERSION},\
         \"counts\":{{\"deny\":{deny},\"warn\":{warn},\"suppressed\":{suppressed}}},\
         \"findings\":["
    ));
    for (index, finding) in findings.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("{\"lint\":");
        escape_json(finding.lint, &mut out);
        out.push_str(",\"severity\":");
        escape_json(finding.severity.as_str(), &mut out);
        out.push_str(",\"file\":");
        escape_json(&finding.file, &mut out);
        out.push_str(&format!(
            ",\"line\":{line},\"col\":{col},\"message\":",
            line = finding.line,
            col = finding.col
        ));
        escape_json(&finding.message, &mut out);
        match &finding.allowed {
            Some(reason) => {
                out.push_str(",\"allowed\":");
                escape_json(reason, &mut out);
            }
            None => out.push_str(",\"allowed\":null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Writes the artifact to a file.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn write_findings_json(path: &Path, findings: &[Finding]) -> Result<(), String> {
    std::fs::write(path, render_findings_json(findings))
        .map_err(|error| format!("writing {}: {error}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_counts_and_escapes_are_correct() {
        let mut allowed = Finding::deny("raw-seed", "a.rs", 3, 7, "raw \"seed\"");
        allowed.allowed = Some("caller derives it".to_string());
        let findings = vec![Finding::deny("raw-seed", "a.rs", 1, 1, "x"), allowed];
        let json = render_findings_json(&findings);
        assert!(json.contains("\"deny\":1"));
        assert!(json.contains("\"suppressed\":1"));
        assert!(json.contains("raw \\\"seed\\\""));
        assert!(json.contains("\"allowed\":\"caller derives it\""));
        assert!(json.starts_with("{\"schema_version\":1"));
    }

    #[test]
    fn display_is_grep_friendly() {
        let finding = Finding::deny("lock-discipline", "crates/x/src/a.rs", 10, 5, "held");
        assert_eq!(
            finding.to_string(),
            "deny[lock-discipline] crates/x/src/a.rs:10:5: held"
        );
    }
}
