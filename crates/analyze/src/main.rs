//! The `mspt-analyze` CLI.
//!
//! ```text
//! mspt-analyze [--root <dir>] [--json <path>] [--warn] [--list]
//! ```
//!
//! Walks the workspace, runs every registered lint, prints findings one per
//! line (grep-friendly `state[lint] file:line:col: message`), optionally
//! writes the JSON artifact, and exits 1 when any active deny finding
//! remains (0 in `--warn` mode).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mspt_analyze::{default_lints, run_lints, write_findings_json, Workspace};

struct Options {
    root: PathBuf,
    json: Option<PathBuf>,
    warn_only: bool,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        json: None,
        warn_only: false,
        list: false,
    };
    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--root" => {
                options.root = arguments
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root needs a directory")?;
            }
            "--json" => {
                options.json = Some(
                    arguments
                        .next()
                        .map(PathBuf::from)
                        .ok_or("--json needs a path")?,
                );
            }
            "--warn" => options.warn_only = true,
            "--list" => options.list = true,
            "--help" | "-h" => {
                println!(
                    "mspt-analyze [--root <dir>] [--json <path>] [--warn] [--list]\n\
                     \n\
                     --root <dir>   workspace root to analyze (default: .)\n\
                     --json <path>  write the findings artifact\n\
                     --warn         report findings but always exit 0\n\
                     --list         print the lint registry and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("mspt-analyze: {message}");
            return ExitCode::FAILURE;
        }
    };
    let lints = default_lints();
    if options.list {
        for lint in &lints {
            println!("{:<24} {}", lint.name(), lint.description());
        }
        return ExitCode::SUCCESS;
    }
    let workspace = match Workspace::load(&options.root) {
        Ok(workspace) => workspace,
        Err(message) => {
            eprintln!("mspt-analyze: {message}");
            return ExitCode::FAILURE;
        }
    };
    let findings = run_lints(&workspace, &lints);
    for finding in &findings {
        println!("{finding}");
    }
    if let Some(path) = &options.json {
        if let Err(message) = write_findings_json(path, &findings) {
            eprintln!("mspt-analyze: {message}");
            return ExitCode::FAILURE;
        }
    }
    let deny = findings.iter().filter(|f| f.is_active_deny()).count();
    let suppressed = findings.iter().filter(|f| f.allowed.is_some()).count();
    let warn = findings.len() - deny - suppressed;
    println!(
        "mspt-analyze: {files} files, {deny} deny, {warn} warn, {suppressed} suppressed",
        files = workspace.files.len()
    );
    if deny > 0 && !options.warn_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
