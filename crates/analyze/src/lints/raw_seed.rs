//! `raw-seed`: RNG construction in the deterministic crates must route
//! through the workspace seed-derivation primitive.
//!
//! The reproducibility contract (ARCHITECTURE.md) is that every random
//! stream in the evaluation pipeline is derived as
//! `chunk_seed(seed ^ DOMAIN, chunk)`, so results are independent of thread
//! count and chunk scheduling. This lint flags, inside the deterministic
//! crates, any `seed_from_u64(…)` whose argument expression does not itself
//! call a `chunk_seed`-family deriver, plus any use of the inherently
//! nondeterministic constructors (`thread_rng`, `from_entropy`, `from_os_rng`).
//!
//! A construction whose seed was *already* derived by the caller is a
//! legitimate pattern — that is what the escape comment is for, and it forces
//! the derivation chain to be documented at the construction site.

use crate::diagnostics::Finding;
use crate::lint::Lint;
use crate::lints::call_close;
use crate::source::Workspace;

/// Crates bound by the determinism contract.
const DETERMINISTIC_CRATES: &[&str] = &["sim", "crossbar", "codes", "physics"];

/// Constructors that can never be deterministic.
const ENTROPY_CONSTRUCTORS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// See the module docs.
pub struct RawSeed;

impl Lint for RawSeed {
    fn name(&self) -> &'static str {
        "raw-seed"
    }

    fn description(&self) -> &'static str {
        "RNG streams in deterministic crates must derive their seed via chunk_seed"
    }

    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        for file in &workspace.files {
            if !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let path = file.path.to_string_lossy().into_owned();
            let tokens = &file.tokens;
            for (index, token) in tokens.iter().enumerate() {
                if file.is_test_token(index) {
                    continue;
                }
                if ENTROPY_CONSTRUCTORS.iter().any(|name| token.is_ident(name)) {
                    findings.push(Finding::deny(
                        self.name(),
                        path.clone(),
                        token.line,
                        token.col,
                        format!(
                            "`{}` is nondeterministic; deterministic crates must derive seeds \
                             via chunk_seed",
                            token.text
                        ),
                    ));
                    continue;
                }
                if !token.is_ident("seed_from_u64") {
                    continue;
                }
                let Some(close) = call_close(tokens, index) else {
                    continue;
                };
                let derived = tokens[index + 2..close].iter().any(|argument| {
                    argument.kind == crate::lexer::TokenKind::Ident
                        && argument.text.ends_with("chunk_seed")
                });
                if !derived {
                    findings.push(Finding::deny(
                        self.name(),
                        path.clone(),
                        token.line,
                        token.col,
                        "seed_from_u64 argument does not visibly derive from chunk_seed; \
                         route the seed through chunk_seed(seed ^ DOMAIN, chunk) or document \
                         the derivation chain with an escape comment",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(crate_name: &str, source: &str) -> Vec<Finding> {
        let workspace = Workspace {
            files: vec![SourceFile::from_source("x.rs", crate_name, source)],
        };
        let mut findings = Vec::new();
        RawSeed.check(&workspace, &mut findings);
        findings
    }

    #[test]
    fn raw_seed_fires_and_derived_seed_does_not() {
        assert_eq!(check("sim", "let r = StdRng::seed_from_u64(42);").len(), 1);
        assert_eq!(
            check(
                "sim",
                "let r = StdRng::seed_from_u64(chunk_seed(seed ^ D, c));"
            )
            .len(),
            0
        );
        assert_eq!(
            check(
                "crossbar",
                "let r = StdRng::seed_from_u64(defect_chunk_seed(spec, index));"
            )
            .len(),
            0
        );
    }

    #[test]
    fn entropy_constructors_always_fire_in_scope_crates_only() {
        assert_eq!(check("codes", "let r = thread_rng();").len(), 1);
        assert_eq!(check("serve", "let r = thread_rng();").len(), 0);
        assert_eq!(check("physics", "let r = StdRng::from_entropy();").len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let findings = check(
            "sim",
            "#[cfg(test)]\nmod tests { fn t() { let r = StdRng::seed_from_u64(7); } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
