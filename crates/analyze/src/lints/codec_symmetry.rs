//! `codec-symmetry`: every key a `*_to_json` encoder writes must be read by
//! its paired `*_from_json` decoder, and every `TAG_*` section a `*_to_bin`
//! encoder writes must be handled by its paired `*_from_bin` decoder — and
//! vice versa.
//!
//! Both wire codecs are hand-rolled (the workspace is dependency-free on
//! the wire path), so nothing structurally ties an encoder's key set to its
//! decoder's. A key written but never read is silent payload rot; a key read
//! but never written is a latent decode error on every round-trip. This lint
//! pairs `foo_to_json` with `foo_from_json` (and `foo_to_bin` with
//! `foo_from_bin`) **in the same file** and compares their key sets:
//!
//! * JSON encoder keys — string literals in `("key", …)` tuple position,
//!   i.e. a `Str` token preceded by `(` and followed by `,`, restricted to
//!   snake_case identifiers so error-message strings never match;
//! * JSON decoder keys — the sole string argument of `get("key")` /
//!   `get_opt("key")` calls;
//! * binary keys, both sides — `TAG_*` section-tag identifiers referenced
//!   in the body. Leaf codecs that write a fixed layout with no sections
//!   have empty sets on both sides and compare clean.
//!
//! An unpaired `*_to_json`/`*_from_json`/`*_to_bin`/`*_from_bin` is also a
//! finding: one-way wire types silently lose round-trip coverage.

use std::collections::BTreeSet;

use crate::diagnostics::Finding;
use crate::lexer::{Token, TokenKind};
use crate::lint::Lint;
use crate::lints::function_bodies;
use crate::source::{SourceFile, Workspace};

/// See the module docs.
pub struct CodecSymmetry;

fn is_snake_case_key(text: &str) -> bool {
    !text.is_empty()
        && text
            .chars()
            .next()
            .is_some_and(|ch| ch.is_ascii_lowercase() || ch == '_')
        && text
            .chars()
            .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_')
}

/// Keys the encoder writes: `("key", …)` tuple heads.
fn encoder_keys(tokens: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for index in open..close {
        let token = &tokens[index];
        if token.kind == TokenKind::Str
            && is_snake_case_key(&token.text)
            && index > 0
            && tokens[index - 1].is_punct('(')
            && tokens.get(index + 1).is_some_and(|next| next.is_punct(','))
        {
            keys.insert(token.text.clone());
        }
    }
    keys
}

/// Keys the decoder reads: sole string argument of `get(…)`/`get_opt(…)`.
fn decoder_keys(tokens: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for index in open..close {
        let token = &tokens[index];
        if !(token.is_ident("get") || token.is_ident("get_opt")) {
            continue;
        }
        if !tokens.get(index + 1).is_some_and(|next| next.is_punct('(')) {
            continue;
        }
        if let Some(argument) = tokens.get(index + 2) {
            if argument.kind == TokenKind::Str
                && tokens.get(index + 3).is_some_and(|next| next.is_punct(')'))
            {
                keys.insert(argument.text.clone());
            }
        }
    }
    keys
}

/// One encoder/decoder naming convention with its key extractors.
struct CodecPass {
    to_suffix: &'static str,
    from_suffix: &'static str,
    /// What a mismatched entry is called in the finding ("key", "section tag").
    unit: &'static str,
    encoder: fn(&[Token], usize, usize) -> BTreeSet<String>,
    decoder: fn(&[Token], usize, usize) -> BTreeSet<String>,
}

const PASSES: &[CodecPass] = &[
    CodecPass {
        to_suffix: "_to_json",
        from_suffix: "_from_json",
        unit: "key",
        encoder: encoder_keys,
        decoder: decoder_keys,
    },
    CodecPass {
        to_suffix: "_to_bin",
        from_suffix: "_from_bin",
        unit: "section tag",
        encoder: tag_idents,
        decoder: tag_idents,
    },
];

/// Section-tag identifiers (`TAG_*`, SCREAMING_SNAKE_CASE) referenced in a
/// binary codec body — both sides of a `*_to_bin`/`*_from_bin` pair use the
/// same named constants, so the referenced sets must match. Leaf codecs with
/// a fixed layout reference none and compare clean.
fn tag_idents(tokens: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut tags = BTreeSet::new();
    for token in &tokens[open..close] {
        if token.kind == TokenKind::Ident
            && token.text.len() > 4
            && token.text.starts_with("TAG_")
            && token
                .text
                .chars()
                .all(|ch| ch.is_ascii_uppercase() || ch.is_ascii_digit() || ch == '_')
        {
            tags.insert(token.text.clone());
        }
    }
    tags
}

fn check_file(lint_name: &'static str, file: &SourceFile, findings: &mut Vec<Finding>) {
    let path = file.path.to_string_lossy().into_owned();
    let tokens = &file.tokens;
    let bodies = function_bodies(tokens);
    for pass in PASSES {
        for (name, open, close, line, col) in &bodies {
            if file.is_test_token(*open) {
                continue;
            }
            let Some(base) = name.strip_suffix(pass.to_suffix) else {
                continue;
            };
            let partner = format!("{base}{}", pass.from_suffix);
            let Some((_, from_open, from_close, _, _)) =
                bodies.iter().find(|(other, ..)| *other == partner)
            else {
                findings.push(Finding::deny(
                    lint_name,
                    path.clone(),
                    *line,
                    *col,
                    format!(
                        "`{name}` has no `{partner}` in this file; one-way wire types \
                             lose round-trip coverage"
                    ),
                ));
                continue;
            };
            let written = (pass.encoder)(tokens, *open, *close);
            let read = (pass.decoder)(tokens, *from_open, *from_close);
            for key in written.difference(&read) {
                findings.push(Finding::deny(
                    lint_name,
                    path.clone(),
                    *line,
                    *col,
                    format!(
                        "`{name}` writes {} \"{key}\" that `{partner}` never reads",
                        pass.unit
                    ),
                ));
            }
            for key in read.difference(&written) {
                findings.push(Finding::deny(
                    lint_name,
                    path.clone(),
                    *line,
                    *col,
                    format!(
                        "`{partner}` reads {} \"{key}\" that `{name}` never writes",
                        pass.unit
                    ),
                ));
            }
        }
        for (name, open, _, line, col) in &bodies {
            if file.is_test_token(*open) {
                continue;
            }
            if let Some(base) = name.strip_suffix(pass.from_suffix) {
                let partner = format!("{base}{}", pass.to_suffix);
                if !bodies.iter().any(|(other, ..)| *other == partner) {
                    findings.push(Finding::deny(
                        lint_name,
                        path.clone(),
                        *line,
                        *col,
                        format!(
                            "`{name}` has no `{partner}` in this file; one-way wire \
                                 types lose round-trip coverage"
                        ),
                    ));
                }
            }
        }
    }
}

impl Lint for CodecSymmetry {
    fn name(&self) -> &'static str {
        "codec-symmetry"
    }

    fn description(&self) -> &'static str {
        "every *_to_json key and *_to_bin section tag must round-trip through its paired decoder"
    }

    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        for file in &workspace.files {
            check_file(self.name(), file, findings);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(source: &str) -> Vec<Finding> {
        let workspace = Workspace {
            files: vec![SourceFile::from_source("x.rs", "sim", source)],
        };
        let mut findings = Vec::new();
        CodecSymmetry.check(&workspace, &mut findings);
        findings
    }

    #[test]
    fn symmetric_pairs_are_clean() {
        let source = r#"
            pub fn spec_to_json(s: &Spec) -> JsonValue {
                object(vec![("rows", from(s.rows)), ("cols", from(s.cols))])
            }
            pub fn spec_from_json(v: &JsonValue) -> Result<Spec, E> {
                Ok(Spec { rows: v.get("rows")?, cols: v.get("cols")? })
            }
        "#;
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn asymmetric_keys_fire_in_both_directions() {
        let source = r#"
            pub fn spec_to_json(s: &Spec) -> JsonValue {
                object(vec![("rows", from(s.rows)), ("cols", from(s.cols))])
            }
            pub fn spec_from_json(v: &JsonValue) -> Result<Spec, E> {
                Ok(Spec { rows: v.get("rows")?, depth: v.get_opt("depth")? })
            }
        "#;
        let findings = check(source);
        assert!(
            findings.iter().any(|f| f.message.contains("\"cols\"")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("\"depth\"")),
            "{findings:?}"
        );
    }

    #[test]
    fn error_message_strings_are_not_keys() {
        let source = r#"
            pub fn spec_to_json(s: &Spec) -> JsonValue {
                object(vec![("rows", from(s.rows))])
            }
            pub fn spec_from_json(v: &JsonValue) -> Result<Spec, E> {
                let rows = v.get("rows").ok_or_else(|| err("missing rows field"))?;
                Ok(Spec { rows })
            }
        "#;
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn unpaired_codec_functions_fire() {
        let findings = check("pub fn spec_to_json(s: &Spec) -> JsonValue { object(vec![]) }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `spec_from_json`"));
    }

    #[test]
    fn symmetric_binary_pairs_are_clean() {
        let source = r#"
            pub fn spec_to_bin(s: &Spec) -> Vec<u8> {
                let mut w = BinWriter::new();
                w.section(TAG_ROWS, &rows);
                w.section(TAG_COLS, &cols);
                w.into_bytes()
            }
            pub fn spec_from_bin(bytes: &[u8]) -> Result<Spec, E> {
                while let Some((tag, body)) = reader.next_section()? {
                    match tag {
                        TAG_ROWS => {}
                        TAG_COLS => {}
                        _ => {}
                    }
                }
                Ok(spec)
            }
        "#;
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn asymmetric_section_tags_fire_in_both_directions() {
        let source = r#"
            pub fn spec_to_bin(s: &Spec) -> Vec<u8> {
                let mut w = BinWriter::new();
                w.section(TAG_ROWS, &rows);
                w.section(TAG_COLS, &cols);
                w.into_bytes()
            }
            pub fn spec_from_bin(bytes: &[u8]) -> Result<Spec, E> {
                while let Some((tag, body)) = reader.next_section()? {
                    match tag {
                        TAG_ROWS => {}
                        TAG_DEPTH => {}
                        _ => {}
                    }
                }
                Ok(spec)
            }
        "#;
        let findings = check(source);
        assert!(
            findings.iter().any(|f| f.message.contains("\"TAG_COLS\"")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("\"TAG_DEPTH\"")),
            "{findings:?}"
        );
    }

    #[test]
    fn leaf_binary_pairs_with_fixed_layouts_are_clean() {
        // No TAG_* constants at all — a fixed-layout leaf codec.
        let source = r#"
            pub fn level_to_bin(level: Level) -> Vec<u8> {
                let mut w = BinWriter::new();
                w.put_u8(level.radix());
                w.into_bytes()
            }
            pub fn level_from_bin(bytes: &[u8]) -> Result<Level, E> {
                let mut r = BinReader::new(bytes);
                let level = Level::new(r.take_u8()?)?;
                r.finish()?;
                Ok(level)
            }
        "#;
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn unpaired_binary_codec_functions_fire() {
        let findings =
            check("pub fn spec_from_bin(bytes: &[u8]) -> Result<Spec, E> { decode(bytes) }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `spec_to_bin`"));
    }
}
