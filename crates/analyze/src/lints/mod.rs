//! The six repo-contract lints.
//!
//! Each module ships one [`crate::lint::Lint`] implementation:
//!
//! | lint | contract |
//! |---|---|
//! | [`raw_seed`] | RNG streams in deterministic crates derive from `chunk_seed` |
//! | [`domain_tag`] | `*_DOMAIN` seed tags are registered and collision-free |
//! | [`unsafe_calls`] | no wall clocks or hash-order iteration in evaluation paths |
//! | [`locks`] | lock ordering, condvar predicates, poison policy, no blocking under a lock |
//! | [`codec_symmetry`] | every `*_to_json` key round-trips through `*_from_json` |
//! | [`stage_fingerprint`] | every `*_stage_key` fn reads exactly its declared config fields |

pub mod codec_symmetry;
pub mod domain_tag;
pub mod locks;
pub mod raw_seed;
pub mod stage_fingerprint;
pub mod unsafe_calls;

use crate::lexer::{Token, TokenKind};
use crate::source::matching;

/// `fn <name> … { body }` spans, keyed by function name: `(name, body-open
/// index, body-close index, name line, name col)`.
pub(crate) fn function_bodies(tokens: &[Token]) -> Vec<(String, usize, usize, u32, u32)> {
    let mut bodies = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        if !tokens[index].is_ident("fn") {
            index += 1;
            continue;
        }
        let Some(name) = tokens.get(index + 1).filter(|t| t.kind == TokenKind::Ident) else {
            index += 1;
            continue;
        };
        // The body is the first `{` at zero paren/bracket depth after the
        // signature (generics, arguments, return type may nest).
        let mut probe = index + 2;
        let mut depth = 0i32;
        let mut body = None;
        while probe < tokens.len() {
            let token = &tokens[probe];
            if token.is_punct('(') || token.is_punct('[') {
                depth += 1;
            } else if token.is_punct(')') || token.is_punct(']') {
                depth -= 1;
            } else if token.is_punct('{') && depth == 0 {
                body = Some(probe);
                break;
            } else if token.is_punct(';') && depth == 0 {
                break;
            }
            probe += 1;
        }
        let Some(open) = body else {
            index += 2;
            continue;
        };
        let close = matching(tokens, open, '{', '}').unwrap_or(tokens.len() - 1);
        bodies.push((name.text.clone(), open, close, name.line, name.col));
        index = open + 1;
    }
    bodies
}

/// Whether `tokens[index..]` starts a `.name(` method-call sequence, with
/// `index` pointing at the `.`.
pub(crate) fn is_method_call(tokens: &[Token], index: usize, name: &str) -> bool {
    tokens[index].is_punct('.')
        && tokens
            .get(index + 1)
            .is_some_and(|token| token.is_ident(name))
        && tokens
            .get(index + 2)
            .is_some_and(|token| token.is_punct('('))
}

/// Index of the token opening the bracket closed at `close_index`.
pub(crate) fn matching_back(
    tokens: &[Token],
    close_index: usize,
    open: char,
    close: char,
) -> Option<usize> {
    if !tokens.get(close_index)?.is_punct(close) {
        return None;
    }
    let mut depth = 0i32;
    for index in (0..=close_index).rev() {
        if tokens[index].is_punct(close) {
            depth += 1;
        } else if tokens[index].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(index);
            }
        }
    }
    None
}

/// Resolves the receiver identifier of a method call whose `.` sits at
/// `dot_index`: steps back over one postfix group (a call's `(…)` or an
/// index's `[…]`) and then over field chains, returning the nearest named
/// receiver — `self.state.lock()` → `state`, `shard_for(key).lock()` →
/// `shard_for`, `slots[i].lock()` → `slots`.
pub(crate) fn receiver_name(tokens: &[Token], dot_index: usize) -> Option<(String, usize)> {
    let mut index = dot_index.checked_sub(1)?;
    loop {
        let token = &tokens[index];
        if token.is_punct(')') {
            index = matching_back(tokens, index, '(', ')')?.checked_sub(1)?;
        } else if token.is_punct(']') {
            index = matching_back(tokens, index, '[', ']')?.checked_sub(1)?;
        } else {
            break;
        }
    }
    let token = &tokens[index];
    if token.kind == crate::lexer::TokenKind::Ident && token.text != "self" {
        return Some((token.text.clone(), index));
    }
    None
}

/// Index just past the close paren of the call opened right after
/// `tokens[name_index]` (the method or function name), if it is a call.
pub(crate) fn call_close(tokens: &[Token], name_index: usize) -> Option<usize> {
    matching(tokens, name_index + 1, '(', ')')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn receiver_resolution_handles_fields_calls_and_indexing() {
        let cases = [
            ("self.state.lock()", "state"),
            ("self.shard_for(key).lock()", "shard_for"),
            ("slots[index].lock()", "slots"),
            ("queue.lock()", "queue"),
        ];
        for (source, expected) in cases {
            let tokens = lex(source).tokens;
            let dot = tokens
                .iter()
                .enumerate()
                .rev()
                .find(|(index, token)| {
                    token.is_punct('.') && is_method_call(&tokens, *index, "lock")
                })
                .map(|(index, _)| index)
                .unwrap();
            let (name, _) = receiver_name(&tokens, dot).unwrap();
            assert_eq!(name, expected, "source: {source}");
        }
    }
}
