//! `lock-discipline`: a static pass over every `.lock()` site.
//!
//! Four rules, all checked lexically on the token stream:
//!
//! 1. **Ordering** — nested acquisitions build a global graph over named
//!    mutexes (the receiver identifier: `self.state.lock()` contributes
//!    `state`); any cycle in that graph — including the self-loop of
//!    re-locking a mutex while holding it — is a potential deadlock and a
//!    deny finding.
//! 2. **No blocking under a lock** — while a guard is live, calls that can
//!    block indefinitely (`join`, `sleep`, socket/file I/O, frame I/O) are
//!    deny findings. Condvar `wait`/`wait_timeout` are *not* in this list:
//!    they atomically release the guard, which is the correct pattern.
//! 3. **Condvar predicate loops** — every `.wait(…)`/`.wait_timeout(…)`
//!    must sit inside a `loop`/`while` frame, because condvars wake
//!    spuriously and the predicate must be re-checked.
//! 4. **Poison policy** — `.lock()`, `.wait*()` and `.into_inner()` return
//!    poison results; calling `.unwrap()`/`.expect(…)` on them turns one
//!    panicking thread into a permanent crash for every later caller.
//!    Recover with `unwrap_or_else(PoisonError::into_inner)` (valid whenever
//!    the critical sections keep the state structurally consistent) or
//!    propagate a typed error.
//!
//! Guard liveness is approximated lexically: a `let`-bound guard lives to
//! the end of its enclosing block or an explicit `drop(name)`, a
//! `match`-scrutinee guard to the end of the match, and a guard used in an
//! expression statement to that statement's `;`. Cross-function edges (a
//! callee locking while the caller holds a guard) are out of scope — keep
//! critical sections call-free or document them.

use std::collections::{BTreeMap, BTreeSet};

use crate::diagnostics::Finding;
use crate::lexer::{Token, TokenKind};
use crate::lint::Lint;
use crate::lints::{call_close, is_method_call, receiver_name};
use crate::source::{matching, SourceFile, Workspace};

/// Method calls that can block indefinitely and must not run under a lock.
const BLOCKING_CALLS: &[&str] = &[
    "join",
    "sleep",
    "write_all",
    "read_exact",
    "read_to_string",
    "flush",
    "accept",
    "connect",
    "recv",
    "read_frame",
    "write_frame",
];

/// See the module docs.
pub struct LockDiscipline;

/// One brace-delimited block: token span plus whether it is a loop body.
struct Frame {
    open: usize,
    close: usize,
    is_loop: bool,
}

/// All `{ … }` frames of a file, innermost queryable by position.
fn brace_frames(tokens: &[Token]) -> Vec<Frame> {
    let mut frames = Vec::new();
    for (index, token) in tokens.iter().enumerate() {
        if !token.is_punct('{') {
            continue;
        }
        let Some(close) = matching(tokens, index, '{', '}') else {
            continue;
        };
        // A loop frame has `loop`/`while`/`for` in its header: between the
        // open brace and the previous statement boundary.
        let is_loop = tokens[..index]
            .iter()
            .rev()
            .take_while(|token| {
                !(token.is_punct(';') || token.is_punct('{') || token.is_punct('}'))
            })
            .any(|token| {
                token.is_ident("loop") || token.is_ident("while") || token.is_ident("for")
            });
        frames.push(Frame {
            open: index,
            close,
            is_loop,
        });
    }
    frames
}

/// Close index of the innermost frame containing `index`.
fn enclosing_block_end(frames: &[Frame], index: usize, tokens_len: usize) -> usize {
    frames
        .iter()
        .filter(|frame| frame.open < index && index < frame.close)
        .map(|frame| frame.close)
        .min()
        .unwrap_or(tokens_len)
}

/// Whether any frame containing `index` is a loop body.
fn inside_loop(frames: &[Frame], index: usize) -> bool {
    frames
        .iter()
        .any(|frame| frame.is_loop && frame.open < index && index < frame.close)
}

/// Index of the token starting the statement containing `index` (the token
/// after the previous `;`, `{` or `}`).
fn statement_start(tokens: &[Token], index: usize) -> usize {
    (0..index)
        .rev()
        .find(|&candidate| {
            tokens[candidate].is_punct(';')
                || tokens[candidate].is_punct('{')
                || tokens[candidate].is_punct('}')
        })
        .map_or(0, |boundary| boundary + 1)
}

/// End of an expression statement: the next `;` at bracket depth zero, or
/// the point where the enclosing block closes.
fn statement_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0i32;
    for (offset, token) in tokens[from..].iter().enumerate() {
        if token.is_punct('(') || token.is_punct('[') || token.is_punct('{') {
            depth += 1;
        } else if token.is_punct(')') || token.is_punct(']') || token.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return from + offset;
            }
        } else if token.is_punct(';') && depth == 0 {
            return from + offset;
        }
    }
    tokens.len()
}

/// How far the guard acquired by the `.lock()` whose dot is at `dot` stays
/// live, lexically.
fn guard_scope_end(tokens: &[Token], frames: &[Frame], dot: usize, close_paren: usize) -> usize {
    let start = statement_start(tokens, dot);
    // `match expr.lock() … { … }` — guard lives to the end of the match.
    if tokens[start].is_ident("match") {
        let mut probe = close_paren + 1;
        let mut depth = 0i32;
        while probe < tokens.len() {
            let token = &tokens[probe];
            if token.is_punct('(') || token.is_punct('[') {
                depth += 1;
            } else if token.is_punct(')') || token.is_punct(']') {
                depth -= 1;
            } else if token.is_punct('{') && depth == 0 {
                return matching(tokens, probe, '{', '}').unwrap_or(tokens.len());
            }
            probe += 1;
        }
        return tokens.len();
    }
    // `let [mut] name = … .lock() …;` — guard lives to the end of the
    // enclosing block, or to an explicit `drop(name)`.
    let let_binding = tokens[start..dot].windows(3).find_map(|window| {
        if !window[0].is_ident("let") {
            return None;
        }
        let binding = if window[1].is_ident("mut") {
            &window[2]
        } else {
            &window[1]
        };
        (binding.kind == TokenKind::Ident).then(|| binding.text.clone())
    });
    // The binding only holds the guard when the lock result reaches the `;`
    // through at most a poison-recovery chain (`?`, unwrap, expect,
    // unwrap_or_else, …) or a `match` over it; `.map(|g| g.len())` and
    // similar consume the guard inside the statement.
    let chain_end = {
        let mut probe = close_paren + 1;
        loop {
            if tokens.get(probe).is_some_and(|token| token.is_punct('?')) {
                probe += 1;
            } else if [
                "unwrap",
                "expect",
                "unwrap_or",
                "unwrap_or_else",
                "unwrap_or_default",
            ]
            .iter()
            .any(|name| is_method_call(tokens, probe, name))
            {
                match call_close(tokens, probe + 1) {
                    Some(chain_close) => probe = chain_close + 1,
                    None => break probe,
                }
            } else {
                break probe;
            }
        }
    };
    let binds_guard = tokens
        .get(chain_end)
        .is_some_and(|token| token.is_punct(';'))
        || tokens[start..dot]
            .iter()
            .any(|token| token.is_ident("match"));
    if let Some(name) = let_binding.filter(|_| binds_guard) {
        let block_end = enclosing_block_end(frames, dot, tokens.len());
        for index in close_paren..block_end {
            if tokens[index].is_ident("drop")
                && tokens.get(index + 1).is_some_and(|t| t.is_punct('('))
                && tokens.get(index + 2).is_some_and(|t| t.is_ident(&name))
            {
                return index;
            }
        }
        return block_end;
    }
    // Temporary guard in an expression statement: dropped at the `;`.
    statement_end(tokens, close_paren)
}

/// Flags `.unwrap()`/`.expect(…)` directly after the call closing at
/// `close_paren`.
fn poison_misuse(tokens: &[Token], close_paren: usize) -> Option<&Token> {
    let next = close_paren + 1;
    if is_method_call(tokens, next, "unwrap") || is_method_call(tokens, next, "expect") {
        Some(&tokens[next + 1])
    } else {
        None
    }
}

fn check_file(
    lint_name: &'static str,
    file: &SourceFile,
    edges: &mut BTreeMap<(String, String), (String, u32, u32)>,
    findings: &mut Vec<Finding>,
) {
    let path = file.path.to_string_lossy().into_owned();
    let tokens = &file.tokens;
    let frames = brace_frames(tokens);
    for dot in 0..tokens.len() {
        if file.is_test_token(dot) {
            continue;
        }
        // Condvar predicate + poison rules.
        if is_method_call(tokens, dot, "wait") || is_method_call(tokens, dot, "wait_timeout") {
            if !inside_loop(&frames, dot) {
                findings.push(Finding::deny(
                    lint_name,
                    path.clone(),
                    tokens[dot + 1].line,
                    tokens[dot + 1].col,
                    "condvar wait outside a loop: waits wake spuriously, so the \
                     predicate must be re-checked in a while/loop",
                ));
            }
            if let Some(close) = call_close(tokens, dot + 1) {
                if let Some(token) = poison_misuse(tokens, close) {
                    findings.push(Finding::deny(
                        lint_name,
                        path.clone(),
                        token.line,
                        token.col,
                        "unwrap/expect on a condvar wait result crashes every later \
                         caller once any thread panics while holding the lock; recover \
                         with unwrap_or_else(PoisonError::into_inner) or propagate a \
                         typed error",
                    ));
                }
            }
            continue;
        }
        if is_method_call(tokens, dot, "into_inner") {
            if let Some(close) = call_close(tokens, dot + 1) {
                if let Some(token) = poison_misuse(tokens, close) {
                    findings.push(Finding::deny(
                        lint_name,
                        path.clone(),
                        token.line,
                        token.col,
                        "unwrap/expect on into_inner's poison result; recover with \
                         unwrap_or_else(PoisonError::into_inner) or propagate a typed \
                         error",
                    ));
                }
            }
            continue;
        }
        if !is_method_call(tokens, dot, "lock") {
            continue;
        }
        let Some(close) = call_close(tokens, dot + 1) else {
            continue;
        };
        let Some((holder, _)) = receiver_name(tokens, dot) else {
            continue;
        };
        if let Some(token) = poison_misuse(tokens, close) {
            findings.push(Finding::deny(
                lint_name,
                path.clone(),
                token.line,
                token.col,
                format!(
                    "unwrap/expect on `{holder}.lock()` turns one panicking thread into \
                     a permanent crash for every later caller; recover with \
                     unwrap_or_else(PoisonError::into_inner) or propagate a typed error"
                ),
            ));
        }
        let scope_end = guard_scope_end(tokens, &frames, dot, close);
        let mut inner = close + 1;
        while inner < scope_end {
            if is_method_call(tokens, inner, "lock") {
                if let Some((inner_name, _)) = receiver_name(tokens, inner) {
                    let token = &tokens[inner + 1];
                    edges
                        .entry((holder.clone(), inner_name))
                        .or_insert_with(|| (path.clone(), token.line, token.col));
                }
            }
            // Method form is matched at the `.`; the bare-ident form (e.g.
            // `thread::sleep(…)`) must not be preceded by a `.` or it would
            // double-count the method form.
            let blocking = BLOCKING_CALLS.iter().find(|name| {
                is_method_call(tokens, inner, name)
                    || (tokens[inner].is_ident(name)
                        && tokens.get(inner + 1).is_some_and(|t| t.is_punct('('))
                        && !tokens
                            .get(inner.wrapping_sub(1))
                            .is_some_and(|t| t.is_punct('.')))
            });
            if let Some(name) = blocking {
                let token = &tokens[inner];
                let at = if token.is_punct('.') {
                    &tokens[inner + 1]
                } else {
                    token
                };
                findings.push(Finding::deny(
                    lint_name,
                    path.clone(),
                    at.line,
                    at.col,
                    format!(
                        "`{name}` can block indefinitely while the `{holder}` lock is \
                         held; drop the guard first or move the call out of the \
                         critical section"
                    ),
                ));
            }
            inner += 1;
        }
    }
}

/// Reports every cycle in the acquisition graph, smallest-name first.
fn report_cycles(
    lint_name: &'static str,
    edges: &BTreeMap<(String, String), (String, u32, u32)>,
    findings: &mut Vec<Finding>,
) {
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        let mut path: Vec<&String> = vec![start];
        let mut stack: Vec<Vec<&String>> = vec![edges
            .keys()
            .filter(|(a, _)| a == *start)
            .map(|(_, b)| b)
            .collect()];
        while let Some(successors) = stack.last_mut() {
            let Some(next) = successors.pop() else {
                stack.pop();
                path.pop();
                continue;
            };
            if let Some(position) = path.iter().position(|node| *node == next) {
                let mut cycle: Vec<String> = path[position..]
                    .iter()
                    .map(|node| (*node).clone())
                    .collect();
                let canonical = {
                    let mut sorted = cycle.clone();
                    sorted.sort();
                    sorted
                };
                if reported.insert(canonical) {
                    cycle.push(next.clone());
                    let first_edge = edges
                        .get(&(cycle[0].clone(), cycle[1].clone()))
                        .cloned()
                        .unwrap_or_else(|| ("(graph)".to_string(), 0, 0));
                    findings.push(Finding::deny(
                        lint_name,
                        first_edge.0,
                        first_edge.1,
                        first_edge.2,
                        format!(
                            "lock acquisition cycle {}: two threads taking these locks \
                             in different orders can deadlock",
                            cycle.join(" -> ")
                        ),
                    ));
                }
                continue;
            }
            if path.len() >= nodes.len() {
                continue;
            }
            path.push(next);
            stack.push(
                edges
                    .keys()
                    .filter(|(a, _)| a == next)
                    .map(|(_, b)| b)
                    .collect(),
            );
        }
    }
}

impl Lint for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "lock ordering, condvar predicate loops, poison policy, no blocking under a lock"
    }

    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        let mut edges = BTreeMap::new();
        for file in &workspace.files {
            check_file(self.name(), file, &mut edges, findings);
        }
        report_cycles(self.name(), &edges, findings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(source: &str) -> Vec<Finding> {
        let workspace = Workspace {
            files: vec![SourceFile::from_source("x.rs", "serve", source)],
        };
        let mut findings = Vec::new();
        LockDiscipline.check(&workspace, &mut findings);
        findings
    }

    #[test]
    fn unwrap_and_expect_on_lock_results_fire() {
        let source = "fn f(&self) { let g = self.state.lock().unwrap(); }";
        let findings = check(source);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("state"));
        let fixed =
            "fn f(&self) { let g = self.state.lock().unwrap_or_else(PoisonError::into_inner); }";
        assert!(check(fixed).is_empty());
    }

    #[test]
    fn match_scrutinee_poison_recovery_is_clean() {
        let source = "fn f(&self) { let g = match self.state.lock() { \
                      Ok(g) => g, Err(p) => p.into_inner() }; }";
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn nested_locks_in_opposite_orders_report_a_cycle() {
        let source = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                      fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }";
        let findings = check(source);
        assert!(
            findings.iter().any(|f| f.message.contains("cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn nested_locks_in_one_consistent_order_are_clean() {
        let source = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                      fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn drop_releases_the_guard_before_a_blocking_call() {
        let held = "fn f(&self) { let g = self.state.lock(); handle.join(); }";
        assert_eq!(check(held).len(), 1, "{:?}", check(held));
        let dropped = "fn f(&self) { let g = self.state.lock(); drop(g); handle.join(); }";
        assert!(check(dropped).is_empty(), "{:?}", check(dropped));
    }

    #[test]
    fn temporary_guard_scope_ends_at_the_statement() {
        let source = "fn f(&self) { let n = self.state.lock().map(|g| g.len()); handle.join(); }";
        assert!(check(source).is_empty(), "{:?}", check(source));
    }

    #[test]
    fn condvar_wait_needs_a_loop() {
        let bare = "fn f(&self) { let g = self.cv.wait(g); }";
        assert_eq!(check(bare).len(), 1, "{:?}", check(bare));
        let looped = "fn f(&self) { while !*g { g = self.cv.wait(g)\
                      .unwrap_or_else(PoisonError::into_inner); } }";
        assert!(check(looped).is_empty(), "{:?}", check(looped));
        let poisoned = "fn f(&self) { loop { g = self.cv.wait(g).expect(\"poisoned\"); } }";
        assert_eq!(check(poisoned).len(), 1, "{:?}", check(poisoned));
    }

    #[test]
    fn wait_timeout_is_not_a_blocking_call_under_the_lock() {
        // wait_timeout releases the guard atomically; only the loop rule
        // applies to it.
        let source = "fn f(&self) { let mut g = self.state.lock(); loop { \
                      let r = self.cv.wait_timeout(g, d); g = r.0; } }";
        assert!(check(source).is_empty(), "{:?}", check(source));
    }
}
