//! `stage-fingerprint`: every `*_stage_key` function must read exactly the
//! `SimConfig` accessors its registry row declares.
//!
//! The stage graph's invalidation contract rests on the `*_stage_key`
//! functions in `crates/sim/src/stage.rs`: each formats **only** the config
//! fields its `Stage::reads` entry declares, so a configuration change
//! re-runs a stage iff it touches a declared field. Nothing structural ties
//! a key function's body to its declared read set — a key function reading
//! an extra accessor silently over-invalidates (cache misses that should
//! hit), and one dropping an accessor under-invalidates (stale results
//! served as hits, the dangerous direction). This lint keeps the two halves
//! from drifting: it collects every `fn *_stage_key` in the workspace,
//! extracts the `config.<accessor>()` calls in its body, and cross-checks
//! them against the registry below. Undeclared reads, missing declared
//! reads, unregistered key functions and registry rot are all deny
//! findings.
//!
//! Key functions take the configuration parameter as `config` by
//! convention; the lint matches that receiver name.
//!
//! Adding a stage? Extend `Stage::reads` and write the matching
//! `*_stage_key` in `crates/sim/src/stage.rs`, then add a row with the same
//! accessor set to [`StageFingerprint::default`].

use std::collections::BTreeSet;

use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::lint::Lint;
use crate::lints::function_bodies;
use crate::source::Workspace;

/// See the module docs.
pub struct StageFingerprint {
    /// Registered `(key function, declared config accessors)` rows.
    registry: Vec<(&'static str, &'static [&'static str])>,
}

impl Default for StageFingerprint {
    /// The workspace registry — one row per `*_stage_key` function,
    /// mirroring `Stage::reads` in `crates/sim/src/stage.rs`. Keep sorted
    /// by function name.
    fn default() -> StageFingerprint {
        StageFingerprint {
            registry: vec![
                (
                    "addressability_stage_key",
                    &[
                        "code",
                        "nanowires_per_half_cave",
                        "threshold_model",
                        "sigma_per_dose",
                        "supply_range",
                        "code_budgets",
                        "window_override",
                    ],
                ),
                (
                    "cave_yield_stage_key",
                    &[
                        "code",
                        "nanowires_per_half_cave",
                        "layout",
                        "threshold_model",
                        "sigma_per_dose",
                        "supply_range",
                        "code_budgets",
                        "window_override",
                    ],
                ),
                (
                    "composite_stage_key",
                    &[
                        "code",
                        "nanowires_per_half_cave",
                        "raw_bits",
                        "layout",
                        "threshold_model",
                        "sigma_per_dose",
                        "supply_range",
                        "window_override",
                        "code_budgets",
                        "defects",
                    ],
                ),
                (
                    "contact_layout_stage_key",
                    &["code", "nanowires_per_half_cave", "layout"],
                ),
                (
                    "crossbar_area_stage_key",
                    &["code", "nanowires_per_half_cave", "raw_bits", "layout"],
                ),
                (
                    "defect_map_stage_key",
                    &["nanowires_per_half_cave", "raw_bits", "layout", "defects"],
                ),
                (
                    "monte_carlo_stage_key",
                    &[
                        "code",
                        "nanowires_per_half_cave",
                        "threshold_model",
                        "sigma_per_dose",
                        "supply_range",
                        "code_budgets",
                        "window_override",
                        "disturbance",
                        "monte_carlo",
                    ],
                ),
                (
                    "variability_stage_key",
                    &[
                        "code",
                        "nanowires_per_half_cave",
                        "threshold_model",
                        "sigma_per_dose",
                        "supply_range",
                        "code_budgets",
                    ],
                ),
            ],
        }
    }
}

impl StageFingerprint {
    /// A lint instance checking against an explicit registry (for tests).
    #[must_use]
    pub fn with_registry(
        registry: Vec<(&'static str, &'static [&'static str])>,
    ) -> StageFingerprint {
        StageFingerprint { registry }
    }
}

/// A `fn *_stage_key` found in the workspace with the `config.<accessor>()`
/// calls its body makes.
struct FoundKeyFn {
    name: String,
    reads: BTreeSet<String>,
    file: String,
    line: u32,
    col: u32,
}

fn collect_key_fns(workspace: &Workspace) -> Vec<FoundKeyFn> {
    let mut found = Vec::new();
    for file in &workspace.files {
        let path = file.path.to_string_lossy().into_owned();
        let tokens = &file.tokens;
        for (name, open, close, line, col) in function_bodies(tokens) {
            if !name.ends_with("_stage_key") || file.is_test_token(open) {
                continue;
            }
            // `config . accessor (` sequences in the body.
            let mut reads = BTreeSet::new();
            for index in open..close {
                if tokens[index].is_ident("config")
                    && tokens.get(index + 1).is_some_and(|t| t.is_punct('.'))
                    && tokens
                        .get(index + 2)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    && tokens.get(index + 3).is_some_and(|t| t.is_punct('('))
                {
                    reads.insert(tokens[index + 2].text.clone());
                }
            }
            found.push(FoundKeyFn {
                name,
                reads,
                file: path.clone(),
                line,
                col,
            });
        }
    }
    found
}

impl Lint for StageFingerprint {
    fn name(&self) -> &'static str {
        "stage-fingerprint"
    }

    fn description(&self) -> &'static str {
        "every *_stage_key function reads exactly its declared config accessors"
    }

    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        let key_fns = collect_key_fns(workspace);
        for key_fn in &key_fns {
            let Some(&(_, declared)) = self.registry.iter().find(|(name, _)| *name == key_fn.name)
            else {
                findings.push(Finding::deny(
                    self.name(),
                    key_fn.file.clone(),
                    key_fn.line,
                    key_fn.col,
                    format!(
                        "stage key function `{}` is not in the registry; add a row \
                         with its read set to StageFingerprint::default in \
                         crates/analyze",
                        key_fn.name
                    ),
                ));
                continue;
            };
            let declared: BTreeSet<&str> = declared.iter().copied().collect();
            for read in &key_fn.reads {
                if !declared.contains(read.as_str()) {
                    findings.push(Finding::deny(
                        self.name(),
                        key_fn.file.clone(),
                        key_fn.line,
                        key_fn.col,
                        format!(
                            "`{}` reads `config.{read}()` which its registry row does \
                             not declare; an undeclared read means the stage recomputes \
                             on changes its declared read set says cannot affect it",
                            key_fn.name
                        ),
                    ));
                }
            }
            for declared_read in &declared {
                if !key_fn.reads.contains(*declared_read) {
                    findings.push(Finding::deny(
                        self.name(),
                        key_fn.file.clone(),
                        key_fn.line,
                        key_fn.col,
                        format!(
                            "`{}` never reads `config.{declared_read}()` though its \
                             registry row declares it; a missing read serves stale \
                             cache hits when that field changes",
                            key_fn.name
                        ),
                    ));
                }
            }
        }
        for (name, _) in &self.registry {
            if !key_fns.iter().any(|key_fn| key_fn.name == *name) {
                findings.push(Finding::deny(
                    self.name(),
                    "(registry)",
                    0,
                    0,
                    format!(
                        "registered stage key function `{name}` no longer exists in \
                         the workspace; remove the stale registry row"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(lint: &StageFingerprint, source: &str) -> Vec<Finding> {
        let workspace = Workspace {
            files: vec![SourceFile::from_source("x.rs", "sim", source)],
        };
        let mut findings = Vec::new();
        lint.check(&workspace, &mut findings);
        findings
    }

    #[test]
    fn matching_read_sets_pass() {
        let lint = StageFingerprint::with_registry(vec![("area_stage_key", &["code", "layout"])]);
        let findings = check(
            &lint,
            r#"
            pub(crate) fn area_stage_key(config: &SimConfig) -> String {
                format!("area;code={:?};layout={:?}", config.code(), config.layout())
            }
            "#,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_and_missing_reads_both_fire() {
        let lint = StageFingerprint::with_registry(vec![("area_stage_key", &["code", "layout"])]);
        let findings = check(
            &lint,
            r#"
            pub(crate) fn area_stage_key(config: &SimConfig) -> String {
                format!("area;code={:?};defects={:?}", config.code(), config.defects())
            }
            "#,
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("config.defects()")
                    && f.message.contains("does not declare")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("config.layout()")
                    && f.message.contains("never reads")),
            "{findings:?}"
        );
    }

    #[test]
    fn unregistered_and_vanished_key_functions_fire() {
        let lint = StageFingerprint::with_registry(vec![("gone_stage_key", &["code"])]);
        let findings = check(
            &lint,
            r#"
            pub(crate) fn rogue_stage_key(config: &SimConfig) -> String {
                format!("rogue;code={:?}", config.code())
            }
            "#,
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("`rogue_stage_key`")
                    && f.message.contains("not in the registry")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("`gone_stage_key`")
                    && f.message.contains("no longer exists")),
            "{findings:?}"
        );
    }

    #[test]
    fn in_test_key_functions_are_exempt() {
        let lint = StageFingerprint::with_registry(vec![]);
        let findings = check(
            &lint,
            "#[cfg(test)]\nmod tests {\n    fn fake_stage_key(config: &C) -> String { config.code() }\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
