//! `determinism-unsafe-calls`: no wall clocks and no hash-order-dependent
//! containers in the evaluation crates.
//!
//! Two families of std calls silently break run-to-run reproducibility:
//!
//! * **Wall clocks** — `Instant::now()` / `SystemTime::now()` anywhere in an
//!   evaluation path lets timing leak into results (adaptive cutoffs,
//!   time-based tie-breaks). The serving crate is exempt: measuring latency
//!   is its job.
//! * **Default-`RandomState` containers** — `HashMap` / `HashSet` iteration
//!   order varies per process (the hasher is seeded from OS entropy), so any
//!   iteration that feeds results reorders them between runs. Uses that
//!   never iterate (pure key lookup) are legitimate — suppress those with an
//!   escape comment explaining why iteration order cannot leak, or switch to
//!   `BTreeMap`/`BTreeSet`.
//!
//! `use`-declaration lines are skipped: the import is not the hazard, the
//! use site is.

use crate::diagnostics::Finding;
use crate::lint::Lint;
use crate::source::Workspace;

/// Crates whose outputs must be reproducible.
const EVALUATION_CRATES: &[&str] = &["sim", "crossbar", "codes", "physics", "fabrication"];

/// See the module docs.
pub struct UnsafeCalls;

impl Lint for UnsafeCalls {
    fn name(&self) -> &'static str {
        "determinism-unsafe-calls"
    }

    fn description(&self) -> &'static str {
        "no wall clocks or hash-order-dependent containers in evaluation crates"
    }

    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        for file in &workspace.files {
            if !EVALUATION_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let path = file.path.to_string_lossy().into_owned();
            let tokens = &file.tokens;
            // Lines whose first token is `use` — import declarations.
            let use_lines: Vec<u32> = tokens
                .iter()
                .enumerate()
                .filter(|(index, token)| {
                    token.is_ident("use")
                        && tokens
                            .get(index.wrapping_sub(1))
                            .is_none_or(|previous| previous.line != token.line)
                })
                .map(|(_, token)| token.line)
                .collect();
            for (index, token) in tokens.iter().enumerate() {
                if file.is_test_token(index) {
                    continue;
                }
                let clock = (token.is_ident("Instant") || token.is_ident("SystemTime"))
                    && tokens.get(index + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(index + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(index + 3).is_some_and(|t| t.is_ident("now"));
                if clock {
                    findings.push(Finding::deny(
                        self.name(),
                        path.clone(),
                        token.line,
                        token.col,
                        format!(
                            "`{}::now()` leaks wall-clock time into an evaluation path; \
                             results must not depend on timing",
                            token.text
                        ),
                    ));
                    continue;
                }
                if (token.is_ident("HashMap") || token.is_ident("HashSet"))
                    && !use_lines.contains(&token.line)
                {
                    findings.push(Finding::deny(
                        self.name(),
                        path.clone(),
                        token.line,
                        token.col,
                        format!(
                            "`{}` iterates in per-process hash order; use a BTree container, \
                             sort before iterating, or document why order cannot leak",
                            token.text
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(crate_name: &str, source: &str) -> Vec<Finding> {
        let workspace = Workspace {
            files: vec![SourceFile::from_source("x.rs", crate_name, source)],
        };
        let mut findings = Vec::new();
        UnsafeCalls.check(&workspace, &mut findings);
        findings
    }

    #[test]
    fn clocks_fire_in_evaluation_crates_but_not_in_serve() {
        assert_eq!(check("sim", "let t = Instant::now();").len(), 1);
        assert_eq!(check("physics", "let t = SystemTime::now();").len(), 1);
        assert_eq!(check("serve", "let t = Instant::now();").len(), 0);
    }

    #[test]
    fn hash_containers_fire_except_on_use_lines_and_in_tests() {
        assert_eq!(
            check("sim", "let m: HashMap<u64, u8> = HashMap::new();").len(),
            2
        );
        assert_eq!(check("sim", "use std::collections::HashMap;").len(), 0);
        assert_eq!(
            check(
                "sim",
                "#[cfg(test)]\nmod tests { fn t() { let s = HashSet::new(); } }"
            )
            .len(),
            0
        );
    }
}
