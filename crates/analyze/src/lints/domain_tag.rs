//! `domain-tag-registry`: the `*_DOMAIN` seed-space tags must be registered
//! here and collision-free.
//!
//! Every subsystem that derives its own seed stream XORs a 64-bit domain tag
//! into the base seed before calling `chunk_seed`, so independent subsystems
//! can never reuse a stream even when given the same user seed. That only
//! holds while the tags are globally unique — a property no single crate can
//! check, because the tags deliberately live next to their subsystems. This
//! lint collects every `const *_DOMAIN: u64 = …;` in the workspace and
//! cross-checks it against the registry below: unregistered tags, value
//! drift, duplicate values and registry rot are all deny findings.
//!
//! Adding a subsystem? Pick a fresh random 64-bit constant, define it next
//! to the deriving code, and add a row to [`DomainTag::default`].

use std::collections::BTreeMap;

use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::lint::Lint;
use crate::source::Workspace;

/// See the module docs.
pub struct DomainTag {
    /// Registered `(tag name, value)` rows.
    registry: Vec<(&'static str, u64)>,
}

impl Default for DomainTag {
    /// The workspace registry. Keep sorted by name.
    fn default() -> DomainTag {
        DomainTag {
            registry: vec![
                ("CACHE_KEY_DOMAIN", 0xcac4_e4e7_5e12_7a03),
                ("DEFECT_SEED_DOMAIN", 0xdefe_c7ed_0000_0001),
                ("STAGE_KEY_DOMAIN", 0x57a6_e1fd_9b3c_5a21),
                ("STRESS_SEED_DOMAIN", 0x5e12_7e57_ae5d_0004),
            ],
        }
    }
}

impl DomainTag {
    /// A lint instance checking against an explicit registry (for tests).
    #[must_use]
    pub fn with_registry(registry: Vec<(&'static str, u64)>) -> DomainTag {
        DomainTag { registry }
    }
}

/// A `const *_DOMAIN: u64 = <literal>;` definition found in the workspace.
struct FoundTag {
    name: String,
    value: Option<u64>,
    file: String,
    line: u32,
    col: u32,
}

fn parse_u64_literal(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|&ch| ch != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        cleaned.parse().ok()
    }
}

fn collect_tags(workspace: &Workspace) -> Vec<FoundTag> {
    let mut tags = Vec::new();
    for file in &workspace.files {
        let path = file.path.to_string_lossy().into_owned();
        let tokens = &file.tokens;
        for (index, token) in tokens.iter().enumerate() {
            if !token.is_ident("const") || file.is_test_token(index) {
                continue;
            }
            let Some(name_token) = tokens.get(index + 1) else {
                continue;
            };
            if name_token.kind != TokenKind::Ident || !name_token.text.ends_with("_DOMAIN") {
                continue;
            }
            // const NAME : u64 = <literal> ;  — the value literal is the
            // first number token after the `=`.
            let value = tokens[index + 2..]
                .iter()
                .take_while(|token| !token.is_punct(';'))
                .skip_while(|token| !token.is_punct('='))
                .find(|token| token.kind == TokenKind::Number)
                .and_then(|token| parse_u64_literal(&token.text));
            tags.push(FoundTag {
                name: name_token.text.clone(),
                value,
                file: path.clone(),
                line: name_token.line,
                col: name_token.col,
            });
        }
    }
    tags
}

impl Lint for DomainTag {
    fn name(&self) -> &'static str {
        "domain-tag-registry"
    }

    fn description(&self) -> &'static str {
        "seed-domain tags must be registered, value-stable and collision-free"
    }

    fn check(&self, workspace: &Workspace, findings: &mut Vec<Finding>) {
        let tags = collect_tags(workspace);
        let mut by_value: BTreeMap<u64, Vec<&FoundTag>> = BTreeMap::new();
        for tag in &tags {
            let registered = self.registry.iter().find(|(name, _)| *name == tag.name);
            match (registered, tag.value) {
                (None, _) => findings.push(Finding::deny(
                    self.name(),
                    tag.file.clone(),
                    tag.line,
                    tag.col,
                    format!(
                        "domain tag `{}` is not in the registry; add it to \
                         DomainTag::default in crates/analyze",
                        tag.name
                    ),
                )),
                (Some(_), None) => findings.push(Finding::deny(
                    self.name(),
                    tag.file.clone(),
                    tag.line,
                    tag.col,
                    format!(
                        "domain tag `{}` must be a literal u64 so the registry can \
                         check it",
                        tag.name
                    ),
                )),
                (Some(&(_, expected)), Some(actual)) if expected != actual => {
                    findings.push(Finding::deny(
                        self.name(),
                        tag.file.clone(),
                        tag.line,
                        tag.col,
                        format!(
                            "domain tag `{}` is {actual:#018x} but the registry says \
                             {expected:#018x}; changing a tag silently reshuffles every \
                             derived seed stream",
                            tag.name
                        ),
                    ));
                }
                (Some(_), Some(value)) => by_value.entry(value).or_default().push(tag),
            }
        }
        for (value, holders) in &by_value {
            if holders.len() > 1 {
                let names: Vec<&str> = holders.iter().map(|tag| tag.name.as_str()).collect();
                for tag in holders {
                    findings.push(Finding::deny(
                        self.name(),
                        tag.file.clone(),
                        tag.line,
                        tag.col,
                        format!(
                            "domain tags {} share the value {value:#018x}; colliding tags \
                             collapse independent seed streams into one",
                            names.join(", ")
                        ),
                    ));
                }
            }
        }
        for (name, _) in &self.registry {
            if !tags.iter().any(|tag| tag.name == *name) {
                findings.push(Finding::deny(
                    self.name(),
                    "(registry)",
                    0,
                    0,
                    format!(
                        "registered domain tag `{name}` no longer exists in the \
                         workspace; remove the stale registry row"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(lint: &DomainTag, source: &str) -> Vec<Finding> {
        let workspace = Workspace {
            files: vec![SourceFile::from_source("x.rs", "sim", source)],
        };
        let mut findings = Vec::new();
        lint.check(&workspace, &mut findings);
        findings
    }

    #[test]
    fn registered_matching_tags_pass() {
        let lint = DomainTag::with_registry(vec![("A_DOMAIN", 0x11), ("B_DOMAIN", 0x22)]);
        let findings = check(
            &lint,
            "pub const A_DOMAIN: u64 = 0x11;\npub const B_DOMAIN: u64 = 0x22;\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unregistered_drifted_duplicate_and_stale_tags_all_fire() {
        let lint = DomainTag::with_registry(vec![
            ("A_DOMAIN", 0x11),
            ("B_DOMAIN", 0x22),
            ("C_DOMAIN", 0x33),
            ("GONE_DOMAIN", 0x44),
        ]);
        let findings = check(
            &lint,
            "pub const A_DOMAIN: u64 = 0x99;\n\
             pub const B_DOMAIN: u64 = 0x22;\n\
             pub const C_DOMAIN: u64 = 0x22;\n\
             pub const NEW_DOMAIN: u64 = 0x55;\n",
        );
        assert!(findings.iter().any(|f| f.message.contains("registry says")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("not in the registry")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("no longer exists")));
        // C drifted? No: C's registry value is 0x33 but source says 0x22 —
        // that reports as drift, not duplication, because drifted tags never
        // reach the collision map.
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains("share the value"))
                .count(),
            0
        );
    }

    #[test]
    fn duplicate_values_between_correctly_registered_tags_fire() {
        let lint = DomainTag::with_registry(vec![("A_DOMAIN", 0x22), ("B_DOMAIN", 0x22)]);
        let findings = check(
            &lint,
            "pub const A_DOMAIN: u64 = 0x22;\npub const B_DOMAIN: u64 = 0x22;\n",
        );
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains("share the value"))
                .count(),
            2,
            "{findings:?}"
        );
    }

    #[test]
    fn underscored_hex_literals_parse() {
        assert_eq!(
            parse_u64_literal("0xcac4_e4e7_5e12_7a03"),
            Some(0xcac4_e4e7_5e12_7a03)
        );
        assert_eq!(parse_u64_literal("1_000"), Some(1000));
    }
}
