//! Fixture-driven integration tests: every lint fires on its positive
//! cases, stays quiet on the negative ones, and respects escape comments —
//! plus the meta-test that keeps the real workspace at zero deny findings.

use std::path::{Path, PathBuf};

use mspt_analyze::lint::{run_lints, Lint};
use mspt_analyze::lints::domain_tag::DomainTag;
use mspt_analyze::lints::stage_fingerprint::StageFingerprint;
use mspt_analyze::{default_lints, Finding, SourceFile, Workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|error| panic!("{}: {error}", path.display()))
}

fn run_fixture(name: &str, crate_name: &str, lints: Vec<Box<dyn Lint>>) -> Vec<Finding> {
    let workspace = Workspace {
        files: vec![SourceFile::from_source(name, crate_name, &fixture(name))],
    };
    run_lints(&workspace, &lints)
}

fn active<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|finding| finding.lint == lint && finding.is_active_deny())
        .collect()
}

fn suppressed<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|finding| finding.lint == lint && finding.allowed.is_some())
        .collect()
}

#[test]
fn raw_seed_fixture() {
    let findings = run_fixture("raw_seed.rs", "sim", default_lints());
    let fired = active(&findings, "raw-seed");
    // The raw construction and the entropy construction; the derived, the
    // allowed and the in-test constructions stay quiet.
    assert_eq!(fired.len(), 2, "{findings:?}");
    assert!(fired.iter().any(|f| f.message.contains("seed_from_u64")));
    assert!(fired.iter().any(|f| f.message.contains("thread_rng")));
    assert_eq!(suppressed(&findings, "raw-seed").len(), 1, "{findings:?}");
}

#[test]
fn domain_tag_fixture() {
    let lints: Vec<Box<dyn Lint>> = vec![Box::new(DomainTag::with_registry(vec![
        ("REGISTERED_DOMAIN", 0x1111),
        ("DRIFTED_DOMAIN", 0x2222),
        ("TWIN_A_DOMAIN", 0x4444),
        ("TWIN_B_DOMAIN", 0x4444),
        ("VANISHED_DOMAIN", 0x6666),
    ]))];
    let findings = run_fixture("domain_tag.rs", "sim", lints);
    let fired = active(&findings, "domain-tag-registry");
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("DRIFTED_DOMAIN") && f.message.contains("registry says")),
        "{findings:?}"
    );
    assert!(
        fired.iter().any(
            |f| f.message.contains("ROGUE_DOMAIN") && f.message.contains("not in the registry")
        ),
        "{findings:?}"
    );
    assert!(
        fired.iter().any(
            |f| f.message.contains("VANISHED_DOMAIN") && f.message.contains("no longer exists")
        ),
        "{findings:?}"
    );
    assert_eq!(
        fired
            .iter()
            .filter(|f| f.message.contains("share the value"))
            .count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn unsafe_calls_fixture() {
    let findings = run_fixture("unsafe_calls.rs", "sim", default_lints());
    let fired = active(&findings, "determinism-unsafe-calls");
    // Instant::now plus the two HashMap mentions on the un-allowed line
    // (type annotation and constructor); the import line, the BTree use,
    // the allowed line and the test module stay quiet.
    assert_eq!(fired.len(), 3, "{findings:?}");
    assert!(fired.iter().any(|f| f.message.contains("Instant")));
    assert_eq!(
        suppressed(&findings, "determinism-unsafe-calls").len(),
        2,
        "{findings:?}"
    );
}

#[test]
fn locks_fixture() {
    let findings = run_fixture("locks.rs", "serve", default_lints());
    let fired = active(&findings, "lock-discipline");
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("unwrap/expect on `state.lock()`")),
        "{findings:?}"
    );
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("`join` can block") && f.message.contains("`state` lock")),
        "{findings:?}"
    );
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("acquisition cycle")),
        "{findings:?}"
    );
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("condvar wait outside a loop")),
        "{findings:?}"
    );
    // Exactly those four families fire; the recovered/dropped/looped
    // variants and the test module stay quiet.
    assert_eq!(fired.len(), 4, "{findings:?}");
    // The diagnostic-path join is suppressed by its escape comment.
    assert_eq!(
        suppressed(&findings, "lock-discipline").len(),
        1,
        "{findings:?}"
    );
}

#[test]
fn codec_symmetry_fixture() {
    let findings = run_fixture("codec_symmetry.rs", "sim", default_lints());
    let fired = active(&findings, "codec-symmetry");
    assert!(
        fired.iter().any(|f| f.message.contains("\"written_only\"")),
        "{findings:?}"
    );
    assert!(
        fired.iter().any(|f| f.message.contains("\"read_only\"")),
        "{findings:?}"
    );
    assert!(
        fired.iter().any(|f| f
            .message
            .contains("`widow_to_json` has no `widow_from_json`")),
        "{findings:?}"
    );
    // The balanced pair, the allowed probe and the in-test encoder are
    // quiet.
    assert_eq!(fired.len(), 3, "{findings:?}");
    assert_eq!(
        suppressed(&findings, "codec-symmetry").len(),
        1,
        "{findings:?}"
    );
}

#[test]
fn stage_fingerprint_fixture() {
    let lints: Vec<Box<dyn Lint>> = vec![Box::new(StageFingerprint::with_registry(vec![
        ("good_stage_key", &["code", "layout"]),
        ("drifted_stage_key", &["code", "layout"]),
        ("vanished_stage_key", &["code"]),
    ]))];
    let findings = run_fixture("stage_fingerprint.rs", "sim", lints);
    let fired = active(&findings, "stage-fingerprint");
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("`drifted_stage_key`")
                && f.message.contains("config.defects()")
                && f.message.contains("does not declare")),
        "{findings:?}"
    );
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("`drifted_stage_key`")
                && f.message.contains("config.layout()")
                && f.message.contains("never reads")),
        "{findings:?}"
    );
    assert!(
        fired.iter().any(|f| f.message.contains("`rogue_stage_key`")
            && f.message.contains("not in the registry")),
        "{findings:?}"
    );
    assert!(
        fired
            .iter()
            .any(|f| f.message.contains("`vanished_stage_key`")
                && f.message.contains("no longer exists")),
        "{findings:?}"
    );
    // The matching pair, the allowed scratch key and the in-test key are
    // quiet; exactly the four families above fire.
    assert_eq!(fired.len(), 4, "{findings:?}");
    assert_eq!(
        suppressed(&findings, "stage-fingerprint").len(),
        1,
        "{findings:?}"
    );
}

/// The meta-test: the shipped workspace itself carries zero active deny
/// findings. If this fails after a change, either fix the finding or add a
/// reasoned escape comment — see ARCHITECTURE.md, "Static analysis".
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let workspace = Workspace::load(&root).expect("workspace loads");
    assert!(
        workspace.files.len() > 50,
        "walker found only {} files; scope regression?",
        workspace.files.len()
    );
    let findings = run_lints(&workspace, &default_lints());
    let active: Vec<&Finding> = findings.iter().filter(|f| f.is_active_deny()).collect();
    assert!(
        active.is_empty(),
        "workspace has active deny findings:\n{}",
        active
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
