// Fixture for the `raw-seed` lint (analyzed as crate `sim`; never compiled).

fn raw_construction_fires(seed: u64) {
    let rng = StdRng::seed_from_u64(seed);
}

fn derived_construction_is_clean(seed: u64, chunk: u64) {
    let rng = StdRng::seed_from_u64(chunk_seed(seed ^ CACHE_KEY_DOMAIN, chunk));
}

fn entropy_construction_fires() {
    let rng = thread_rng();
}

fn allowed_construction_is_suppressed(seed: u64) {
    // mspt-analyze: allow(raw-seed) fixture: the caller already derived this seed
    let rng = StdRng::seed_from_u64(seed);
}

#[cfg(test)]
mod tests {
    fn pinned_seed_in_tests_is_exempt() {
        let rng = StdRng::seed_from_u64(42);
    }
}
