// Fixture for the `domain-tag-registry` lint (never compiled). The test
// checks it against a registry of:
//   REGISTERED_DOMAIN  = 0x1111
//   DRIFTED_DOMAIN     = 0x2222
//   TWIN_A_DOMAIN      = 0x4444
//   TWIN_B_DOMAIN      = 0x5555
//   VANISHED_DOMAIN    = 0x6666   (not defined below -> registry rot)

pub const REGISTERED_DOMAIN: u64 = 0x1111;
pub const DRIFTED_DOMAIN: u64 = 0xbad0;
pub const ROGUE_DOMAIN: u64 = 0x3333;
pub const TWIN_A_DOMAIN: u64 = 0x4444;
pub const TWIN_B_DOMAIN: u64 = 0x4444;
