// Fixture for the `codec-symmetry` lint (analyzed as crate `sim`; never
// compiled).

pub fn balanced_to_json(value: &Balanced) -> JsonValue {
    object(vec![
        ("rows", JsonValue::from(value.rows)),
        ("cols", JsonValue::from(value.cols)),
    ])
}

pub fn balanced_from_json(json: &JsonValue) -> Result<Balanced, WireError> {
    Ok(Balanced {
        rows: json.get("rows")?,
        cols: json.get("cols")?,
    })
}

pub fn skewed_to_json(value: &Skewed) -> JsonValue {
    object(vec![
        ("written_only", JsonValue::from(value.a)),
        ("shared", JsonValue::from(value.b)),
    ])
}

pub fn skewed_from_json(json: &JsonValue) -> Result<Skewed, WireError> {
    Ok(Skewed {
        b: json.get("shared")?,
        c: json.get_opt("read_only"),
    })
}

pub fn widow_to_json(value: &Widow) -> JsonValue {
    object(vec![("x", JsonValue::from(value.x))])
}

// mspt-analyze: allow(codec-symmetry) fixture: intentionally one-way, upgrade probe payload
pub fn probe_to_json(value: &Probe) -> JsonValue {
    object(vec![("ping", JsonValue::from(value.ping))])
}

#[cfg(test)]
mod tests {
    pub fn scratch_to_json(value: &Scratch) -> JsonValue {
        object(vec![("never_checked", JsonValue::from(value.y))])
    }
}
