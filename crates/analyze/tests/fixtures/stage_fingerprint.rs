// Fixture for the `stage-fingerprint` lint (analyzed as crate `sim`; never
// compiled). The test registry declares:
//   good_stage_key    -> code, layout
//   drifted_stage_key -> code, layout
//   vanished_stage_key -> code            (no longer defined here)

pub(crate) fn good_stage_key(config: &SimConfig) -> String {
    format!("good;code={:?};layout={:?}", config.code(), config.layout())
}

pub(crate) fn drifted_stage_key(config: &SimConfig) -> String {
    // Reads `defects` (undeclared) and drops `layout` (declared).
    format!(
        "drifted;code={:?};defects={:?}",
        config.code(),
        config.defects()
    )
}

pub(crate) fn rogue_stage_key(config: &SimConfig) -> String {
    format!("rogue;code={:?}", config.code())
}

// mspt-analyze: allow(stage-fingerprint) fixture: scratch key for a stage still being split out
pub(crate) fn scratch_stage_key(config: &SimConfig) -> String {
    format!("scratch;code={:?}", config.code())
}

#[cfg(test)]
mod tests {
    fn fake_stage_key(config: &SimConfig) -> String {
        format!("fake;window={:?}", config.window_override())
    }
}
