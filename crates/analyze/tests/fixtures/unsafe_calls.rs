// Fixture for the `determinism-unsafe-calls` lint (analyzed as crate `sim`;
// never compiled).

use std::collections::HashMap; // import line is exempt

fn wall_clock_fires() {
    let start = Instant::now();
}

fn hash_container_fires() {
    let m: HashMap<u64, u8> = HashMap::new();
}

fn allowed_lookup_table_is_suppressed() {
    // mspt-analyze: allow(determinism-unsafe-calls) fixture: lookup only, never iterated
    let m: HashMap<u64, u8> = HashMap::new();
}

fn btree_is_clean() {
    let m: std::collections::BTreeMap<u64, u8> = std::collections::BTreeMap::new();
}

#[cfg(test)]
mod tests {
    fn timing_in_tests_is_exempt() {
        let start = Instant::now();
        let s = HashSet::new();
    }
}
