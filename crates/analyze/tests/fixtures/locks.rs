// Fixture for the `lock-discipline` lint (analyzed as crate `serve`; never
// compiled).

fn poison_unwrap_fires(&self) {
    let guard = self.state.lock().unwrap();
}

fn poison_recovery_is_clean(&self) {
    let guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
}

fn blocking_under_lock_fires(&self, handle: Handle) {
    let guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
    handle.join();
}

fn drop_before_blocking_is_clean(&self, handle: Handle) {
    let guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
    drop(guard);
    handle.join();
}

// These two functions take `first` and `second` in opposite orders: cycle.
fn forward_order(&self) {
    let a = self.first.lock().unwrap_or_else(PoisonError::into_inner);
    let b = self.second.lock().unwrap_or_else(PoisonError::into_inner);
}

fn reverse_order(&self) {
    let b = self.second.lock().unwrap_or_else(PoisonError::into_inner);
    let a = self.first.lock().unwrap_or_else(PoisonError::into_inner);
}

fn wait_outside_loop_fires(&self) {
    let mut ready = self.ready.lock().unwrap_or_else(PoisonError::into_inner);
    ready = self.cond.wait(ready).unwrap_or_else(PoisonError::into_inner);
}

fn wait_in_loop_is_clean(&self) {
    let mut ready = self.ready.lock().unwrap_or_else(PoisonError::into_inner);
    while !*ready {
        ready = self.cond.wait(ready).unwrap_or_else(PoisonError::into_inner);
    }
}

fn allowed_blocking_is_suppressed(&self, handle: Handle) {
    let guard = self.diag.lock().unwrap_or_else(PoisonError::into_inner);
    // mspt-analyze: allow(lock-discipline) fixture: diagnostic-only path, join is bounded by the test harness
    handle.join();
}

#[cfg(test)]
mod tests {
    fn deliberate_poison_in_tests_is_exempt(&self) {
        let guard = self.state.lock().unwrap();
    }
}
