//! Property-based tests of the code-space invariants.

use nanowire_codes::{
    arrange_min_transitions, balance_report, balanced_gray_code, gray_code, hot_code,
    reflected_gray_code, reflected_tree_code, tree_code, ArrangementStrategy, BalanceBudget,
    CodeKind, CodeSpec, CodeWord, LogicLevel, SearchBudget,
};
use proptest::prelude::*;

fn radix_strategy() -> impl Strategy<Value = LogicLevel> {
    prop_oneof![
        Just(LogicLevel::BINARY),
        Just(LogicLevel::TERNARY),
        Just(LogicLevel::QUATERNARY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The complement of a complement is the original word.
    #[test]
    fn complement_is_involutive(
        radix in radix_strategy(),
        len in 1usize..8,
        seed in any::<u64>(),
    ) {
        let word = arbitrary_word(radix, len, seed);
        prop_assert_eq!(word.complement().complement(), word);
    }

    /// Reflection always yields a word recognised as reflected, and
    /// un-reflection recovers the base word.
    #[test]
    fn reflection_roundtrips(
        radix in radix_strategy(),
        len in 1usize..8,
        seed in any::<u64>(),
    ) {
        let word = arbitrary_word(radix, len, seed);
        let reflected = word.reflected();
        prop_assert!(reflected.is_reflected());
        prop_assert_eq!(reflected.unreflected().unwrap(), word);
    }

    /// Hamming distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn hamming_distance_is_a_metric(
        radix in radix_strategy(),
        len in 1usize..7,
        seeds in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let a = arbitrary_word(radix, len, seeds.0);
        let b = arbitrary_word(radix, len, seeds.1);
        let c = arbitrary_word(radix, len, seeds.2);
        let dab = a.hamming_distance(&b).unwrap();
        let dba = b.hamming_distance(&a).unwrap();
        let dac = a.hamming_distance(&c).unwrap();
        let dcb = c.hamming_distance(&b).unwrap();
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(a.hamming_distance(&a).unwrap(), 0);
        prop_assert!((dab == 0) == (a == b));
        prop_assert!(dab <= dac + dcb);
    }

    /// Index round-trip over the whole tree space.
    #[test]
    fn word_index_roundtrip(
        radix in radix_strategy(),
        len in 1usize..6,
        index_seed in any::<u64>(),
    ) {
        let space = radix.word_count(len);
        let index = u128::from(index_seed) % space;
        let word = CodeWord::from_index(index, len, radix).unwrap();
        prop_assert_eq!(word.to_index(), index);
    }

    /// Gray codes enumerate the full space with exactly one digit change per
    /// step, for every radix and length.
    #[test]
    fn gray_code_invariants(radix in radix_strategy(), len in 1usize..4) {
        let gc = gray_code(radix, len).unwrap();
        prop_assert!(gc.is_gray());
        prop_assert!(gc.all_words_distinct());
        prop_assert_eq!(gc.len() as u128, radix.word_count(len));
    }

    /// The Gray arrangement never has more transitions than the lexicographic
    /// tree order over the same space (Proposition 5 consequence).
    #[test]
    fn gray_no_worse_than_tree(radix in radix_strategy(), len in 1usize..4) {
        let gc = gray_code(radix, len).unwrap();
        let tc = tree_code(radix, len).unwrap();
        prop_assert!(gc.total_transitions() <= tc.total_transitions());
    }

    /// Reflected sequences double both word length and transition counts.
    #[test]
    fn reflection_doubles_transitions(radix in radix_strategy(), len in 1usize..4) {
        let tc = tree_code(radix, len).unwrap();
        let reflected = tc.reflected();
        prop_assert_eq!(reflected.word_length(), 2 * tc.word_length());
        prop_assert_eq!(reflected.total_transitions(), 2 * tc.total_transitions());
    }

    /// Hot codes contain only constant-composition words and are closed under
    /// the arrangement search (same word multiset).
    #[test]
    fn hot_code_arrangement_preserves_words(
        length in prop_oneof![Just(4usize), Just(6usize)],
    ) {
        let hc = hot_code(LogicLevel::BINARY, length).unwrap();
        let arranged = arrange_min_transitions(
            hc.words().to_vec(),
            ArrangementStrategy::GreedyTwoOpt,
            SearchBudget::default(),
        ).unwrap();
        nanowire_codes::check_is_permutation(&arranged.sequence, hc.words()).unwrap();
        prop_assert!(arranged.total_transitions <= hc.total_transitions());
    }

    /// Balanced Gray codes are Gray codes whose per-digit spread is no worse
    /// than the standard reflected construction.
    #[test]
    fn balanced_gray_is_no_less_balanced(len in 2usize..5) {
        let bgc = balanced_gray_code(LogicLevel::BINARY, len, BalanceBudget::default()).unwrap();
        let gc = gray_code(LogicLevel::BINARY, len).unwrap();
        prop_assert!(bgc.is_gray());
        prop_assert!(balance_report(&bgc).max <= balance_report(&gc).max);
    }

    /// Any valid code spec generates a sequence whose word length matches the
    /// spec and whose words are all distinct.
    #[test]
    fn code_spec_generation_is_consistent(
        kind in prop_oneof![
            Just(CodeKind::Tree),
            Just(CodeKind::Gray),
            Just(CodeKind::Hot),
        ],
        code_length in prop_oneof![Just(4usize), Just(6usize), Just(8usize)],
    ) {
        if let Ok(spec) = CodeSpec::new(kind, LogicLevel::BINARY, code_length) {
            let seq = spec.generate().unwrap();
            prop_assert_eq!(seq.word_length(), code_length);
            prop_assert!(seq.all_words_distinct());
            prop_assert_eq!(seq.len() as u128, spec.space_size());
        }
    }

    /// Cyclic extension preserves the word length and wraps deterministically.
    #[test]
    fn cyclic_extension_wraps(count in 1usize..70) {
        let gc = reflected_gray_code(LogicLevel::BINARY, 6).unwrap();
        let extended = gc.take_cyclic(count).unwrap();
        prop_assert_eq!(extended.len(), count);
        for i in 0..count {
            prop_assert_eq!(&extended[i], &gc[i % gc.len()]);
        }
    }

    /// Reflected tree codes keep lexicographic ordering of their base halves.
    #[test]
    fn reflected_tree_code_base_order(len in prop_oneof![Just(4usize), Just(6usize), Just(8usize)]) {
        let rtc = reflected_tree_code(LogicLevel::BINARY, len).unwrap();
        let indices: Vec<u128> = rtc
            .iter()
            .map(|w| w.unreflected().unwrap().to_index())
            .collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        prop_assert_eq!(indices, sorted);
    }
}

/// Deterministic pseudo-random word from a seed (no rand dependency needed
/// for word construction; keeps shrinking well-behaved).
fn arbitrary_word(radix: LogicLevel, len: usize, seed: u64) -> CodeWord {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        values.push(((state >> 33) % u64::from(radix.radix())) as u8);
    }
    CodeWord::from_values(&values, radix).expect("digits are reduced modulo radix")
}
