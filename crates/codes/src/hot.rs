//! Hot codes (HC): constant-composition codes in which every logic value
//! appears exactly `k` times in every word, so `M = k · n` (Section 2.3).
//!
//! For binary logic these are the classical constant-weight (`k`-out-of-`2k`)
//! codes. Hot codes need no reflection: their composition is balanced by
//! construction, which is what the nanowire addressing scheme requires.

use crate::digit::{Digit, LogicLevel};
use crate::error::{CodeError, Result};
use crate::sequence::CodeSequence;
use crate::tree::MAX_ENUMERATED_WORDS;
use crate::word::CodeWord;

/// Parameters of a hot code: word length `M`, per-value multiplicity `k` and
/// radix `n`, tied together by `M = k · n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HotCodeParams {
    /// Word length `M`.
    pub word_length: usize,
    /// Number of occurrences `k` of every value in every word.
    pub multiplicity: usize,
    /// Logic radix `n`.
    pub radix: LogicLevel,
}

impl HotCodeParams {
    /// Derives the hot-code parameters for a word length and radix.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidHotLength`] when `word_length` is zero or
    /// not a multiple of the radix.
    pub fn for_length(word_length: usize, radix: LogicLevel) -> Result<Self> {
        if word_length == 0 || !word_length.is_multiple_of(radix.radix_usize()) {
            return Err(CodeError::InvalidHotLength {
                length: word_length,
                radix: radix.radix(),
            });
        }
        Ok(HotCodeParams {
            word_length,
            multiplicity: word_length / radix.radix_usize(),
            radix,
        })
    }

    /// The number of words in the code space: the multinomial coefficient
    /// `M! / (k!)^n`, saturating at `u128::MAX`.
    #[must_use]
    pub fn space_size(&self) -> u128 {
        multinomial_equal_parts(
            self.word_length,
            self.multiplicity,
            self.radix.radix_usize(),
        )
    }
}

/// `M! / (k!)^n` computed incrementally to avoid overflow for the small
/// parameters used by decoders; saturates at `u128::MAX`.
fn multinomial_equal_parts(m: usize, k: usize, n: usize) -> u128 {
    // Product of binomial coefficients: C(m, k) * C(m-k, k) * ... * C(k, k).
    let mut total: u128 = 1;
    let mut remaining = m;
    for _ in 0..n {
        total = total.saturating_mul(binomial(remaining, k));
        remaining -= k;
    }
    total
}

/// Binomial coefficient with saturation.
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..k {
        num = num.saturating_mul((n - i) as u128);
        den = den.saturating_mul((i + 1) as u128);
        // Keep the intermediate values small by dividing out common factors.
        let g = gcd(num, den);
        num /= g;
        den /= g;
    }
    num / den
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Generates the hot code with word length `word_length` over `radix`, in
/// lexicographic order.
///
/// # Errors
///
/// * [`CodeError::InvalidHotLength`] when `word_length` is not a positive
///   multiple of the radix.
/// * [`CodeError::SpaceTooLarge`] when the code space exceeds the
///   enumeration limit.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{hot_code, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Binary (4, 2)-hot code: all words with exactly two 1s: C(4,2) = 6 words.
/// let hc = hot_code(LogicLevel::BINARY, 4)?;
/// assert_eq!(hc.len(), 6);
/// assert!(hc.words().iter().all(|w| w.is_hot(2)));
/// # Ok(())
/// # }
/// ```
pub fn hot_code(radix: LogicLevel, word_length: usize) -> Result<CodeSequence> {
    let params = HotCodeParams::for_length(word_length, radix)?;
    let size = params.space_size();
    if size > MAX_ENUMERATED_WORDS {
        return Err(CodeError::SpaceTooLarge {
            words: size,
            limit: MAX_ENUMERATED_WORDS,
        });
    }

    let mut remaining = vec![params.multiplicity; radix.radix_usize()];
    let mut current: Vec<u8> = Vec::with_capacity(word_length);
    let mut words: Vec<CodeWord> = Vec::with_capacity(usize::try_from(size).unwrap_or(0));
    enumerate_hot(&mut remaining, &mut current, word_length, radix, &mut words)?;
    CodeSequence::new(words)
}

fn enumerate_hot(
    remaining: &mut [usize],
    current: &mut Vec<u8>,
    word_length: usize,
    radix: LogicLevel,
    out: &mut Vec<CodeWord>,
) -> Result<()> {
    if current.len() == word_length {
        out.push(CodeWord::new(
            current.iter().copied().map(Digit::new).collect(),
            radix,
        )?);
        return Ok(());
    }
    for value in 0..radix.radix() {
        let slot = usize::from(value);
        if remaining[slot] > 0 {
            remaining[slot] -= 1;
            current.push(value);
            enumerate_hot(remaining, current, word_length, radix, out)?;
            current.pop();
            remaining[slot] += 1;
        }
    }
    Ok(())
}

/// The number of words in the hot-code space for a word length and radix.
///
/// # Errors
///
/// Returns [`CodeError::InvalidHotLength`] when the length is not a positive
/// multiple of the radix.
pub fn hot_space_size(radix: LogicLevel, word_length: usize) -> Result<u128> {
    Ok(HotCodeParams::for_length(word_length, radix)?.space_size())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_require_multiple_of_radix() {
        assert!(HotCodeParams::for_length(6, LogicLevel::TERNARY).is_ok());
        assert!(matches!(
            HotCodeParams::for_length(5, LogicLevel::TERNARY),
            Err(CodeError::InvalidHotLength {
                length: 5,
                radix: 3
            })
        ));
        assert!(HotCodeParams::for_length(0, LogicLevel::BINARY).is_err());
    }

    #[test]
    fn space_sizes_match_combinatorics() {
        // Binary: C(2k, k).
        assert_eq!(hot_space_size(LogicLevel::BINARY, 4).unwrap(), 6);
        assert_eq!(hot_space_size(LogicLevel::BINARY, 6).unwrap(), 20);
        assert_eq!(hot_space_size(LogicLevel::BINARY, 8).unwrap(), 70);
        // Ternary (6, 2): 6! / (2!)^3 = 90.
        assert_eq!(hot_space_size(LogicLevel::TERNARY, 6).unwrap(), 90);
        // Quaternary (4, 1): 4! = 24.
        assert_eq!(hot_space_size(LogicLevel::QUATERNARY, 4).unwrap(), 24);
    }

    #[test]
    fn enumeration_matches_space_size_and_is_hot() {
        for (radix, length) in [
            (LogicLevel::BINARY, 4),
            (LogicLevel::BINARY, 6),
            (LogicLevel::BINARY, 8),
            (LogicLevel::TERNARY, 6),
            (LogicLevel::QUATERNARY, 4),
        ] {
            let params = HotCodeParams::for_length(length, radix).unwrap();
            let hc = hot_code(radix, length).unwrap();
            assert_eq!(hc.len() as u128, params.space_size());
            assert!(hc.all_words_distinct());
            assert!(hc.iter().all(|w| w.is_hot(params.multiplicity)));
        }
    }

    #[test]
    fn paper_hot_code_membership_example() {
        // Section 2.3: 001122 and 012120 belong to the ternary (6, 2) hot
        // code; 000121 does not.
        let hc = hot_code(LogicLevel::TERNARY, 6).unwrap();
        let contains = |s: &str| hc.iter().any(|w| w.to_string() == s);
        assert!(contains("001122"));
        assert!(contains("012120"));
        assert!(!contains("000121"));
    }

    #[test]
    fn lexicographic_order() {
        let hc = hot_code(LogicLevel::BINARY, 4).unwrap();
        let rendered: Vec<String> = hc.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec!["0011", "0101", "0110", "1001", "1010", "1100"]
        );
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(8, 4), 70);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn too_large_spaces_are_rejected() {
        // Binary hot code with M = 80 has C(80, 40) >> 2^20 words.
        assert!(matches!(
            hot_code(LogicLevel::BINARY, 80),
            Err(CodeError::SpaceTooLarge { .. })
        ));
    }
}
