//! Tree codes (TC): the full set of `n^m` words of `m` digits over radix `n`,
//! enumerated in lexicographic (counting) order, and their reflected form.
//!
//! Tree codes are the baseline encoding of the paper (Section 2.3). To be
//! usable as nanowire addresses they are always *reflected*: every word gets
//! its complement appended, so the full code length is `M = 2·m`.

use crate::digit::LogicLevel;
use crate::error::{CodeError, Result};
use crate::sequence::CodeSequence;
use crate::word::CodeWord;

/// Safety limit on enumerated code-space sizes.
///
/// Code spaces of practical decoders contain at most a few hundred words
/// (the paper goes up to `2^5 = 32` tree words and 70 hot words); the limit
/// only guards against accidental exponential blow-ups.
pub const MAX_ENUMERATED_WORDS: u128 = 1 << 20;

/// Generates the tree code of `base_length` digits over `radix`, in
/// lexicographic order, *without* reflection.
///
/// # Errors
///
/// * [`CodeError::InvalidLength`] when `base_length == 0`.
/// * [`CodeError::SpaceTooLarge`] when `radix^base_length` exceeds
///   [`MAX_ENUMERATED_WORDS`].
///
/// # Examples
///
/// ```
/// use nanowire_codes::{tree_code, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tc = tree_code(LogicLevel::TERNARY, 2)?;
/// assert_eq!(tc.len(), 9);
/// assert_eq!(tc[0].to_string(), "00");
/// assert_eq!(tc[8].to_string(), "22");
/// # Ok(())
/// # }
/// ```
pub fn tree_code(radix: LogicLevel, base_length: usize) -> Result<CodeSequence> {
    if base_length == 0 {
        return Err(CodeError::InvalidLength { length: 0 });
    }
    let count = radix.word_count(base_length);
    if count > MAX_ENUMERATED_WORDS {
        return Err(CodeError::SpaceTooLarge {
            words: count,
            limit: MAX_ENUMERATED_WORDS,
        });
    }
    let words: Result<Vec<CodeWord>> = (0..count)
        .map(|i| CodeWord::from_index(i, base_length, radix))
        .collect();
    CodeSequence::new(words?)
}

/// Generates the *reflected* tree code with full code length
/// `code_length = 2 · base_length` (Section 2.3): every word of the tree code
/// in lexicographic order, with its complement appended.
///
/// # Errors
///
/// * [`CodeError::OddReflectedLength`] when `code_length` is odd.
/// * Any error of [`tree_code`].
///
/// # Examples
///
/// ```
/// use nanowire_codes::{reflected_tree_code, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's example: 0010 reflects to 00102212 (ternary).
/// let tc = reflected_tree_code(LogicLevel::TERNARY, 8)?;
/// assert_eq!(tc.word_length(), 8);
/// assert!(tc.words().iter().any(|w| w.to_string() == "00102212"));
/// # Ok(())
/// # }
/// ```
pub fn reflected_tree_code(radix: LogicLevel, code_length: usize) -> Result<CodeSequence> {
    let base_length = base_length_of(code_length)?;
    Ok(tree_code(radix, base_length)?.reflected())
}

/// Splits a full (reflected) code length `M` into the base half length.
///
/// # Errors
///
/// Returns [`CodeError::OddReflectedLength`] for odd lengths and
/// [`CodeError::InvalidLength`] for zero.
pub fn base_length_of(code_length: usize) -> Result<usize> {
    if code_length == 0 {
        return Err(CodeError::InvalidLength { length: 0 });
    }
    if !code_length.is_multiple_of(2) {
        return Err(CodeError::OddReflectedLength {
            length: code_length,
        });
    }
    Ok(code_length / 2)
}

/// The number of words in a (reflected or raw) tree code space of the given
/// base length: `radix^base_length`.
#[must_use]
pub fn tree_space_size(radix: LogicLevel, base_length: usize) -> u128 {
    radix.word_count(base_length)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_code_is_lexicographic_and_complete() {
        let tc = tree_code(LogicLevel::BINARY, 3).unwrap();
        let rendered: Vec<String> = tc.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec!["000", "001", "010", "011", "100", "101", "110", "111"]
        );
        assert!(tc.all_words_distinct());
    }

    #[test]
    fn ternary_tree_code_matches_paper_enumeration() {
        // Section 2.3: for n = 3 and M = 4 the codes are 0000, 0001, 0002,
        // 0010, ..., 2222.
        let tc = tree_code(LogicLevel::TERNARY, 4).unwrap();
        assert_eq!(tc.len(), 81);
        assert_eq!(tc[0].to_string(), "0000");
        assert_eq!(tc[1].to_string(), "0001");
        assert_eq!(tc[2].to_string(), "0002");
        assert_eq!(tc[3].to_string(), "0010");
        assert_eq!(tc[80].to_string(), "2222");
    }

    #[test]
    fn reflected_tree_code_words_are_reflections() {
        let tc = reflected_tree_code(LogicLevel::TERNARY, 8).unwrap();
        assert_eq!(tc.len(), 81);
        assert_eq!(tc.word_length(), 8);
        assert!(tc.iter().all(CodeWord::is_reflected));
        assert_eq!(tc[0].to_string(), "00002222");
        assert_eq!(tc[1].to_string(), "00012221");
    }

    #[test]
    fn reflected_length_must_be_even() {
        assert!(matches!(
            reflected_tree_code(LogicLevel::BINARY, 7),
            Err(CodeError::OddReflectedLength { length: 7 })
        ));
        assert!(matches!(
            base_length_of(0),
            Err(CodeError::InvalidLength { length: 0 })
        ));
        assert_eq!(base_length_of(10).unwrap(), 5);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(tree_code(LogicLevel::BINARY, 0).is_err());
    }

    #[test]
    fn space_size_guard() {
        // 2^25 exceeds the 2^20 enumeration limit.
        assert!(matches!(
            tree_code(LogicLevel::BINARY, 25),
            Err(CodeError::SpaceTooLarge { .. })
        ));
        assert_eq!(tree_space_size(LogicLevel::BINARY, 5), 32);
        assert_eq!(tree_space_size(LogicLevel::QUATERNARY, 3), 64);
    }

    #[test]
    fn lexicographic_tree_code_toggles_last_digit_every_step() {
        // This is the reason tree codes are expensive: the least-significant
        // digit changes at every single step of the sequence.
        let tc = tree_code(LogicLevel::BINARY, 4).unwrap();
        let per_digit = tc.transitions_per_digit();
        assert_eq!(per_digit[3], tc.len() - 1);
    }
}
