//! Balanced Gray codes (BGC): Gray arrangements whose digit-transition counts
//! are spread as evenly as possible over the digit positions (Section 2.3,
//! ref. [3] Bhat & Savage).
//!
//! In the decoder this evens out the accumulated threshold-voltage
//! variability over the doping regions (Fig. 6 e/f of the paper), which in
//! turn improves the worst-case addressability of a nanowire.

use serde::{Deserialize, Serialize};

use crate::digit::LogicLevel;
use crate::error::{CodeError, Result};
use crate::gray::gray_code;
use crate::sequence::CodeSequence;
use crate::tree::{base_length_of, MAX_ENUMERATED_WORDS};
use crate::word::CodeWord;

/// Search limits for the balanced-Gray-code construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalanceBudget {
    /// Maximum number of DFS nodes expanded per per-digit limit attempt.
    pub max_nodes_per_limit: u64,
    /// Largest slack added to the ideal per-digit limit before giving up and
    /// falling back to the standard reflected Gray code.
    pub max_limit_slack: usize,
}

impl Default for BalanceBudget {
    fn default() -> Self {
        BalanceBudget {
            max_nodes_per_limit: 4_000_000,
            max_limit_slack: 4,
        }
    }
}

/// Per-digit balance statistics of a code sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Transition count of every digit position.
    pub per_digit: Vec<usize>,
    /// Smallest per-digit transition count.
    pub min: usize,
    /// Largest per-digit transition count.
    pub max: usize,
    /// `max - min`: zero for a perfectly balanced sequence.
    pub spread: usize,
    /// Total number of transitions.
    pub total: usize,
}

/// Computes the balance statistics of a sequence.
#[must_use]
pub fn balance_report(sequence: &CodeSequence) -> BalanceReport {
    let per_digit = sequence.transitions_per_digit();
    let min = per_digit.iter().copied().min().unwrap_or(0);
    let max = per_digit.iter().copied().max().unwrap_or(0);
    let total = per_digit.iter().sum();
    BalanceReport {
        spread: max - min,
        per_digit,
        min,
        max,
        total,
    }
}

/// Generates a balanced Gray code of `base_length` digits over `radix`
/// (without reflection): a Gray arrangement of the full tree-code space whose
/// maximum per-digit transition count is as small as the search budget allows.
///
/// The construction searches for a Hamiltonian path of the "one digit
/// differs" graph under a per-digit change limit, starting from the ideal
/// limit `ceil((n^m - 1) / m)` and relaxing it one unit at a time. If no
/// balanced path is found within the budget the standard reflected Gray code
/// is returned (which is still a valid Gray arrangement, just less balanced);
/// callers that need to know can compare [`balance_report`]s.
///
/// # Errors
///
/// * [`CodeError::InvalidLength`] when `base_length == 0`.
/// * [`CodeError::SpaceTooLarge`] when the space exceeds the enumeration
///   limit.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{balanced_gray_code, balance_report, BalanceBudget, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bgc = balanced_gray_code(LogicLevel::BINARY, 4, BalanceBudget::default())?;
/// assert!(bgc.is_gray());
/// let report = balance_report(&bgc);
/// // 15 transitions over 4 digits: the best possible maximum is 4.
/// assert_eq!(report.max, 4);
/// # Ok(())
/// # }
/// ```
pub fn balanced_gray_code(
    radix: LogicLevel,
    base_length: usize,
    budget: BalanceBudget,
) -> Result<CodeSequence> {
    if base_length == 0 {
        return Err(CodeError::InvalidLength { length: 0 });
    }
    let count = radix.word_count(base_length);
    if count > MAX_ENUMERATED_WORDS {
        return Err(CodeError::SpaceTooLarge {
            words: count,
            limit: MAX_ENUMERATED_WORDS,
        });
    }
    let count = count as usize;
    let transitions = count - 1;
    let ideal_limit = transitions.div_ceil(base_length);

    for slack in 0..=budget.max_limit_slack {
        let limit = ideal_limit + slack;
        if let Some(sequence) =
            search_balanced_path(radix, base_length, limit, budget.max_nodes_per_limit)
        {
            return CodeSequence::new(sequence);
        }
    }
    // Fallback: the plain reflected Gray code.
    gray_code(radix, base_length)
}

/// Generates the *reflected* balanced Gray code with full code length
/// `code_length = 2 · base_length`.
///
/// # Errors
///
/// * [`CodeError::OddReflectedLength`] when `code_length` is odd.
/// * Any error of [`balanced_gray_code`].
pub fn reflected_balanced_gray_code(
    radix: LogicLevel,
    code_length: usize,
    budget: BalanceBudget,
) -> Result<CodeSequence> {
    let base_length = base_length_of(code_length)?;
    Ok(balanced_gray_code(radix, base_length, budget)?.reflected())
}

/// DFS for a Hamiltonian path of the one-digit-difference graph in which no
/// digit position changes more than `limit` times.
fn search_balanced_path(
    radix: LogicLevel,
    base_length: usize,
    limit: usize,
    max_nodes: u64,
) -> Option<Vec<CodeWord>> {
    let n = radix.radix_usize();
    let total: usize = n.pow(base_length as u32);

    // Words are represented by their tree-code index; neighbours differ in
    // exactly one digit.
    let mut visited = vec![false; total];
    let mut digit_changes = vec![0usize; base_length];
    let mut path: Vec<usize> = Vec::with_capacity(total);
    let mut nodes: u64 = 0;

    // Start from the all-zero word, like every other code of the crate.
    visited[0] = true;
    path.push(0);

    let powers: Vec<usize> = (0..base_length)
        .rev()
        .scan(1usize, |acc, _| {
            let value = *acc;
            *acc *= n;
            Some(value)
        })
        .collect();
    // powers[j] is the place value of digit j (digit 0 is most significant).
    let place = {
        let mut p = powers;
        p.reverse();
        p
    };

    fn digits_of(mut index: usize, n: usize, len: usize) -> Vec<u8> {
        let mut digits = vec![0u8; len];
        for slot in digits.iter_mut().rev() {
            *slot = (index % n) as u8;
            index /= n;
        }
        digits
    }

    struct Ctx<'a> {
        n: usize,
        base_length: usize,
        total: usize,
        limit: usize,
        max_nodes: u64,
        place: &'a [usize],
    }

    fn dfs(
        ctx: &Ctx<'_>,
        visited: &mut Vec<bool>,
        digit_changes: &mut Vec<usize>,
        path: &mut Vec<usize>,
        nodes: &mut u64,
    ) -> bool {
        if path.len() == ctx.total {
            return true;
        }
        *nodes += 1;
        if *nodes > ctx.max_nodes {
            return false;
        }
        let current = *path.last().expect("non-empty path");
        let current_digits = digits_of(current, ctx.n, ctx.base_length);

        // Candidate moves: change one digit to another value. Prefer digits
        // with the fewest accumulated changes so the balance target is met,
        // and among them prefer neighbours with low remaining degree.
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        for j in 0..ctx.base_length {
            if digit_changes[j] >= ctx.limit {
                continue;
            }
            let current_value = usize::from(current_digits[j]);
            for value in 0..ctx.n {
                if value == current_value {
                    continue;
                }
                let neighbour = neighbour_index(current, j, value, ctx);
                if !visited[neighbour] {
                    candidates.push((digit_changes[j], j, neighbour));
                }
            }
        }
        candidates.sort_by_key(|&(changes, _, _)| changes);

        for (_, j, neighbour) in candidates {
            visited[neighbour] = true;
            digit_changes[j] += 1;
            path.push(neighbour);
            if dfs(ctx, visited, digit_changes, path, nodes) {
                return true;
            }
            path.pop();
            digit_changes[j] -= 1;
            visited[neighbour] = false;
            if *nodes > ctx.max_nodes {
                return false;
            }
        }
        false
    }

    fn neighbour_index(current: usize, j: usize, new_value: usize, ctx: &Ctx<'_>) -> usize {
        let digits = digits_of(current, ctx.n, ctx.base_length);
        let old_value = usize::from(digits[j]);
        current - old_value * ctx.place[j] + new_value * ctx.place[j]
    }

    let ctx = Ctx {
        n,
        base_length,
        total,
        limit,
        max_nodes,
        place: &place,
    };

    if dfs(
        &ctx,
        &mut visited,
        &mut digit_changes,
        &mut path,
        &mut nodes,
    ) {
        let words: Option<Vec<CodeWord>> = path
            .into_iter()
            .map(|index| CodeWord::from_index(index as u128, base_length, radix).ok())
            .collect();
        words
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gray::is_complete_gray_arrangement;

    #[test]
    fn binary_balanced_gray_codes_are_gray_and_complete() {
        for base_length in 2..=5 {
            let bgc = balanced_gray_code(LogicLevel::BINARY, base_length, BalanceBudget::default())
                .unwrap();
            assert!(is_complete_gray_arrangement(&bgc), "m = {base_length}");
        }
    }

    #[test]
    fn binary_balanced_gray_code_is_more_balanced_than_reflected() {
        for base_length in 4..=5 {
            let bgc = balanced_gray_code(LogicLevel::BINARY, base_length, BalanceBudget::default())
                .unwrap();
            let gc = gray_code(LogicLevel::BINARY, base_length).unwrap();
            let balanced = balance_report(&bgc);
            let standard = balance_report(&gc);
            assert!(
                balanced.max <= standard.max,
                "m = {base_length}: balanced max {} vs standard {}",
                balanced.max,
                standard.max
            );
            assert!(balanced.spread <= standard.spread);
        }
    }

    #[test]
    fn balanced_m4_reaches_ideal_maximum() {
        let bgc = balanced_gray_code(LogicLevel::BINARY, 4, BalanceBudget::default()).unwrap();
        let report = balance_report(&bgc);
        assert_eq!(report.total, 15);
        assert_eq!(report.max, 4);
    }

    #[test]
    fn ternary_balanced_gray_code_is_gray() {
        let bgc = balanced_gray_code(LogicLevel::TERNARY, 3, BalanceBudget::default()).unwrap();
        assert!(bgc.is_gray());
        assert!(bgc.all_words_distinct());
        assert_eq!(bgc.len(), 27);
    }

    #[test]
    fn reflected_balanced_gray_code_has_even_length_and_distance_two() {
        let bgc =
            reflected_balanced_gray_code(LogicLevel::BINARY, 8, BalanceBudget::default()).unwrap();
        assert_eq!(bgc.word_length(), 8);
        assert!(bgc.has_uniform_distance(2));
    }

    #[test]
    fn tiny_budget_falls_back_to_gray_code() {
        let budget = BalanceBudget {
            max_nodes_per_limit: 1,
            max_limit_slack: 0,
        };
        let bgc = balanced_gray_code(LogicLevel::BINARY, 4, budget).unwrap();
        // Still a valid complete Gray arrangement (the fallback).
        assert!(is_complete_gray_arrangement(&bgc));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(balanced_gray_code(LogicLevel::BINARY, 0, BalanceBudget::default()).is_err());
        assert!(
            reflected_balanced_gray_code(LogicLevel::BINARY, 7, BalanceBudget::default()).is_err()
        );
    }

    #[test]
    fn balance_report_fields_are_consistent() {
        let gc = gray_code(LogicLevel::BINARY, 4).unwrap();
        let report = balance_report(&gc);
        assert_eq!(report.total, 15);
        assert_eq!(report.per_digit.iter().sum::<usize>(), report.total);
        assert_eq!(report.spread, report.max - report.min);
    }
}
