//! Logic levels (radix) and digits of multi-valued code words.
//!
//! The paper addresses nanowires with a multi-valued logic of `n` values: the
//! threshold voltage of every doping region is one of `n` discrete levels.
//! [`LogicLevel`] captures the radix `n` and [`Digit`] a single value in
//! `0..n`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{CodeError, Result};

/// The smallest supported logic radix.
pub const MIN_RADIX: u8 = 2;
/// The largest supported logic radix.
///
/// Sixteen levels is far beyond anything the paper evaluates (it stops at
/// quaternary logic) but keeps digit rendering to a single character.
pub const MAX_RADIX: u8 = 16;

/// The radix (number of logic values) of a multi-valued code.
///
/// The paper evaluates binary (`n = 2`), ternary (`n = 3`) and quaternary
/// (`n = 4`) logic; the type supports any radix in `2..=16`.
///
/// # Examples
///
/// ```
/// use nanowire_codes::LogicLevel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ternary = LogicLevel::new(3)?;
/// assert_eq!(ternary.radix(), 3);
/// assert_eq!(ternary.max_digit(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogicLevel(u8);

impl LogicLevel {
    /// Binary logic (`n = 2`).
    pub const BINARY: LogicLevel = LogicLevel(2);
    /// Ternary logic (`n = 3`).
    pub const TERNARY: LogicLevel = LogicLevel(3);
    /// Quaternary logic (`n = 4`).
    pub const QUATERNARY: LogicLevel = LogicLevel(4);

    /// Creates a logic level with the given radix.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidRadix`] if `radix` is outside `2..=16`.
    pub fn new(radix: u8) -> Result<Self> {
        if (MIN_RADIX..=MAX_RADIX).contains(&radix) {
            Ok(LogicLevel(radix))
        } else {
            Err(CodeError::InvalidRadix { radix })
        }
    }

    /// The radix `n`.
    #[must_use]
    pub fn radix(self) -> u8 {
        self.0
    }

    /// The radix as a `usize`, convenient for sizing computations.
    #[must_use]
    pub fn radix_usize(self) -> usize {
        usize::from(self.0)
    }

    /// The largest digit value representable in this radix (`n - 1`).
    #[must_use]
    pub fn max_digit(self) -> u8 {
        self.0 - 1
    }

    /// Checks that a digit value fits in this radix.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DigitOutOfRange`] when `digit >= radix`.
    pub fn check_digit(self, digit: u8) -> Result<()> {
        if digit < self.0 {
            Ok(())
        } else {
            Err(CodeError::DigitOutOfRange {
                digit,
                radix: self.0,
            })
        }
    }

    /// Iterates over all digit values of this radix, in increasing order.
    ///
    /// ```
    /// use nanowire_codes::LogicLevel;
    /// let values: Vec<u8> = LogicLevel::TERNARY.digit_values().map(|d| d.value()).collect();
    /// assert_eq!(values, vec![0, 1, 2]);
    /// ```
    pub fn digit_values(self) -> impl Iterator<Item = Digit> {
        (0..self.0).map(Digit)
    }

    /// Number of distinct words of `len` digits in this radix (`n^len`),
    /// saturating at `u128::MAX`.
    #[must_use]
    pub fn word_count(self, len: usize) -> u128 {
        let mut acc: u128 = 1;
        for _ in 0..len {
            acc = acc.saturating_mul(u128::from(self.0));
        }
        acc
    }
}

impl fmt::Display for LogicLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            2 => write!(f, "binary"),
            3 => write!(f, "ternary"),
            4 => write!(f, "quaternary"),
            n => write!(f, "{n}-ary"),
        }
    }
}

impl TryFrom<u8> for LogicLevel {
    type Error = CodeError;

    fn try_from(value: u8) -> Result<Self> {
        LogicLevel::new(value)
    }
}

impl From<LogicLevel> for u8 {
    fn from(value: LogicLevel) -> Self {
        value.0
    }
}

/// A single digit of a multi-valued code word.
///
/// A digit is only meaningful together with the [`LogicLevel`] of the word
/// that contains it; [`crate::CodeWord`] enforces that every digit fits the
/// word radix.
///
/// ```
/// use nanowire_codes::Digit;
/// let d = Digit::new(2);
/// assert_eq!(d.value(), 2);
/// assert_eq!(d.to_string(), "2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Digit(u8);

impl Digit {
    /// The zero digit.
    pub const ZERO: Digit = Digit(0);

    /// Creates a digit with the given value.
    ///
    /// The value is not bounded here; bounds are enforced when the digit is
    /// placed into a [`crate::CodeWord`] with a concrete radix.
    #[must_use]
    pub fn new(value: u8) -> Self {
        Digit(value)
    }

    /// The numeric value of the digit.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }

    /// The complement of this digit with respect to a radix: `(n-1) - d`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::DigitOutOfRange`] if the digit does not fit the
    /// radix.
    pub fn complement(self, radix: LogicLevel) -> Result<Digit> {
        radix.check_digit(self.0)?;
        Ok(Digit(radix.max_digit() - self.0))
    }
}

impl fmt::Display for Digit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 10 {
            write!(f, "{}", self.0)
        } else {
            // Render 10..=15 as a..f so words stay one character per digit.
            write!(f, "{}", (b'a' + (self.0 - 10)) as char)
        }
    }
}

impl From<u8> for Digit {
    fn from(value: u8) -> Self {
        Digit(value)
    }
}

impl From<Digit> for u8 {
    fn from(value: Digit) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_bounds_are_enforced() {
        assert!(LogicLevel::new(1).is_err());
        assert!(LogicLevel::new(0).is_err());
        assert!(LogicLevel::new(17).is_err());
        for n in MIN_RADIX..=MAX_RADIX {
            assert_eq!(LogicLevel::new(n).unwrap().radix(), n);
        }
    }

    #[test]
    fn named_levels_have_expected_radices() {
        assert_eq!(LogicLevel::BINARY.radix(), 2);
        assert_eq!(LogicLevel::TERNARY.radix(), 3);
        assert_eq!(LogicLevel::QUATERNARY.radix(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(LogicLevel::BINARY.to_string(), "binary");
        assert_eq!(LogicLevel::TERNARY.to_string(), "ternary");
        assert_eq!(LogicLevel::QUATERNARY.to_string(), "quaternary");
        assert_eq!(LogicLevel::new(5).unwrap().to_string(), "5-ary");
    }

    #[test]
    fn digit_check_respects_radix() {
        let ternary = LogicLevel::TERNARY;
        assert!(ternary.check_digit(0).is_ok());
        assert!(ternary.check_digit(2).is_ok());
        assert_eq!(
            ternary.check_digit(3),
            Err(CodeError::DigitOutOfRange { digit: 3, radix: 3 })
        );
    }

    #[test]
    fn digit_values_enumerates_all() {
        let digits: Vec<u8> = LogicLevel::QUATERNARY
            .digit_values()
            .map(Digit::value)
            .collect();
        assert_eq!(digits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn word_count_matches_powers() {
        assert_eq!(LogicLevel::BINARY.word_count(10), 1024);
        assert_eq!(LogicLevel::TERNARY.word_count(4), 81);
        assert_eq!(LogicLevel::QUATERNARY.word_count(0), 1);
    }

    #[test]
    fn word_count_saturates() {
        assert_eq!(LogicLevel::new(16).unwrap().word_count(64), u128::MAX);
    }

    #[test]
    fn digit_complement() {
        let ternary = LogicLevel::TERNARY;
        assert_eq!(Digit::new(0).complement(ternary).unwrap(), Digit::new(2));
        assert_eq!(Digit::new(1).complement(ternary).unwrap(), Digit::new(1));
        assert_eq!(Digit::new(2).complement(ternary).unwrap(), Digit::new(0));
        assert!(Digit::new(3).complement(ternary).is_err());
    }

    #[test]
    fn digit_display_uses_letters_above_nine() {
        assert_eq!(Digit::new(9).to_string(), "9");
        assert_eq!(Digit::new(10).to_string(), "a");
        assert_eq!(Digit::new(15).to_string(), "f");
    }

    #[test]
    fn conversions_roundtrip() {
        let level = LogicLevel::try_from(4).unwrap();
        assert_eq!(u8::from(level), 4);
        let digit = Digit::from(3u8);
        assert_eq!(u8::from(digit), 3);
    }
}
