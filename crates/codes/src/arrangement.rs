//! Generic arrangement search: ordering a set of code words so that the total
//! number of digit transitions between successive words is minimised.
//!
//! The Gray code is the closed-form answer for full tree-code spaces; for hot
//! codes (Section 5.2) and for balancing objectives the paper relies on
//! search. This module provides the shared machinery: exhaustive
//! (branch-and-bound Hamiltonian-path) search for small spaces, greedy
//! nearest-neighbour construction and 2-opt local improvement for larger
//! ones.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::error::{CodeError, Result};
use crate::sequence::CodeSequence;
use crate::word::CodeWord;

/// Strategy used to arrange a set of code words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum ArrangementStrategy {
    /// Branch-and-bound search for a provably minimal arrangement. Falls back
    /// to [`ArrangementStrategy::GreedyTwoOpt`] when the search budget is
    /// exhausted.
    Exhaustive,
    /// Greedy nearest-neighbour construction.
    Greedy,
    /// Greedy construction followed by 2-opt local improvement.
    #[default]
    GreedyTwoOpt,
}

/// Tunable limits for arrangement search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Maximum number of branch-and-bound nodes expanded before giving up on
    /// exact search.
    pub max_nodes: u64,
    /// Maximum number of full 2-opt sweeps.
    pub max_two_opt_sweeps: u32,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_nodes: 2_000_000,
            max_two_opt_sweeps: 64,
        }
    }
}

/// Outcome of an arrangement search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrangement {
    /// The arranged sequence.
    pub sequence: CodeSequence,
    /// Total number of digit transitions of the arranged sequence.
    pub total_transitions: usize,
    /// Whether the result is provably optimal (exhaustive search completed).
    pub proven_optimal: bool,
}

/// Arranges `words` to minimise the total number of digit transitions between
/// successive words.
///
/// # Errors
///
/// * [`CodeError::EmptySequence`] when `words` is empty.
/// * [`CodeError::LengthMismatch`] / [`CodeError::RadixMismatch`] when the
///   words are not mutually compatible.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{arrange_min_transitions, hot_code, ArrangementStrategy, LogicLevel, SearchBudget};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let hc = hot_code(LogicLevel::BINARY, 4)?;
/// let arranged = arrange_min_transitions(
///     hc.words().to_vec(),
///     ArrangementStrategy::Exhaustive,
///     SearchBudget::default(),
/// )?;
/// // Constant-weight words can never differ in fewer than two digits, so the
/// // optimum is two transitions per step.
/// assert_eq!(arranged.total_transitions, 2 * (hc.len() - 1));
/// # Ok(())
/// # }
/// ```
pub fn arrange_min_transitions(
    words: Vec<CodeWord>,
    strategy: ArrangementStrategy,
    budget: SearchBudget,
) -> Result<Arrangement> {
    // Validate compatibility up-front by building a sequence.
    let baseline = CodeSequence::new(words)?;
    let words = baseline.into_words();
    if words.len() == 1 {
        let sequence = CodeSequence::new(words)?;
        return Ok(Arrangement {
            total_transitions: 0,
            sequence,
            proven_optimal: true,
        });
    }

    let distances = distance_matrix(&words)?;
    match strategy {
        ArrangementStrategy::Greedy => {
            let order = greedy_order(&distances);
            finish(words, order, &distances, false)
        }
        ArrangementStrategy::GreedyTwoOpt => {
            let mut order = greedy_order(&distances);
            two_opt(&mut order, &distances, budget.max_two_opt_sweeps);
            finish(words, order, &distances, false)
        }
        ArrangementStrategy::Exhaustive => {
            let mut initial = greedy_order(&distances);
            two_opt(&mut initial, &distances, budget.max_two_opt_sweeps);
            let upper_bound = path_cost(&initial, &distances);
            match branch_and_bound(&distances, upper_bound, budget.max_nodes) {
                Some((order, _cost, completed)) => finish(words, order, &distances, completed),
                None => finish(words, initial, &distances, false),
            }
        }
    }
}

/// The pairwise digit-transition (Hamming) distance matrix of a word set.
fn distance_matrix(words: &[CodeWord]) -> Result<Vec<Vec<usize>>> {
    let n = words.len();
    let mut matrix = vec![vec![0usize; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = words[i].transitions_to(&words[j])?;
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    Ok(matrix)
}

fn path_cost(order: &[usize], distances: &[Vec<usize>]) -> usize {
    order
        .windows(2)
        .map(|pair| distances[pair[0]][pair[1]])
        .sum()
}

/// Greedy nearest-neighbour path starting from every possible node, keeping
/// the cheapest result.
fn greedy_order(distances: &[Vec<usize>]) -> Vec<usize> {
    let n = distances.len();
    let mut best: Option<(usize, Vec<usize>)> = None;
    for start in 0..n {
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        visited[start] = true;
        order.push(start);
        let mut current = start;
        for _ in 1..n {
            let mut next = None;
            let mut next_dist = usize::MAX;
            for (candidate, seen) in visited.iter().enumerate() {
                if !seen && distances[current][candidate] < next_dist {
                    next = Some(candidate);
                    next_dist = distances[current][candidate];
                }
            }
            let next = next.expect("unvisited node must exist");
            visited[next] = true;
            order.push(next);
            current = next;
        }
        let cost = path_cost(&order, distances);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, order));
        }
    }
    best.expect("at least one start").1
}

/// 2-opt local improvement: repeatedly reverse sub-paths while that reduces
/// the path cost.
fn two_opt(order: &mut [usize], distances: &[Vec<usize>], max_sweeps: u32) {
    let n = order.len();
    if n < 4 {
        return;
    }
    for _ in 0..max_sweeps {
        let mut improved = false;
        for i in 0..(n - 2) {
            for j in (i + 2)..n {
                // Reversing order[i+1..=j] replaces edges (i, i+1) and
                // (j, j+1) with (i, j) and (i+1, j+1).
                let before = distances[order[i]][order[i + 1]]
                    + if j + 1 < n {
                        distances[order[j]][order[j + 1]]
                    } else {
                        0
                    };
                let after = distances[order[i]][order[j]]
                    + if j + 1 < n {
                        distances[order[i + 1]][order[j + 1]]
                    } else {
                        0
                    };
                if after < before {
                    order[i + 1..=j].reverse();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Branch-and-bound Hamiltonian-path search minimising the path cost.
///
/// Returns the best order found, its cost, and whether the search space was
/// fully explored (so the result is provably optimal).
fn branch_and_bound(
    distances: &[Vec<usize>],
    initial_upper_bound: usize,
    max_nodes: u64,
) -> Option<(Vec<usize>, usize, bool)> {
    let n = distances.len();
    // Minimum outgoing edge per node, used for an admissible lower bound.
    let min_edge: Vec<usize> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| distances[i][j])
                .min()
                .unwrap_or(0)
        })
        .collect();

    struct SearchState<'a> {
        distances: &'a [Vec<usize>],
        min_edge: &'a [usize],
        best_cost: usize,
        best_order: Option<Vec<usize>>,
        nodes: u64,
        max_nodes: u64,
        aborted: bool,
    }

    fn dfs(
        state: &mut SearchState<'_>,
        order: &mut Vec<usize>,
        visited: &mut Vec<bool>,
        cost: usize,
    ) {
        if state.aborted {
            return;
        }
        state.nodes += 1;
        if state.nodes > state.max_nodes {
            state.aborted = true;
            return;
        }
        let n = state.distances.len();
        if order.len() == n {
            if cost < state.best_cost {
                state.best_cost = cost;
                state.best_order = Some(order.clone());
            }
            return;
        }
        // Lower bound: current cost plus the cheapest outgoing edge of every
        // unvisited node except one (the path end has no outgoing edge).
        let mut remaining_bound: usize = 0;
        let mut max_single = 0usize;
        for (node, seen) in visited.iter().enumerate() {
            if !seen {
                remaining_bound += state.min_edge[node];
                max_single = max_single.max(state.min_edge[node]);
            }
        }
        let bound = cost + remaining_bound.saturating_sub(max_single);
        if bound >= state.best_cost {
            return;
        }
        let current = *order.last().expect("non-empty order");
        // Expand cheapest edges first so good solutions are found early.
        let mut candidates: Vec<usize> = (0..n).filter(|&j| !visited[j]).collect();
        candidates.sort_by_key(|&j| state.distances[current][j]);
        for j in candidates {
            visited[j] = true;
            order.push(j);
            dfs(state, order, visited, cost + state.distances[current][j]);
            order.pop();
            visited[j] = false;
        }
    }

    let mut state = SearchState {
        distances,
        min_edge: &min_edge,
        best_cost: initial_upper_bound + 1,
        best_order: None,
        nodes: 0,
        max_nodes,
        aborted: false,
    };

    for start in 0..n {
        let mut visited = vec![false; n];
        visited[start] = true;
        let mut order = vec![start];
        dfs(&mut state, &mut order, &mut visited, 0);
        if state.aborted {
            break;
        }
    }

    state
        .best_order
        .map(|order| (order, state.best_cost, !state.aborted))
}

fn finish(
    words: Vec<CodeWord>,
    order: Vec<usize>,
    distances: &[Vec<usize>],
    proven_optimal: bool,
) -> Result<Arrangement> {
    // mspt-analyze: allow(determinism-unsafe-calls) debug-only cardinality check; only len() is read, never iteration order
    debug_assert_eq!(order.iter().collect::<HashSet<_>>().len(), words.len());
    let total_transitions = path_cost(&order, distances);
    let arranged: Vec<CodeWord> = order.into_iter().map(|i| words[i].clone()).collect();
    let sequence = CodeSequence::new(arranged)?;
    Ok(Arrangement {
        sequence,
        total_transitions,
        proven_optimal,
    })
}

/// Returns an error if the words of `sequence` are not a permutation of
/// `words`.
///
/// # Errors
///
/// Returns [`CodeError::WordNotInSpace`] naming the first word that is
/// missing from either side.
pub fn check_is_permutation(sequence: &CodeSequence, words: &[CodeWord]) -> Result<()> {
    let mut expected: Vec<&CodeWord> = words.iter().collect();
    expected.sort();
    let mut actual: Vec<&CodeWord> = sequence.words().iter().collect();
    actual.sort();
    if expected.len() != actual.len() {
        return Err(CodeError::WordNotInSpace {
            word: format!(
                "sequence has {} words, space has {}",
                actual.len(),
                expected.len()
            ),
        });
    }
    for (e, a) in expected.iter().zip(actual.iter()) {
        if e != a {
            return Err(CodeError::WordNotInSpace {
                word: a.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digit::LogicLevel;
    use crate::hot::hot_code;
    use crate::tree::tree_code;

    #[test]
    fn single_word_is_trivially_optimal() {
        let word = CodeWord::from_values(&[0, 1], LogicLevel::BINARY).unwrap();
        let arranged = arrange_min_transitions(
            vec![word],
            ArrangementStrategy::Exhaustive,
            SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(arranged.total_transitions, 0);
        assert!(arranged.proven_optimal);
    }

    #[test]
    fn exhaustive_reaches_gray_optimum_on_small_tree_code() {
        let tc = tree_code(LogicLevel::BINARY, 3).unwrap();
        let arranged = arrange_min_transitions(
            tc.words().to_vec(),
            ArrangementStrategy::Exhaustive,
            SearchBudget::default(),
        )
        .unwrap();
        // The optimum over the full binary space is the Gray code: 1 digit
        // change per step.
        assert_eq!(arranged.total_transitions, tc.len() - 1);
        assert!(arranged.sequence.is_gray());
        check_is_permutation(&arranged.sequence, tc.words()).unwrap();
    }

    #[test]
    fn exhaustive_reaches_swap_optimum_on_small_hot_code() {
        let hc = hot_code(LogicLevel::BINARY, 4).unwrap();
        let arranged = arrange_min_transitions(
            hc.words().to_vec(),
            ArrangementStrategy::Exhaustive,
            SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(arranged.total_transitions, 2 * (hc.len() - 1));
        assert!(arranged.sequence.has_uniform_distance(2));
        check_is_permutation(&arranged.sequence, hc.words()).unwrap();
    }

    #[test]
    fn greedy_never_worse_than_lexicographic() {
        let hc = hot_code(LogicLevel::BINARY, 6).unwrap();
        let arranged = arrange_min_transitions(
            hc.words().to_vec(),
            ArrangementStrategy::Greedy,
            SearchBudget::default(),
        )
        .unwrap();
        assert!(arranged.total_transitions <= hc.total_transitions());
        check_is_permutation(&arranged.sequence, hc.words()).unwrap();
    }

    #[test]
    fn two_opt_never_worse_than_greedy() {
        let hc = hot_code(LogicLevel::TERNARY, 6).unwrap();
        let greedy = arrange_min_transitions(
            hc.words().to_vec(),
            ArrangementStrategy::Greedy,
            SearchBudget::default(),
        )
        .unwrap();
        let two_opt = arrange_min_transitions(
            hc.words().to_vec(),
            ArrangementStrategy::GreedyTwoOpt,
            SearchBudget::default(),
        )
        .unwrap();
        assert!(two_opt.total_transitions <= greedy.total_transitions);
    }

    #[test]
    fn exhausted_budget_falls_back_gracefully() {
        let hc = hot_code(LogicLevel::BINARY, 8).unwrap();
        let tight = SearchBudget {
            max_nodes: 10,
            max_two_opt_sweeps: 4,
        };
        let arranged =
            arrange_min_transitions(hc.words().to_vec(), ArrangementStrategy::Exhaustive, tight)
                .unwrap();
        // With an absurdly small budget the result is still a valid
        // permutation, just not proven optimal.
        assert!(!arranged.proven_optimal);
        check_is_permutation(&arranged.sequence, hc.words()).unwrap();
    }

    #[test]
    fn permutation_check_detects_mismatch() {
        let tc = tree_code(LogicLevel::BINARY, 2).unwrap();
        let other = tree_code(LogicLevel::BINARY, 2)
            .unwrap()
            .take_prefix(3)
            .unwrap();
        assert!(check_is_permutation(&other, tc.words()).is_err());
        assert!(check_is_permutation(&tc, tc.words()).is_ok());
    }

    #[test]
    fn incompatible_words_rejected() {
        let words = vec![
            CodeWord::from_values(&[0, 1], LogicLevel::BINARY).unwrap(),
            CodeWord::from_values(&[0, 1, 1], LogicLevel::BINARY).unwrap(),
        ];
        assert!(arrange_min_transitions(
            words,
            ArrangementStrategy::Greedy,
            SearchBudget::default()
        )
        .is_err());
        assert!(arrange_min_transitions(
            vec![],
            ArrangementStrategy::Greedy,
            SearchBudget::default()
        )
        .is_err());
    }
}
