//! Multi-valued code words and the digit-level operations the paper relies
//! on: complements, reflection, transition counting and value counting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::digit::{Digit, LogicLevel};
use crate::error::{CodeError, Result};

/// A multi-valued code word: a fixed-length vector of digits over a radix.
///
/// Code words identify nanowires: digit `j` selects the threshold-voltage
/// level of doping region `j` of the nanowire (Section 4, Definition 1 of the
/// paper).
///
/// # Examples
///
/// ```
/// use nanowire_codes::{CodeWord, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let word = CodeWord::from_values(&[0, 0, 1, 0], LogicLevel::TERNARY)?;
/// // The complement subtracts from the largest word of the space: 2222 - 0010.
/// assert_eq!(word.complement().to_string(), "2212");
/// // Reflected tree codes append the complement (Section 2.3).
/// assert_eq!(word.reflected().to_string(), "00102212");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CodeWord {
    digits: Vec<Digit>,
    radix: LogicLevel,
}

impl CodeWord {
    /// Creates a code word from digits, validating each against the radix.
    ///
    /// # Errors
    ///
    /// * [`CodeError::EmptyWord`] if `digits` is empty.
    /// * [`CodeError::DigitOutOfRange`] if a digit does not fit the radix.
    pub fn new(digits: Vec<Digit>, radix: LogicLevel) -> Result<Self> {
        if digits.is_empty() {
            return Err(CodeError::EmptyWord);
        }
        for digit in &digits {
            radix.check_digit(digit.value())?;
        }
        Ok(CodeWord { digits, radix })
    }

    /// Creates a code word from raw digit values.
    ///
    /// # Errors
    ///
    /// Same as [`CodeWord::new`].
    pub fn from_values(values: &[u8], radix: LogicLevel) -> Result<Self> {
        CodeWord::new(values.iter().copied().map(Digit::new).collect(), radix)
    }

    /// Creates the all-zero word of a given length.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidLength`] when `len == 0`.
    pub fn zero(len: usize, radix: LogicLevel) -> Result<Self> {
        if len == 0 {
            return Err(CodeError::InvalidLength { length: 0 });
        }
        Ok(CodeWord {
            digits: vec![Digit::ZERO; len],
            radix,
        })
    }

    /// Builds the word whose base-`n` value is `index`, zero-padded to `len`
    /// digits, most-significant digit first.
    ///
    /// This is the natural enumeration order of tree codes.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidLength`] when `len == 0`.
    /// * [`CodeError::IndexOutOfBounds`] when `index >= radix^len`.
    pub fn from_index(index: u128, len: usize, radix: LogicLevel) -> Result<Self> {
        if len == 0 {
            return Err(CodeError::InvalidLength { length: 0 });
        }
        let space = radix.word_count(len);
        if index >= space {
            return Err(CodeError::IndexOutOfBounds {
                index: usize::try_from(index.min(u128::from(u64::MAX))).unwrap_or(usize::MAX),
                len: usize::try_from(space.min(u128::from(u64::MAX))).unwrap_or(usize::MAX),
            });
        }
        let n = u128::from(radix.radix());
        let mut remaining = index;
        let mut digits = vec![Digit::ZERO; len];
        for slot in digits.iter_mut().rev() {
            *slot = Digit::new((remaining % n) as u8);
            remaining /= n;
        }
        Ok(CodeWord { digits, radix })
    }

    /// Interprets the word as a base-`n` number, most-significant digit first.
    #[must_use]
    pub fn to_index(&self) -> u128 {
        let n = u128::from(self.radix.radix());
        self.digits
            .iter()
            .fold(0u128, |acc, d| acc * n + u128::from(d.value()))
    }

    /// The number of digits in the word.
    #[must_use]
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// Whether the word has no digits. Always `false` for constructed words;
    /// provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// The radix of the word.
    #[must_use]
    pub fn radix(&self) -> LogicLevel {
        self.radix
    }

    /// The digit at position `j` (0 = left-most / first doping region).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::IndexOutOfBounds`] when `j >= len`.
    pub fn digit(&self, j: usize) -> Result<Digit> {
        self.digits
            .get(j)
            .copied()
            .ok_or(CodeError::IndexOutOfBounds {
                index: j,
                len: self.digits.len(),
            })
    }

    /// All digits of the word as a slice.
    #[must_use]
    pub fn digits(&self) -> &[Digit] {
        &self.digits
    }

    /// All digits as raw `u8` values.
    #[must_use]
    pub fn values(&self) -> Vec<u8> {
        self.digits.iter().map(|d| d.value()).collect()
    }

    /// The complement word: the largest word of the code space minus this
    /// word, computed digit-wise as `(n-1) - d` (Section 2.3).
    #[must_use]
    pub fn complement(&self) -> CodeWord {
        let digits = self
            .digits
            .iter()
            .map(|d| Digit::new(self.radix.max_digit() - d.value()))
            .collect();
        CodeWord {
            digits,
            radix: self.radix,
        }
    }

    /// The reflected word: this word with its complement appended, doubling
    /// the length (Section 2.3). Reflection guarantees every word contains
    /// each digit value a balanced number of times across base and mirror
    /// halves, which the addressing scheme of ref. \[2\] requires.
    #[must_use]
    pub fn reflected(&self) -> CodeWord {
        let mut digits = self.digits.clone();
        digits.extend(self.complement().digits);
        CodeWord {
            digits,
            radix: self.radix,
        }
    }

    /// Splits a reflected word back into its base half.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::OddReflectedLength`] when the word length is odd,
    /// or [`CodeError::WordNotInSpace`] when the second half is not the
    /// complement of the first (i.e. the word is not a reflection).
    pub fn unreflected(&self) -> Result<CodeWord> {
        if !self.len().is_multiple_of(2) {
            return Err(CodeError::OddReflectedLength { length: self.len() });
        }
        let half = self.len() / 2;
        let base = CodeWord::new(self.digits[..half].to_vec(), self.radix)?;
        let expected = base.reflected();
        if expected == *self {
            Ok(base)
        } else {
            Err(CodeError::WordNotInSpace {
                word: self.to_string(),
            })
        }
    }

    /// Whether this word is a valid reflection (second half is the complement
    /// of the first half).
    #[must_use]
    pub fn is_reflected(&self) -> bool {
        self.unreflected().is_ok()
    }

    /// Number of digit positions in which `self` and `other` differ.
    ///
    /// This is the quantity minimised by Gray arrangements: each differing
    /// position between successive nanowire patterns costs one extra
    /// lithography/doping dose and one extra unit of accumulated variability
    /// (Propositions 4 and 5).
    ///
    /// # Errors
    ///
    /// * [`CodeError::LengthMismatch`] when the word lengths differ.
    /// * [`CodeError::RadixMismatch`] when the radices differ.
    pub fn transitions_to(&self, other: &CodeWord) -> Result<usize> {
        self.check_compatible(other)?;
        Ok(self
            .digits
            .iter()
            .zip(other.digits.iter())
            .filter(|(a, b)| a != b)
            .count())
    }

    /// The digit positions in which `self` and `other` differ.
    ///
    /// # Errors
    ///
    /// Same as [`CodeWord::transitions_to`].
    pub fn transition_positions(&self, other: &CodeWord) -> Result<Vec<usize>> {
        self.check_compatible(other)?;
        Ok(self
            .digits
            .iter()
            .zip(other.digits.iter())
            .enumerate()
            .filter_map(|(j, (a, b))| (a != b).then_some(j))
            .collect())
    }

    /// Alias of [`CodeWord::transitions_to`] using coding-theory vocabulary.
    ///
    /// # Errors
    ///
    /// Same as [`CodeWord::transitions_to`].
    pub fn hamming_distance(&self, other: &CodeWord) -> Result<usize> {
        self.transitions_to(other)
    }

    /// How many times each digit value `0..n` occurs in the word.
    #[must_use]
    pub fn value_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.radix.radix_usize()];
        for d in &self.digits {
            counts[usize::from(d.value())] += 1;
        }
        counts
    }

    /// Whether the word is a hot-code word with multiplicity `k`: every digit
    /// value occurs exactly `k` times (Section 2.3).
    #[must_use]
    pub fn is_hot(&self, k: usize) -> bool {
        self.value_counts().iter().all(|&c| c == k)
    }

    /// Returns a copy of the word with digit `j` replaced by `value`.
    ///
    /// # Errors
    ///
    /// * [`CodeError::IndexOutOfBounds`] when `j >= len`.
    /// * [`CodeError::DigitOutOfRange`] when `value` does not fit the radix.
    pub fn with_digit(&self, j: usize, value: u8) -> Result<CodeWord> {
        if j >= self.digits.len() {
            return Err(CodeError::IndexOutOfBounds {
                index: j,
                len: self.digits.len(),
            });
        }
        self.radix.check_digit(value)?;
        let mut digits = self.digits.clone();
        digits[j] = Digit::new(value);
        Ok(CodeWord {
            digits,
            radix: self.radix,
        })
    }

    fn check_compatible(&self, other: &CodeWord) -> Result<()> {
        if self.radix != other.radix {
            return Err(CodeError::RadixMismatch {
                left: self.radix.radix(),
                right: other.radix.radix(),
            });
        }
        if self.len() != other.len() {
            return Err(CodeError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for CodeWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.digits {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl AsRef<[Digit]> for CodeWord {
    fn as_ref(&self) -> &[Digit] {
        &self.digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(values: &[u8], radix: LogicLevel) -> CodeWord {
        CodeWord::from_values(values, radix).unwrap()
    }

    #[test]
    fn construction_validates_digits() {
        assert!(CodeWord::from_values(&[0, 1, 2], LogicLevel::TERNARY).is_ok());
        assert_eq!(
            CodeWord::from_values(&[0, 3], LogicLevel::TERNARY),
            Err(CodeError::DigitOutOfRange { digit: 3, radix: 3 })
        );
        assert_eq!(
            CodeWord::from_values(&[], LogicLevel::BINARY),
            Err(CodeError::EmptyWord)
        );
    }

    #[test]
    fn paper_complement_example() {
        // Section 2.3: the complement of 0010 (ternary, M=4) is 2212 and the
        // reflected word is 00102212.
        let word = w(&[0, 0, 1, 0], LogicLevel::TERNARY);
        assert_eq!(word.complement(), w(&[2, 2, 1, 2], LogicLevel::TERNARY));
        assert_eq!(word.reflected().to_string(), "00102212");
        let zero = w(&[0, 0, 0, 0], LogicLevel::TERNARY);
        assert_eq!(zero.reflected().to_string(), "00002222");
        let one = w(&[0, 0, 0, 1], LogicLevel::TERNARY);
        assert_eq!(one.reflected().to_string(), "00012221");
    }

    #[test]
    fn reflection_roundtrip() {
        let base = w(&[1, 0, 2, 1], LogicLevel::TERNARY);
        let reflected = base.reflected();
        assert!(reflected.is_reflected());
        assert_eq!(reflected.unreflected().unwrap(), base);
    }

    #[test]
    fn unreflected_rejects_non_reflections() {
        let not_reflected = w(&[0, 0, 0, 0], LogicLevel::BINARY);
        assert!(matches!(
            not_reflected.unreflected(),
            Err(CodeError::WordNotInSpace { .. })
        ));
        let odd = w(&[0, 1, 0], LogicLevel::BINARY);
        assert!(matches!(
            odd.unreflected(),
            Err(CodeError::OddReflectedLength { length: 3 })
        ));
    }

    #[test]
    fn transition_counting() {
        // Section 2.3: 0002 -> 0010 differ in two digits, 0002 -> 0012 in one.
        let a = w(&[0, 0, 0, 2], LogicLevel::TERNARY);
        let b = w(&[0, 0, 1, 0], LogicLevel::TERNARY);
        let c = w(&[0, 0, 1, 2], LogicLevel::TERNARY);
        assert_eq!(a.transitions_to(&b).unwrap(), 2);
        assert_eq!(a.transitions_to(&c).unwrap(), 1);
        assert_eq!(a.transition_positions(&b).unwrap(), vec![2, 3]);
        assert_eq!(a.transition_positions(&c).unwrap(), vec![2]);
        assert_eq!(a.hamming_distance(&a).unwrap(), 0);
    }

    #[test]
    fn transition_errors_on_incompatible_words() {
        let a = w(&[0, 1], LogicLevel::BINARY);
        let b = w(&[0, 1, 1], LogicLevel::BINARY);
        let c = w(&[0, 1], LogicLevel::TERNARY);
        assert!(matches!(
            a.transitions_to(&b),
            Err(CodeError::LengthMismatch { .. })
        ));
        assert!(matches!(
            a.transitions_to(&c),
            Err(CodeError::RadixMismatch { .. })
        ));
    }

    #[test]
    fn hot_word_detection() {
        // 001122 and 012120 belong to the (M, k) = (6, 2) ternary hot code;
        // 000121 does not (Section 2.3).
        assert!(w(&[0, 0, 1, 1, 2, 2], LogicLevel::TERNARY).is_hot(2));
        assert!(w(&[0, 1, 2, 1, 2, 0], LogicLevel::TERNARY).is_hot(2));
        assert!(!w(&[0, 0, 0, 1, 2, 1], LogicLevel::TERNARY).is_hot(2));
    }

    #[test]
    fn value_counts() {
        let word = w(&[0, 1, 1, 2, 2, 2], LogicLevel::TERNARY);
        assert_eq!(word.value_counts(), vec![1, 2, 3]);
    }

    #[test]
    fn index_roundtrip() {
        let radix = LogicLevel::TERNARY;
        for index in 0..81u128 {
            let word = CodeWord::from_index(index, 4, radix).unwrap();
            assert_eq!(word.to_index(), index);
            assert_eq!(word.len(), 4);
        }
        assert!(CodeWord::from_index(81, 4, radix).is_err());
    }

    #[test]
    fn from_index_is_lexicographic() {
        let radix = LogicLevel::BINARY;
        let words: Vec<String> = (0..4)
            .map(|i| CodeWord::from_index(i, 2, radix).unwrap().to_string())
            .collect();
        assert_eq!(words, vec!["00", "01", "10", "11"]);
    }

    #[test]
    fn with_digit_replaces_one_position() {
        let word = w(&[0, 0, 0], LogicLevel::TERNARY);
        let changed = word.with_digit(1, 2).unwrap();
        assert_eq!(changed.to_string(), "020");
        assert!(word.with_digit(5, 1).is_err());
        assert!(word.with_digit(0, 3).is_err());
    }

    #[test]
    fn display_concatenates_digits() {
        assert_eq!(w(&[0, 1, 2, 1], LogicLevel::TERNARY).to_string(), "0121");
    }

    #[test]
    fn zero_word() {
        let zero = CodeWord::zero(5, LogicLevel::BINARY).unwrap();
        assert_eq!(zero.to_string(), "00000");
        assert!(CodeWord::zero(0, LogicLevel::BINARY).is_err());
    }

    #[test]
    fn ordering_is_lexicographic_on_digits() {
        let a = w(&[0, 1], LogicLevel::TERNARY);
        let b = w(&[0, 2], LogicLevel::TERNARY);
        let c = w(&[1, 0], LogicLevel::TERNARY);
        assert!(a < b);
        assert!(b < c);
    }
}
