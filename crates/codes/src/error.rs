//! Error types for the `nanowire-codes` crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating code words, code
/// spaces and arrangements.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The requested logic radix is outside the supported range `2..=16`.
    InvalidRadix {
        /// The offending radix.
        radix: u8,
    },
    /// A code word was constructed with no digits.
    EmptyWord,
    /// A digit value is not representable in the given radix.
    DigitOutOfRange {
        /// The offending digit value.
        digit: u8,
        /// The radix the digit had to fit in.
        radix: u8,
    },
    /// Two code words that must have the same length (and radix) do not.
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
    /// Two code words that must share a radix do not.
    RadixMismatch {
        /// Radix of the left-hand operand.
        left: u8,
        /// Radix of the right-hand operand.
        right: u8,
    },
    /// A hot code was requested whose word length is not a multiple of the
    /// radix (`M = k · n` is required).
    InvalidHotLength {
        /// Requested word length `M`.
        length: usize,
        /// Radix `n`.
        radix: u8,
    },
    /// A tree-family code was requested with an odd reflected length.
    OddReflectedLength {
        /// Requested (reflected) code length.
        length: usize,
    },
    /// A code word length of zero (or otherwise unusable) was requested.
    InvalidLength {
        /// Requested length.
        length: usize,
    },
    /// The requested code space would be too large to enumerate.
    SpaceTooLarge {
        /// Number of words the space would contain.
        words: u128,
        /// Enumeration limit.
        limit: u128,
    },
    /// No arrangement satisfying the requested constraints was found within
    /// the search budget.
    ArrangementNotFound {
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
    /// A word was expected to belong to a code space but does not.
    WordNotInSpace {
        /// Display form of the offending word.
        word: String,
    },
    /// A sequence operation required a non-empty sequence.
    EmptySequence,
    /// An index into a code word or sequence was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidRadix { radix } => {
                write!(f, "invalid logic radix {radix}, supported range is 2..=16")
            }
            CodeError::EmptyWord => write!(f, "code word must contain at least one digit"),
            CodeError::DigitOutOfRange { digit, radix } => {
                write!(f, "digit {digit} is out of range for radix {radix}")
            }
            CodeError::LengthMismatch { left, right } => {
                write!(f, "code word lengths differ: {left} vs {right}")
            }
            CodeError::RadixMismatch { left, right } => {
                write!(f, "code word radices differ: {left} vs {right}")
            }
            CodeError::InvalidHotLength { length, radix } => write!(
                f,
                "hot code length {length} is not a positive multiple of radix {radix}"
            ),
            CodeError::OddReflectedLength { length } => write!(
                f,
                "reflected code length {length} must be an even number of digits"
            ),
            CodeError::InvalidLength { length } => {
                write!(f, "invalid code word length {length}")
            }
            CodeError::SpaceTooLarge { words, limit } => write!(
                f,
                "code space with {words} words exceeds the enumeration limit of {limit}"
            ),
            CodeError::ArrangementNotFound { reason } => {
                write!(f, "no code arrangement found: {reason}")
            }
            CodeError::WordNotInSpace { word } => {
                write!(f, "code word {word} does not belong to the code space")
            }
            CodeError::EmptySequence => write!(f, "code sequence must contain at least one word"),
            CodeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl Error for CodeError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples = vec![
            CodeError::InvalidRadix { radix: 1 },
            CodeError::EmptyWord,
            CodeError::DigitOutOfRange { digit: 7, radix: 3 },
            CodeError::LengthMismatch { left: 3, right: 4 },
            CodeError::RadixMismatch { left: 2, right: 3 },
            CodeError::InvalidHotLength {
                length: 5,
                radix: 2,
            },
            CodeError::OddReflectedLength { length: 7 },
            CodeError::InvalidLength { length: 0 },
            CodeError::SpaceTooLarge {
                words: 1 << 40,
                limit: 1 << 20,
            },
            CodeError::ArrangementNotFound {
                reason: "budget exhausted".to_string(),
            },
            CodeError::WordNotInSpace {
                word: "0120".to_string(),
            },
            CodeError::EmptySequence,
            CodeError::IndexOutOfBounds { index: 9, len: 3 },
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
            let first = text.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<CodeError>();
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
    }
}
