//! Ordered sequences of code words.
//!
//! A [`CodeSequence`] is the object the decoder design actually consumes: the
//! `i`-th word of the sequence becomes the pattern of the `i`-th nanowire of
//! a half cave (row `i` of the pattern matrix `P`). All the cost functions of
//! the paper — fabrication complexity `Φ` and variability `‖Σ‖₁` — are
//! monotone in the number of digit transitions between successive words of
//! this sequence, which is why the sequence (not just the set) matters.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::digit::LogicLevel;
use crate::error::{CodeError, Result};
use crate::word::CodeWord;

/// An ordered sequence of equal-length code words over a common radix.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{CodeSequence, CodeWord, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let words = vec![
///     CodeWord::from_values(&[0, 0], LogicLevel::BINARY)?,
///     CodeWord::from_values(&[0, 1], LogicLevel::BINARY)?,
///     CodeWord::from_values(&[1, 1], LogicLevel::BINARY)?,
/// ];
/// let seq = CodeSequence::new(words)?;
/// assert_eq!(seq.total_transitions(), 2);
/// assert!(seq.is_gray());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeSequence {
    words: Vec<CodeWord>,
    radix: LogicLevel,
    word_length: usize,
}

impl CodeSequence {
    /// Creates a sequence from words, validating that all words share the
    /// same length and radix.
    ///
    /// # Errors
    ///
    /// * [`CodeError::EmptySequence`] if `words` is empty.
    /// * [`CodeError::LengthMismatch`] / [`CodeError::RadixMismatch`] if the
    ///   words are not mutually compatible.
    pub fn new(words: Vec<CodeWord>) -> Result<Self> {
        let first = words.first().ok_or(CodeError::EmptySequence)?;
        let radix = first.radix();
        let word_length = first.len();
        for word in &words {
            if word.radix() != radix {
                return Err(CodeError::RadixMismatch {
                    left: radix.radix(),
                    right: word.radix().radix(),
                });
            }
            if word.len() != word_length {
                return Err(CodeError::LengthMismatch {
                    left: word_length,
                    right: word.len(),
                });
            }
        }
        Ok(CodeSequence {
            words,
            radix,
            word_length,
        })
    }

    /// Number of words in the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the sequence contains no words (never true for a constructed
    /// sequence).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The common radix of all words.
    #[must_use]
    pub fn radix(&self) -> LogicLevel {
        self.radix
    }

    /// The common word length (number of digits = number of doping regions M).
    #[must_use]
    pub fn word_length(&self) -> usize {
        self.word_length
    }

    /// The words of the sequence, in order.
    #[must_use]
    pub fn words(&self) -> &[CodeWord] {
        &self.words
    }

    /// Iterates over the words in order.
    pub fn iter(&self) -> std::slice::Iter<'_, CodeWord> {
        self.words.iter()
    }

    /// The word at position `i`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::IndexOutOfBounds`] when `i >= len`.
    pub fn word(&self, i: usize) -> Result<&CodeWord> {
        self.words.get(i).ok_or(CodeError::IndexOutOfBounds {
            index: i,
            len: self.words.len(),
        })
    }

    /// Total number of digit transitions between successive words.
    ///
    /// This is the quantity the Gray arrangement minimises (Propositions 4
    /// and 5); both `Φ` and `‖Σ‖₁` grow monotonically with it.
    #[must_use]
    pub fn total_transitions(&self) -> usize {
        self.words
            .windows(2)
            .map(|pair| pair[0].transitions_to(&pair[1]).unwrap_or(0))
            .sum()
    }

    /// Number of transitions of each digit position over the whole sequence.
    ///
    /// Element `j` counts how many successive word pairs differ at digit `j`.
    /// Balanced Gray codes equalise this vector, which spreads the
    /// accumulated variability evenly over the doping regions (Fig. 6 e/f).
    #[must_use]
    pub fn transitions_per_digit(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.word_length];
        for pair in self.words.windows(2) {
            if let Ok(positions) = pair[0].transition_positions(&pair[1]) {
                for j in positions {
                    counts[j] += 1;
                }
            }
        }
        counts
    }

    /// The largest per-digit transition count (see
    /// [`CodeSequence::transitions_per_digit`]).
    #[must_use]
    pub fn max_transitions_per_digit(&self) -> usize {
        self.transitions_per_digit().into_iter().max().unwrap_or(0)
    }

    /// Transition counts between each pair of successive words.
    #[must_use]
    pub fn transition_profile(&self) -> Vec<usize> {
        self.words
            .windows(2)
            .map(|pair| pair[0].transitions_to(&pair[1]).unwrap_or(0))
            .collect()
    }

    /// Whether every pair of successive words differs in exactly one digit
    /// (the Gray property, Section 2.3).
    #[must_use]
    pub fn is_gray(&self) -> bool {
        self.words
            .windows(2)
            .all(|pair| pair[0].transitions_to(&pair[1]) == Ok(1))
    }

    /// Whether every pair of successive words differs in exactly `d` digits.
    ///
    /// Arranged hot codes achieve `d = 2`, the minimum possible for
    /// constant-weight words (Section 5.2).
    #[must_use]
    pub fn has_uniform_distance(&self, d: usize) -> bool {
        self.words
            .windows(2)
            .all(|pair| pair[0].transitions_to(&pair[1]) == Ok(d))
    }

    /// Whether all words of the sequence are distinct.
    #[must_use]
    pub fn all_words_distinct(&self) -> bool {
        // mspt-analyze: allow(determinism-unsafe-calls) insert-only membership test; the set is never iterated
        let mut seen = std::collections::HashSet::new();
        self.words.iter().all(|w| seen.insert(w.clone()))
    }

    /// Whether no digit changes more than `limit` times over the sequence —
    /// the balanced-Gray-code constraint of the paper (Section 2.3, limit 2
    /// in the paper's examples over short sequences).
    #[must_use]
    pub fn respects_change_limit(&self, limit: usize) -> bool {
        self.transitions_per_digit().iter().all(|&c| c <= limit)
    }

    /// A new sequence in which every word is replaced by its reflection
    /// (word ‖ complement), doubling the word length.
    #[must_use]
    pub fn reflected(&self) -> CodeSequence {
        let words = self.words.iter().map(CodeWord::reflected).collect();
        CodeSequence {
            words,
            radix: self.radix,
            word_length: self.word_length * 2,
        }
    }

    /// The first `count` words of the sequence, wrapping around cyclically if
    /// `count > len`.
    ///
    /// This models how a half cave with more nanowires than the code space
    /// re-uses the code across contact groups: group `g` sees words
    /// `g·Ω .. (g+1)·Ω` of the cyclic extension.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidLength`] when `count == 0`.
    pub fn take_cyclic(&self, count: usize) -> Result<CodeSequence> {
        if count == 0 {
            return Err(CodeError::InvalidLength { length: 0 });
        }
        let words = (0..count)
            .map(|i| self.words[i % self.words.len()].clone())
            .collect();
        Ok(CodeSequence {
            words,
            radix: self.radix,
            word_length: self.word_length,
        })
    }

    /// The first `count` words of the sequence without wrapping.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidLength`] when `count == 0`.
    /// * [`CodeError::IndexOutOfBounds`] when `count > len`.
    pub fn take_prefix(&self, count: usize) -> Result<CodeSequence> {
        if count == 0 {
            return Err(CodeError::InvalidLength { length: 0 });
        }
        if count > self.words.len() {
            return Err(CodeError::IndexOutOfBounds {
                index: count,
                len: self.words.len(),
            });
        }
        CodeSequence::new(self.words[..count].to_vec())
    }

    /// A new sequence with the words in reversed order.
    #[must_use]
    pub fn reversed(&self) -> CodeSequence {
        let mut words = self.words.clone();
        words.reverse();
        CodeSequence {
            words,
            radix: self.radix,
            word_length: self.word_length,
        }
    }

    /// Consumes the sequence and returns its words.
    #[must_use]
    pub fn into_words(self) -> Vec<CodeWord> {
        self.words
    }
}

impl Index<usize> for CodeSequence {
    type Output = CodeWord;

    fn index(&self, index: usize) -> &Self::Output {
        &self.words[index]
    }
}

impl<'a> IntoIterator for &'a CodeSequence {
    type Item = &'a CodeWord;
    type IntoIter = std::slice::Iter<'a, CodeWord>;

    fn into_iter(self) -> Self::IntoIter {
        self.words.iter()
    }
}

impl IntoIterator for CodeSequence {
    type Item = CodeWord;
    type IntoIter = std::vec::IntoIter<CodeWord>;

    fn into_iter(self) -> Self::IntoIter {
        self.words.into_iter()
    }
}

impl fmt::Display for CodeSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.words.iter().map(ToString::to_string).collect();
        write!(f, "{}", rendered.join(" => "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: &[&[u8]], radix: LogicLevel) -> CodeSequence {
        CodeSequence::new(
            rows.iter()
                .map(|r| CodeWord::from_values(r, radix).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_compatibility() {
        let ok = CodeSequence::new(vec![
            CodeWord::from_values(&[0, 1], LogicLevel::BINARY).unwrap(),
            CodeWord::from_values(&[1, 1], LogicLevel::BINARY).unwrap(),
        ]);
        assert!(ok.is_ok());

        let bad_len = CodeSequence::new(vec![
            CodeWord::from_values(&[0, 1], LogicLevel::BINARY).unwrap(),
            CodeWord::from_values(&[1, 1, 0], LogicLevel::BINARY).unwrap(),
        ]);
        assert!(matches!(bad_len, Err(CodeError::LengthMismatch { .. })));

        let bad_radix = CodeSequence::new(vec![
            CodeWord::from_values(&[0, 1], LogicLevel::BINARY).unwrap(),
            CodeWord::from_values(&[2, 1], LogicLevel::TERNARY).unwrap(),
        ]);
        assert!(matches!(bad_radix, Err(CodeError::RadixMismatch { .. })));

        assert!(matches!(
            CodeSequence::new(vec![]),
            Err(CodeError::EmptySequence)
        ));
    }

    #[test]
    fn paper_gray_sequence_example() {
        // Section 2.3: 0000 => 0001 => 0002 => 0010 is not a Gray sequence
        // (last step changes two digits); 0000 => 0001 => 0002 => 0012 is.
        let not_gray = seq(
            &[&[0, 0, 0, 0], &[0, 0, 0, 1], &[0, 0, 0, 2], &[0, 0, 1, 0]],
            LogicLevel::TERNARY,
        );
        assert!(!not_gray.is_gray());
        let gray = seq(
            &[&[0, 0, 0, 0], &[0, 0, 0, 1], &[0, 0, 0, 2], &[0, 0, 1, 2]],
            LogicLevel::TERNARY,
        );
        assert!(gray.is_gray());
        // In the Gray sequence the first two digits never change, the third
        // changes once and the fourth twice -> respects the limit of 2.
        assert_eq!(gray.transitions_per_digit(), vec![0, 0, 1, 2]);
        assert!(gray.respects_change_limit(2));
        assert!(!gray.respects_change_limit(1));
    }

    #[test]
    fn transition_totals() {
        let s = seq(&[&[0, 0], &[0, 1], &[1, 1], &[0, 0]], LogicLevel::BINARY);
        assert_eq!(s.total_transitions(), 1 + 1 + 2);
        assert_eq!(s.transition_profile(), vec![1, 1, 2]);
        assert_eq!(s.transitions_per_digit(), vec![2, 2]);
        assert_eq!(s.max_transitions_per_digit(), 2);
    }

    #[test]
    fn uniform_distance_detection() {
        let swap = seq(
            &[&[0, 0, 1, 1], &[0, 1, 0, 1], &[1, 1, 0, 0]],
            LogicLevel::BINARY,
        );
        assert!(swap.has_uniform_distance(2));
        assert!(!swap.has_uniform_distance(1));
    }

    #[test]
    fn cyclic_and_prefix_selection() {
        let s = seq(&[&[0, 0], &[0, 1], &[1, 1]], LogicLevel::BINARY);
        let cyc = s.take_cyclic(7).unwrap();
        assert_eq!(cyc.len(), 7);
        assert_eq!(cyc[3], s[0]);
        assert_eq!(cyc[6], s[0]);
        let prefix = s.take_prefix(2).unwrap();
        assert_eq!(prefix.len(), 2);
        assert!(s.take_prefix(4).is_err());
        assert!(s.take_prefix(0).is_err());
        assert!(s.take_cyclic(0).is_err());
    }

    #[test]
    fn reflection_doubles_word_length() {
        let s = seq(&[&[0, 0], &[0, 1]], LogicLevel::BINARY);
        let r = s.reflected();
        assert_eq!(r.word_length(), 4);
        assert_eq!(r[0].to_string(), "0011");
        assert_eq!(r[1].to_string(), "0110");
        // Reflection doubles the number of digit changes per step.
        assert_eq!(r.total_transitions(), 2 * s.total_transitions());
    }

    #[test]
    fn distinctness_and_reversal() {
        let s = seq(&[&[0, 0], &[0, 1], &[0, 0]], LogicLevel::BINARY);
        assert!(!s.all_words_distinct());
        let d = seq(&[&[0, 0], &[0, 1], &[1, 1]], LogicLevel::BINARY);
        assert!(d.all_words_distinct());
        let rev = d.reversed();
        assert_eq!(rev[0], d[2]);
        assert_eq!(rev.total_transitions(), d.total_transitions());
    }

    #[test]
    fn iteration_and_display() {
        let s = seq(&[&[0, 0], &[0, 1]], LogicLevel::BINARY);
        assert_eq!(s.iter().count(), 2);
        assert_eq!((&s).into_iter().count(), 2);
        assert_eq!(s.clone().into_iter().count(), 2);
        assert_eq!(s.to_string(), "00 => 01");
        assert_eq!(s.clone().into_words().len(), 2);
    }

    #[test]
    fn word_accessor_bounds() {
        let s = seq(&[&[0, 0]], LogicLevel::BINARY);
        assert!(s.word(0).is_ok());
        assert!(matches!(
            s.word(1),
            Err(CodeError::IndexOutOfBounds { index: 1, len: 1 })
        ));
    }
}
