//! # nanowire-codes
//!
//! Multi-valued code spaces and arrangements for nanowire-decoder design,
//! reproducing the encoding machinery of *"Decoding Nanowire Arrays
//! Fabricated with the Multi-Spacer Patterning Technique"* (Ben Jamaa,
//! Leblebici, De Micheli — DAC 2009).
//!
//! A nanowire in an MSPT crossbar is identified by a *code word*: one digit
//! per doping region, each digit selecting a threshold-voltage level out of
//! `n` (the logic radix). The paper evaluates five code families:
//!
//! | Family | Constructor | Property |
//! |---|---|---|
//! | Tree code (TC) | [`reflected_tree_code`] | full `n^(M/2)` space, lexicographic, reflected |
//! | Gray code (GC) | [`reflected_gray_code`] | one digit change per step (two after reflection) |
//! | Balanced Gray code (BGC) | [`reflected_balanced_gray_code`] | Gray + per-digit transition counts balanced |
//! | Hot code (HC) | [`hot_code`] | every value appears exactly `k` times, `M = k·n` |
//! | Arranged hot code (AHC) | [`arranged_hot_code`] | hot code ordered with two digit changes per step |
//!
//! The ordering of the code words matters because in the MSPT flow every
//! doping step applied to nanowire `i` also hits every nanowire defined
//! before it: both the fabrication complexity `Φ` and the accumulated
//! variability `‖Σ‖₁` grow with the number of digit *transitions* between
//! successive words ([`CodeSequence::total_transitions`]). The Gray-style
//! arrangements minimise exactly that quantity (Propositions 4 and 5 of the
//! paper).
//!
//! # Examples
//!
//! ```
//! use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Compare the transition cost of the tree code and the Gray code over
//! // the same binary space of length M = 8.
//! let tree = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8)?.generate()?;
//! let gray = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8)?.generate()?;
//! assert!(gray.total_transitions() < tree.total_transitions());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arranged;
mod arrangement;
mod balanced;
mod digit;
mod error;
mod gray;
mod hot;
mod sequence;
mod space;
mod stats;
mod tree;
mod word;

pub use arranged::{arranged_hot_code, hot_code_pair, ArrangedHotBudget};
pub use arrangement::{
    arrange_min_transitions, check_is_permutation, Arrangement, ArrangementStrategy, SearchBudget,
};
pub use balanced::{
    balance_report, balanced_gray_code, reflected_balanced_gray_code, BalanceBudget, BalanceReport,
};
pub use digit::{Digit, LogicLevel, MAX_RADIX, MIN_RADIX};
pub use error::{CodeError, Result};
pub use gray::{gray_code, is_complete_gray_arrangement, reflected_gray_code};
pub use hot::{hot_code, hot_space_size, HotCodeParams};
pub use sequence::CodeSequence;
pub use space::{CodeBudgets, CodeKind, CodeSpec};
pub use stats::{compare_arrangements, sequence_stats, ArrangementComparison, SequenceStats};
pub use tree::{
    base_length_of, reflected_tree_code, tree_code, tree_space_size, MAX_ENUMERATED_WORDS,
};
pub use word::CodeWord;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeWord>();
        assert_send_sync::<CodeSequence>();
        assert_send_sync::<CodeSpec>();
        assert_send_sync::<CodeError>();
    }
}
