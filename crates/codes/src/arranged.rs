//! Arranged hot codes (AHC): hot-code spaces ordered so that successive words
//! differ in the minimum possible number of digits — two, since the
//! composition of a hot word is fixed (Section 5.2).
//!
//! For binary hot codes the arrangement is built constructively with the
//! *revolving-door* combination Gray code; for higher radices a backtracking
//! search over the distance-2 graph is used, with a greedy fallback.

use serde::{Deserialize, Serialize};

use crate::arrangement::{arrange_min_transitions, ArrangementStrategy, SearchBudget};
use crate::digit::{Digit, LogicLevel};
#[cfg(test)]
use crate::error::CodeError;
use crate::error::Result;
use crate::hot::{hot_code, HotCodeParams};
use crate::sequence::CodeSequence;
use crate::word::CodeWord;

/// Search limits for the arranged-hot-code construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrangedHotBudget {
    /// Maximum number of DFS nodes expanded while searching for a
    /// distance-2 Hamiltonian path (non-binary radices only).
    pub max_nodes: u64,
    /// Budget of the greedy/2-opt fallback.
    pub fallback: SearchBudget,
}

impl Default for ArrangedHotBudget {
    fn default() -> Self {
        ArrangedHotBudget {
            max_nodes: 4_000_000,
            fallback: SearchBudget::default(),
        }
    }
}

/// Generates the arranged hot code for a word length and radix: the hot-code
/// space ordered with (whenever possible) exactly two digit transitions
/// between successive words.
///
/// # Errors
///
/// * [`CodeError::InvalidHotLength`](crate::CodeError::InvalidHotLength) when the length is not a positive
///   multiple of the radix.
/// * [`CodeError::SpaceTooLarge`](crate::CodeError::SpaceTooLarge) when the space exceeds the enumeration
///   limit.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{arranged_hot_code, ArrangedHotBudget, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ahc = arranged_hot_code(LogicLevel::BINARY, 6, ArrangedHotBudget::default())?;
/// assert_eq!(ahc.len(), 20);
/// assert!(ahc.has_uniform_distance(2));
/// # Ok(())
/// # }
/// ```
pub fn arranged_hot_code(
    radix: LogicLevel,
    word_length: usize,
    budget: ArrangedHotBudget,
) -> Result<CodeSequence> {
    let params = HotCodeParams::for_length(word_length, radix)?;
    if radix == LogicLevel::BINARY {
        let sequence = revolving_door_code(params)?;
        if sequence.has_uniform_distance(2) {
            return Ok(sequence);
        }
        // The constructive property failed (should not happen); fall through
        // to the search-based arrangement below.
    }

    let space = hot_code(radix, word_length)?;
    if let Some(sequence) = search_distance_two_path(&space, budget.max_nodes)? {
        return Ok(sequence);
    }
    // Fallback: best-effort minimal-transition arrangement.
    Ok(arrange_min_transitions(
        space.into_words(),
        ArrangementStrategy::GreedyTwoOpt,
        budget.fallback,
    )?
    .sequence)
}

/// The revolving-door (Nijenhuis–Wilf) Gray code for `k`-combinations of
/// `m` positions, rendered as binary hot-code words: successive words swap
/// exactly one `1` with one `0`, i.e. differ in exactly two digits.
fn revolving_door_code(params: HotCodeParams) -> Result<CodeSequence> {
    let m = params.word_length;
    let k = params.multiplicity;

    // Recursive construction over index sets.
    fn combinations(m: usize, k: usize) -> Vec<Vec<usize>> {
        if k == 0 {
            return vec![vec![]];
        }
        if k == m {
            return vec![(0..m).collect()];
        }
        // A(m, k) = A(m-1, k) followed by reverse(A(m-1, k-1)) each ∪ {m-1}.
        let mut result = combinations(m - 1, k);
        let mut tail = combinations(m - 1, k - 1);
        tail.reverse();
        for set in tail {
            let mut set = set;
            set.push(m - 1);
            result.push(set);
        }
        result
    }

    let sets = combinations(m, k);
    let words: Result<Vec<CodeWord>> = sets
        .into_iter()
        .map(|set| {
            let mut values = vec![Digit::new(0); m];
            for index in set {
                values[index] = Digit::new(1);
            }
            CodeWord::new(values, LogicLevel::BINARY)
        })
        .collect();
    CodeSequence::new(words?)
}

/// Backtracking search for a Hamiltonian path of the distance-2 graph of a
/// hot-code space. Returns `Ok(None)` when the node budget is exhausted.
fn search_distance_two_path(space: &CodeSequence, max_nodes: u64) -> Result<Option<CodeSequence>> {
    let words = space.words();
    let count = words.len();
    if count <= 1 {
        return Ok(Some(space.clone()));
    }

    // Adjacency lists of the distance-2 graph.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); count];
    for i in 0..count {
        for j in (i + 1)..count {
            if words[i].transitions_to(&words[j])? == 2 {
                adjacency[i].push(j);
                adjacency[j].push(i);
            }
        }
    }

    struct Ctx<'a> {
        adjacency: &'a [Vec<usize>],
        count: usize,
        max_nodes: u64,
    }

    fn dfs(ctx: &Ctx<'_>, visited: &mut Vec<bool>, path: &mut Vec<usize>, nodes: &mut u64) -> bool {
        if path.len() == ctx.count {
            return true;
        }
        *nodes += 1;
        if *nodes > ctx.max_nodes {
            return false;
        }
        let current = *path.last().expect("non-empty path");
        // Prefer neighbours with few remaining options (Warnsdorff-style), a
        // strong heuristic for Hamiltonian paths on dense structured graphs.
        let mut candidates: Vec<(usize, usize)> = ctx.adjacency[current]
            .iter()
            .copied()
            .filter(|&next| !visited[next])
            .map(|next| {
                let remaining = ctx.adjacency[next].iter().filter(|&&n| !visited[n]).count();
                (remaining, next)
            })
            .collect();
        candidates.sort_unstable();
        for (_, next) in candidates {
            visited[next] = true;
            path.push(next);
            if dfs(ctx, visited, path, nodes) {
                return true;
            }
            path.pop();
            visited[next] = false;
            if *nodes > ctx.max_nodes {
                return false;
            }
        }
        false
    }

    let ctx = Ctx {
        adjacency: &adjacency,
        count,
        max_nodes,
    };
    let mut nodes = 0u64;
    for start in 0..count {
        let mut visited = vec![false; count];
        visited[start] = true;
        let mut path = vec![start];
        if dfs(&ctx, &mut visited, &mut path, &mut nodes) {
            let sequence: Result<Vec<CodeWord>> =
                path.into_iter().map(|i| Ok(words[i].clone())).collect();
            return Ok(Some(CodeSequence::new(sequence?)?));
        }
        if nodes > max_nodes {
            return Ok(None);
        }
    }
    Ok(None)
}

/// Convenience wrapper returning both the lexicographic hot code and its
/// arranged version, for side-by-side comparisons (Figs. 7 and 8 compare HC
/// against AHC at equal code length).
///
/// # Errors
///
/// Same as [`hot_code`] and [`arranged_hot_code`].
pub fn hot_code_pair(
    radix: LogicLevel,
    word_length: usize,
    budget: ArrangedHotBudget,
) -> Result<(CodeSequence, CodeSequence)> {
    Ok((
        hot_code(radix, word_length)?,
        arranged_hot_code(radix, word_length, budget)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::check_is_permutation;

    #[test]
    fn binary_arranged_hot_codes_have_distance_two() {
        for length in [4usize, 6, 8, 10] {
            let ahc = arranged_hot_code(LogicLevel::BINARY, length, ArrangedHotBudget::default())
                .unwrap();
            assert!(ahc.has_uniform_distance(2), "length {length}");
            assert!(ahc.all_words_distinct());
            let hc = hot_code(LogicLevel::BINARY, length).unwrap();
            assert_eq!(ahc.len(), hc.len());
            check_is_permutation(&ahc, hc.words()).unwrap();
        }
    }

    #[test]
    fn arranged_hot_code_never_has_more_transitions_than_lexicographic() {
        for (radix, length) in [
            (LogicLevel::BINARY, 6),
            (LogicLevel::BINARY, 8),
            (LogicLevel::TERNARY, 6),
            (LogicLevel::QUATERNARY, 4),
        ] {
            let (hc, ahc) = hot_code_pair(radix, length, ArrangedHotBudget::default()).unwrap();
            assert!(
                ahc.total_transitions() <= hc.total_transitions(),
                "{radix} length {length}"
            );
        }
    }

    #[test]
    fn ternary_arranged_hot_code_reaches_distance_two() {
        // The ternary (6, 2) hot code has 90 words; the distance-2 graph is
        // dense enough for the search to find a revolving-door-style path.
        let ahc = arranged_hot_code(LogicLevel::TERNARY, 6, ArrangedHotBudget::default()).unwrap();
        assert!(ahc.has_uniform_distance(2));
        assert_eq!(ahc.len(), 90);
    }

    #[test]
    fn quaternary_permutation_code_is_arranged() {
        // Quaternary (4, 1): 24 permutations of 0123; adjacent transpositions
        // give distance 2.
        let ahc =
            arranged_hot_code(LogicLevel::QUATERNARY, 4, ArrangedHotBudget::default()).unwrap();
        assert!(ahc.has_uniform_distance(2));
        assert_eq!(ahc.len(), 24);
    }

    #[test]
    fn exhausted_budget_still_returns_valid_permutation() {
        let budget = ArrangedHotBudget {
            max_nodes: 1,
            fallback: SearchBudget {
                max_nodes: 1,
                max_two_opt_sweeps: 1,
            },
        };
        let ahc = arranged_hot_code(LogicLevel::TERNARY, 6, budget).unwrap();
        let hc = hot_code(LogicLevel::TERNARY, 6).unwrap();
        check_is_permutation(&ahc, hc.words()).unwrap();
    }

    #[test]
    fn invalid_lengths_are_rejected() {
        assert!(matches!(
            arranged_hot_code(LogicLevel::BINARY, 5, ArrangedHotBudget::default()),
            Err(CodeError::InvalidHotLength { .. })
        ));
    }

    #[test]
    fn revolving_door_starts_with_lowest_combination() {
        let params = HotCodeParams::for_length(6, LogicLevel::BINARY).unwrap();
        let seq = revolving_door_code(params).unwrap();
        // First word has the k lowest positions set.
        assert_eq!(seq[0].to_string(), "111000");
    }
}
