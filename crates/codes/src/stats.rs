//! Sequence statistics: the digit-activity and transition profiles behind the
//! paper's Fig. 6 discussion ("longer codes have less digit transitions and
//! help reduce the average variability") and behind the balanced-Gray-code
//! objective.

use serde::{Deserialize, Serialize};

use crate::sequence::CodeSequence;

/// Transition statistics of an ordered code sequence.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{reflected_gray_code, sequence_stats, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gc = reflected_gray_code(LogicLevel::BINARY, 8)?;
/// let stats = sequence_stats(&gc);
/// // Reflected Gray codes change exactly two digits per step.
/// assert_eq!(stats.min_step_transitions, 2);
/// assert_eq!(stats.max_step_transitions, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceStats {
    /// Number of words in the sequence.
    pub word_count: usize,
    /// Number of digits per word.
    pub word_length: usize,
    /// Total number of digit transitions over the sequence.
    pub total_transitions: usize,
    /// Mean number of digit transitions per step.
    pub mean_step_transitions: f64,
    /// Smallest number of digit transitions of any step.
    pub min_step_transitions: usize,
    /// Largest number of digit transitions of any step.
    pub max_step_transitions: usize,
    /// Transition count of every digit position ("digit activity").
    pub per_digit_transitions: Vec<usize>,
    /// Mean transitions per digit position.
    pub mean_digit_activity: f64,
    /// Spread (max − min) of the per-digit transition counts; zero for a
    /// perfectly balanced sequence.
    pub digit_activity_spread: usize,
    /// Histogram of step transition counts: entry `d` counts the steps that
    /// change exactly `d` digits.
    pub step_histogram: Vec<usize>,
}

/// Computes the transition statistics of a sequence.
#[must_use]
pub fn sequence_stats(sequence: &CodeSequence) -> SequenceStats {
    let profile = sequence.transition_profile();
    let per_digit = sequence.transitions_per_digit();
    let total: usize = profile.iter().sum();
    let steps = profile.len().max(1);
    let min_step = profile.iter().copied().min().unwrap_or(0);
    let max_step = profile.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0usize; sequence.word_length() + 1];
    for &d in &profile {
        histogram[d] += 1;
    }
    let digit_min = per_digit.iter().copied().min().unwrap_or(0);
    let digit_max = per_digit.iter().copied().max().unwrap_or(0);
    SequenceStats {
        word_count: sequence.len(),
        word_length: sequence.word_length(),
        total_transitions: total,
        mean_step_transitions: total as f64 / steps as f64,
        min_step_transitions: min_step,
        max_step_transitions: max_step,
        mean_digit_activity: total as f64 / sequence.word_length() as f64,
        digit_activity_spread: digit_max - digit_min,
        per_digit_transitions: per_digit,
        step_histogram: histogram,
    }
}

/// Compares two arrangements of (possibly different) code spaces by the
/// statistics that drive the decoder costs: total transitions (→ `Φ`, `‖Σ‖₁`)
/// and digit-activity spread (→ variability balance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrangementComparison {
    /// Statistics of the baseline arrangement.
    pub baseline: SequenceStats,
    /// Statistics of the optimised arrangement.
    pub optimised: SequenceStats,
    /// Relative reduction of total transitions (0.0 when the baseline has
    /// none or the optimised arrangement is not better).
    pub transition_reduction: f64,
}

/// Builds an [`ArrangementComparison`] between a baseline and an optimised
/// arrangement.
#[must_use]
pub fn compare_arrangements(
    baseline: &CodeSequence,
    optimised: &CodeSequence,
) -> ArrangementComparison {
    let baseline_stats = sequence_stats(baseline);
    let optimised_stats = sequence_stats(optimised);
    let transition_reduction = if baseline_stats.total_transitions == 0
        || optimised_stats.total_transitions >= baseline_stats.total_transitions
    {
        0.0
    } else {
        (baseline_stats.total_transitions - optimised_stats.total_transitions) as f64
            / baseline_stats.total_transitions as f64
    };
    ArrangementComparison {
        baseline: baseline_stats,
        optimised: optimised_stats,
        transition_reduction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digit::LogicLevel;
    use crate::gray::reflected_gray_code;
    use crate::hot::hot_code;
    use crate::space::{CodeKind, CodeSpec};
    use crate::tree::reflected_tree_code;

    #[test]
    fn gray_code_stats_are_uniform() {
        let gc = reflected_gray_code(LogicLevel::BINARY, 8).unwrap();
        let stats = sequence_stats(&gc);
        assert_eq!(stats.word_count, 16);
        assert_eq!(stats.word_length, 8);
        assert_eq!(stats.min_step_transitions, 2);
        assert_eq!(stats.max_step_transitions, 2);
        assert_eq!(stats.total_transitions, 2 * 15);
        assert!((stats.mean_step_transitions - 2.0).abs() < 1e-12);
        // Every step changes exactly two digits.
        assert_eq!(stats.step_histogram[2], 15);
        assert_eq!(stats.step_histogram.iter().sum::<usize>(), 15);
        assert_eq!(stats.per_digit_transitions.iter().sum::<usize>(), 30);
    }

    #[test]
    fn tree_code_stats_show_the_toggling_digit() {
        let tc = reflected_tree_code(LogicLevel::BINARY, 8).unwrap();
        let stats = sequence_stats(&tc);
        // The least-significant base digit (and its mirror) toggle at every
        // step, so the digit-activity spread is large.
        assert_eq!(stats.per_digit_transitions[3], stats.word_count - 1);
        assert!(stats.digit_activity_spread > 0);
        assert!(stats.total_transitions > 2 * (stats.word_count - 1));
    }

    #[test]
    fn comparison_quantifies_the_gray_advantage() {
        let tc = reflected_tree_code(LogicLevel::TERNARY, 6).unwrap();
        let gc = reflected_gray_code(LogicLevel::TERNARY, 6).unwrap();
        let comparison = compare_arrangements(&tc, &gc);
        assert!(comparison.transition_reduction > 0.0);
        assert!(comparison.optimised.total_transitions < comparison.baseline.total_transitions);
        // Comparing an arrangement against itself reports no reduction.
        let same = compare_arrangements(&gc, &gc);
        assert_eq!(same.transition_reduction, 0.0);
    }

    #[test]
    fn balanced_gray_code_has_smaller_digit_spread_than_gray() {
        let gc = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 10)
            .unwrap()
            .generate()
            .unwrap();
        let bgc = CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 10)
            .unwrap()
            .generate()
            .unwrap();
        let gc_stats = sequence_stats(&gc);
        let bgc_stats = sequence_stats(&bgc);
        assert!(bgc_stats.digit_activity_spread <= gc_stats.digit_activity_spread);
        assert_eq!(bgc_stats.total_transitions, gc_stats.total_transitions);
    }

    #[test]
    fn hot_code_histogram_covers_larger_steps() {
        let hc = hot_code(LogicLevel::BINARY, 6).unwrap();
        let stats = sequence_stats(&hc);
        // Lexicographic hot codes contain steps changing more than two digits.
        assert!(stats.max_step_transitions > 2);
        assert_eq!(
            stats.step_histogram.iter().sum::<usize>(),
            stats.word_count - 1
        );
    }
}
