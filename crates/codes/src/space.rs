//! High-level description of a code choice: which family, which radix, which
//! code length — and generation of the corresponding ordered code sequence.
//!
//! [`CodeSpec`] is the main entry point used by the decoder design layer: the
//! paper's design space is exactly the cross-product of [`CodeKind`], the
//! logic radix and the code length `M`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::arranged::{arranged_hot_code, ArrangedHotBudget};
use crate::balanced::{reflected_balanced_gray_code, BalanceBudget};
use crate::digit::LogicLevel;
use crate::error::{CodeError, Result};
use crate::gray::reflected_gray_code;
use crate::hot::hot_code;
use crate::hot::{hot_space_size, HotCodeParams};
use crate::sequence::CodeSequence;
use crate::tree::{base_length_of, reflected_tree_code, tree_space_size};

/// The five code families evaluated by the paper (Section 2.3 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeKind {
    /// Tree code (TC): the full `n^(M/2)` space in lexicographic order,
    /// reflected.
    Tree,
    /// Gray code (GC): the tree-code space in Gray order, reflected.
    Gray,
    /// Balanced Gray code (BGC): a Gray arrangement with per-digit transition
    /// counts balanced, reflected.
    BalancedGray,
    /// Hot code (HC): constant-composition words (`M = k·n`), lexicographic.
    Hot,
    /// Arranged hot code (AHC): the hot-code space ordered with two digit
    /// transitions per step.
    ArrangedHot,
}

impl CodeKind {
    /// All code kinds, in the order the paper's figures present them.
    pub const ALL: [CodeKind; 5] = [
        CodeKind::Tree,
        CodeKind::Gray,
        CodeKind::BalancedGray,
        CodeKind::Hot,
        CodeKind::ArrangedHot,
    ];

    /// Whether this family is built on the tree-code space (and therefore
    /// used in reflected form, `M = 2·m`).
    #[must_use]
    pub fn is_tree_family(self) -> bool {
        matches!(
            self,
            CodeKind::Tree | CodeKind::Gray | CodeKind::BalancedGray
        )
    }

    /// Whether this family is built on a hot-code space (`M = k·n`).
    #[must_use]
    pub fn is_hot_family(self) -> bool {
        matches!(self, CodeKind::Hot | CodeKind::ArrangedHot)
    }

    /// Whether the family is one of the transition-optimised arrangements
    /// (GC, BGC, AHC) rather than a baseline order (TC, HC).
    #[must_use]
    pub fn is_optimised(self) -> bool {
        matches!(
            self,
            CodeKind::Gray | CodeKind::BalancedGray | CodeKind::ArrangedHot
        )
    }

    /// The short label used by the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodeKind::Tree => "TC",
            CodeKind::Gray => "GC",
            CodeKind::BalancedGray => "BGC",
            CodeKind::Hot => "HC",
            CodeKind::ArrangedHot => "AHC",
        }
    }
}

impl fmt::Display for CodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CodeKind::Tree => "tree code",
            CodeKind::Gray => "Gray code",
            CodeKind::BalancedGray => "balanced Gray code",
            CodeKind::Hot => "hot code",
            CodeKind::ArrangedHot => "arranged hot code",
        };
        write!(f, "{name}")
    }
}

/// Search budgets for the code families that are built by search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CodeBudgets {
    /// Budget of the balanced-Gray-code search.
    pub balance: BalanceBudget,
    /// Budget of the arranged-hot-code search.
    pub arranged_hot: ArrangedHotBudget,
}

/// A complete description of a code choice: family, radix and code length.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{CodeKind, CodeSpec, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8)?;
/// let sequence = spec.generate()?;
/// assert_eq!(sequence.word_length(), 8);
/// assert_eq!(spec.space_size(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeSpec {
    kind: CodeKind,
    radix: LogicLevel,
    code_length: usize,
}

impl CodeSpec {
    /// Creates a code specification, validating the code length against the
    /// family's constraints.
    ///
    /// # Errors
    ///
    /// * [`CodeError::OddReflectedLength`] for tree-family codes with an odd
    ///   length.
    /// * [`CodeError::InvalidHotLength`] for hot-family codes whose length is
    ///   not a multiple of the radix.
    /// * [`CodeError::InvalidLength`] for a zero length.
    pub fn new(kind: CodeKind, radix: LogicLevel, code_length: usize) -> Result<Self> {
        if code_length == 0 {
            return Err(CodeError::InvalidLength { length: 0 });
        }
        if kind.is_tree_family() {
            base_length_of(code_length)?;
        } else {
            HotCodeParams::for_length(code_length, radix)?;
        }
        Ok(CodeSpec {
            kind,
            radix,
            code_length,
        })
    }

    /// The code family.
    #[must_use]
    pub fn kind(&self) -> CodeKind {
        self.kind
    }

    /// The logic radix.
    #[must_use]
    pub fn radix(&self) -> LogicLevel {
        self.radix
    }

    /// The full code length `M` (number of doping regions per nanowire).
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.code_length
    }

    /// The number of distinct code words (the code-space size `Ω`), i.e. the
    /// number of nanowires one contact group can address uniquely.
    #[must_use]
    pub fn space_size(&self) -> u128 {
        if self.kind.is_tree_family() {
            tree_space_size(self.radix, self.code_length / 2)
        } else {
            hot_space_size(self.radix, self.code_length).unwrap_or(0)
        }
    }

    /// Generates the ordered code sequence with default search budgets.
    ///
    /// # Errors
    ///
    /// Propagates generation errors (space too large, arrangement not found).
    pub fn generate(&self) -> Result<CodeSequence> {
        self.generate_with(CodeBudgets::default())
    }

    /// Generates the ordered code sequence with explicit search budgets.
    ///
    /// # Errors
    ///
    /// Propagates generation errors (space too large, arrangement not found).
    pub fn generate_with(&self, budgets: CodeBudgets) -> Result<CodeSequence> {
        match self.kind {
            CodeKind::Tree => reflected_tree_code(self.radix, self.code_length),
            CodeKind::Gray => reflected_gray_code(self.radix, self.code_length),
            CodeKind::BalancedGray => {
                reflected_balanced_gray_code(self.radix, self.code_length, budgets.balance)
            }
            CodeKind::Hot => hot_code(self.radix, self.code_length),
            CodeKind::ArrangedHot => {
                arranged_hot_code(self.radix, self.code_length, budgets.arranged_hot)
            }
        }
    }

    /// The valid code lengths of this family and radix within a range,
    /// convenient for parameter sweeps (Figs. 7 and 8 sweep `M`).
    #[must_use]
    pub fn valid_lengths(
        kind: CodeKind,
        radix: LogicLevel,
        range: std::ops::RangeInclusive<usize>,
    ) -> Vec<usize> {
        range
            .filter(|&m| CodeSpec::new(kind, radix, m).is_ok())
            .collect()
    }
}

impl fmt::Display for CodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, M = {})",
            self.kind.label(),
            self.radix,
            self.code_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_family_requires_even_length() {
        assert!(CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8).is_ok());
        assert!(CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 7).is_err());
        assert!(CodeSpec::new(CodeKind::BalancedGray, LogicLevel::BINARY, 0).is_err());
    }

    #[test]
    fn hot_family_requires_multiple_of_radix() {
        assert!(CodeSpec::new(CodeKind::Hot, LogicLevel::BINARY, 6).is_ok());
        assert!(CodeSpec::new(CodeKind::Hot, LogicLevel::TERNARY, 6).is_ok());
        assert!(CodeSpec::new(CodeKind::ArrangedHot, LogicLevel::TERNARY, 7).is_err());
    }

    #[test]
    fn space_sizes_match_families() {
        assert_eq!(
            CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 10)
                .unwrap()
                .space_size(),
            32
        );
        assert_eq!(
            CodeSpec::new(CodeKind::Gray, LogicLevel::TERNARY, 8)
                .unwrap()
                .space_size(),
            81
        );
        assert_eq!(
            CodeSpec::new(CodeKind::Hot, LogicLevel::BINARY, 8)
                .unwrap()
                .space_size(),
            70
        );
    }

    #[test]
    fn generation_matches_kind_properties() {
        let gray = CodeSpec::new(CodeKind::Gray, LogicLevel::BINARY, 8)
            .unwrap()
            .generate()
            .unwrap();
        assert!(gray.has_uniform_distance(2));

        let tree = CodeSpec::new(CodeKind::Tree, LogicLevel::BINARY, 8)
            .unwrap()
            .generate()
            .unwrap();
        assert!(tree.total_transitions() > gray.total_transitions());

        let ahc = CodeSpec::new(CodeKind::ArrangedHot, LogicLevel::BINARY, 6)
            .unwrap()
            .generate()
            .unwrap();
        assert!(ahc.has_uniform_distance(2));
    }

    #[test]
    fn kind_classification() {
        assert!(CodeKind::Tree.is_tree_family());
        assert!(CodeKind::BalancedGray.is_tree_family());
        assert!(CodeKind::Hot.is_hot_family());
        assert!(!CodeKind::Hot.is_tree_family());
        assert!(CodeKind::Gray.is_optimised());
        assert!(!CodeKind::Tree.is_optimised());
        assert_eq!(CodeKind::ALL.len(), 5);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(CodeKind::BalancedGray.label(), "BGC");
        assert_eq!(CodeKind::ArrangedHot.to_string(), "arranged hot code");
        let spec = CodeSpec::new(CodeKind::Gray, LogicLevel::TERNARY, 8).unwrap();
        assert_eq!(spec.to_string(), "GC (ternary, M = 8)");
    }

    #[test]
    fn valid_lengths_sweep() {
        assert_eq!(
            CodeSpec::valid_lengths(CodeKind::Tree, LogicLevel::BINARY, 4..=10),
            vec![4, 6, 8, 10]
        );
        assert_eq!(
            CodeSpec::valid_lengths(CodeKind::Hot, LogicLevel::TERNARY, 4..=10),
            vec![6, 9]
        );
    }

    #[test]
    fn accessors_return_inputs() {
        let spec = CodeSpec::new(CodeKind::Hot, LogicLevel::QUATERNARY, 8).unwrap();
        assert_eq!(spec.kind(), CodeKind::Hot);
        assert_eq!(spec.radix(), LogicLevel::QUATERNARY);
        assert_eq!(spec.code_length(), 8);
    }
}
