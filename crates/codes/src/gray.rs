//! n-ary reflected Gray codes: arrangements of the tree-code space in which
//! successive words differ in exactly one digit (Section 2.3).
//!
//! The paper proves (Propositions 4 and 5) that among all arrangements of a
//! tree-code space the Gray arrangement minimises both the fabrication
//! complexity `Φ` and the decoder variability `‖Σ‖₁`, because both costs grow
//! monotonically with the number of digit transitions between successive
//! nanowire patterns.

use crate::digit::{Digit, LogicLevel};
use crate::error::{CodeError, Result};
use crate::sequence::CodeSequence;
use crate::tree::{base_length_of, MAX_ENUMERATED_WORDS};
use crate::word::CodeWord;

/// Generates the n-ary reflected Gray code of `base_length` digits over
/// `radix`, *without* reflection (complement appending).
///
/// The construction is the classical recursive one: the sequence for `m`
/// digits visits the sequence for `m - 1` digits forwards under leading digit
/// 0, backwards under leading digit 1, forwards again under 2, and so on.
/// Successive words therefore differ in exactly one digit, and the sequence
/// enumerates every one of the `n^m` words exactly once.
///
/// # Errors
///
/// * [`CodeError::InvalidLength`] when `base_length == 0`.
/// * [`CodeError::SpaceTooLarge`] when the space exceeds the enumeration
///   limit.
///
/// # Examples
///
/// ```
/// use nanowire_codes::{gray_code, LogicLevel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gc = gray_code(LogicLevel::BINARY, 3)?;
/// assert!(gc.is_gray());
/// assert_eq!(gc.len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn gray_code(radix: LogicLevel, base_length: usize) -> Result<CodeSequence> {
    if base_length == 0 {
        return Err(CodeError::InvalidLength { length: 0 });
    }
    let count = radix.word_count(base_length);
    if count > MAX_ENUMERATED_WORDS {
        return Err(CodeError::SpaceTooLarge {
            words: count,
            limit: MAX_ENUMERATED_WORDS,
        });
    }

    // Iterative reflected construction, building digit vectors level by level.
    let mut sequence: Vec<Vec<u8>> = vec![vec![]];
    for _ in 0..base_length {
        let mut next = Vec::with_capacity(sequence.len() * radix.radix_usize());
        for value in 0..radix.radix() {
            // Even digits traverse the previous level forwards, odd digits
            // backwards; this is what makes adjacent words differ in exactly
            // one digit across the digit boundary.
            if value % 2 == 0 {
                for suffix in &sequence {
                    let mut word = Vec::with_capacity(suffix.len() + 1);
                    word.push(value);
                    word.extend_from_slice(suffix);
                    next.push(word);
                }
            } else {
                for suffix in sequence.iter().rev() {
                    let mut word = Vec::with_capacity(suffix.len() + 1);
                    word.push(value);
                    word.extend_from_slice(suffix);
                    next.push(word);
                }
            }
        }
        sequence = next;
    }

    let words: Result<Vec<CodeWord>> = sequence
        .into_iter()
        .map(|values| CodeWord::new(values.into_iter().map(Digit::new).collect(), radix))
        .collect();
    CodeSequence::new(words?)
}

/// Generates the *reflected* Gray code with full code length
/// `code_length = 2 · base_length`: the Gray arrangement of the tree-code
/// space with every word's complement appended.
///
/// Because the complement mirrors every digit change, each step of the
/// reflected sequence changes exactly two digits (one in the base half, one
/// in the mirror half) — the minimum achievable for reflected codes.
///
/// # Errors
///
/// * [`CodeError::OddReflectedLength`] when `code_length` is odd.
/// * Any error of [`gray_code`].
pub fn reflected_gray_code(radix: LogicLevel, code_length: usize) -> Result<CodeSequence> {
    let base_length = base_length_of(code_length)?;
    Ok(gray_code(radix, base_length)?.reflected())
}

/// Checks that `sequence` is a valid Gray arrangement of the full tree-code
/// space of its radix and word length: all `n^m` words appear exactly once
/// and successive words differ in exactly one digit.
#[must_use]
pub fn is_complete_gray_arrangement(sequence: &CodeSequence) -> bool {
    let expected = sequence.radix().word_count(sequence.word_length());
    expected == sequence.len() as u128 && sequence.all_words_distinct() && sequence.is_gray()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::tree_code;
    use std::collections::HashSet;

    #[test]
    fn binary_gray_code_is_the_classic_sequence() {
        let gc = gray_code(LogicLevel::BINARY, 3).unwrap();
        let rendered: Vec<String> = gc.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec!["000", "001", "011", "010", "110", "111", "101", "100"]
        );
    }

    #[test]
    fn gray_codes_have_the_gray_property_for_all_radices() {
        for radix in [
            LogicLevel::BINARY,
            LogicLevel::TERNARY,
            LogicLevel::QUATERNARY,
        ] {
            for base_length in 1..=4 {
                let gc = gray_code(radix, base_length).unwrap();
                assert!(gc.is_gray(), "{radix} base length {base_length}");
                assert!(gc.all_words_distinct());
                assert_eq!(gc.len() as u128, radix.word_count(base_length));
                assert!(is_complete_gray_arrangement(&gc));
            }
        }
    }

    #[test]
    fn gray_code_is_a_permutation_of_the_tree_code() {
        let radix = LogicLevel::TERNARY;
        let gray: HashSet<String> = gray_code(radix, 3)
            .unwrap()
            .iter()
            .map(ToString::to_string)
            .collect();
        let tree: HashSet<String> = tree_code(radix, 3)
            .unwrap()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(gray, tree);
    }

    #[test]
    fn gray_minimises_transitions_relative_to_tree_order() {
        for radix in [LogicLevel::TERNARY, LogicLevel::QUATERNARY] {
            let gc = gray_code(radix, 3).unwrap();
            let tc = tree_code(radix, 3).unwrap();
            // The Gray arrangement attains the absolute minimum: one digit
            // change per step.
            assert_eq!(gc.total_transitions(), gc.len() - 1);
            assert!(tc.total_transitions() > gc.total_transitions());
        }
    }

    #[test]
    fn reflected_gray_changes_exactly_two_digits_per_step() {
        let rgc = reflected_gray_code(LogicLevel::TERNARY, 8).unwrap();
        assert_eq!(rgc.word_length(), 8);
        assert!(rgc.has_uniform_distance(2));
        assert!(rgc.iter().all(CodeWord::is_reflected));
    }

    #[test]
    fn starts_at_zero_word() {
        let gc = gray_code(LogicLevel::QUATERNARY, 2).unwrap();
        assert_eq!(gc[0].to_string(), "00");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(gray_code(LogicLevel::BINARY, 0).is_err());
        assert!(reflected_gray_code(LogicLevel::BINARY, 5).is_err());
        assert!(matches!(
            gray_code(LogicLevel::BINARY, 25),
            Err(CodeError::SpaceTooLarge { .. })
        ));
    }

    #[test]
    fn incomplete_sequences_are_not_complete_arrangements() {
        let gc = gray_code(LogicLevel::BINARY, 3).unwrap();
        let prefix = gc.take_prefix(4).unwrap();
        assert!(!is_complete_gray_arrangement(&prefix));
    }
}
