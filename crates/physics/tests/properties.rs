//! Property-based tests of the device-physics invariants.

use device_physics::{
    combine_std_devs, DopantConcentration, DopingLadder, Gaussian, ThresholdModel,
    VariabilityModel, Volts,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The threshold model is strictly monotone in the doping level over the
    /// physically relevant range.
    #[test]
    fn threshold_model_is_monotone(exp_a in 16.0f64..20.0, exp_b in 16.0f64..20.0) {
        prop_assume!((exp_a - exp_b).abs() > 1e-6);
        let model = ThresholdModel::default_mspt();
        let (lo, hi) = if exp_a < exp_b { (exp_a, exp_b) } else { (exp_b, exp_a) };
        let v_lo = model.threshold_for_doping(DopantConcentration::new(10f64.powf(lo)));
        let v_hi = model.threshold_for_doping(DopantConcentration::new(10f64.powf(hi)));
        prop_assert!(v_hi.value() > v_lo.value());
    }

    /// Solving for a threshold and evaluating the model again recovers the
    /// threshold (bijectivity of `f`).
    #[test]
    fn doping_solution_roundtrips(target_mv in 20.0f64..1200.0) {
        let model = ThresholdModel::default_mspt();
        let target = Volts::from_millivolts(target_mv);
        let doping = model.doping_for_threshold(target).unwrap();
        let back = model.threshold_for_doping(doping);
        prop_assert!((back.value() - target.value()).abs() < 1e-5);
    }

    /// Ladders built from the model are strictly monotone in both columns and
    /// digit lookups invert correctly.
    #[test]
    fn ladders_are_monotone_and_invertible(levels in 2usize..=6) {
        let model = ThresholdModel::default_mspt();
        let ladder = DopingLadder::from_model(
            &model,
            levels,
            (Volts::new(0.0), Volts::new(1.0)),
        ).unwrap();
        prop_assert_eq!(ladder.level_count(), levels);
        for pair in ladder.levels().windows(2) {
            prop_assert!(pair[1].threshold.value() > pair[0].threshold.value());
            prop_assert!(pair[1].doping.value() > pair[0].doping.value());
        }
        for digit in 0..levels as u8 {
            let doping = ladder.doping(digit).unwrap();
            prop_assert_eq!(ladder.digit_for_doping(doping), digit);
        }
    }

    /// Gaussian window probabilities are monotone in the window width and
    /// anti-monotone in the standard deviation.
    #[test]
    fn window_probability_monotonicity(
        sigma_mv in 1.0f64..200.0,
        window_a_mv in 1.0f64..500.0,
        window_b_mv in 1.0f64..500.0,
    ) {
        let g = Gaussian::new(0.0, sigma_mv / 1e3).unwrap();
        let (small, large) = if window_a_mv < window_b_mv {
            (window_a_mv, window_b_mv)
        } else {
            (window_b_mv, window_a_mv)
        };
        let p_small = g.probability_within_window(small / 1e3).unwrap();
        let p_large = g.probability_within_window(large / 1e3).unwrap();
        prop_assert!(p_large >= p_small - 1e-12);
        prop_assert!((0.0..=1.0).contains(&p_small));
    }

    /// Variance accumulation is additive: ν doses give ν times the one-dose
    /// variance, and the standard deviation follows sqrt(ν).
    #[test]
    fn dose_variance_is_additive(doses in 0usize..50, sigma_mv in 0.0f64..200.0) {
        let model = VariabilityModel::new(Volts::from_millivolts(sigma_mv)).unwrap();
        let unit = model.variance_after_doses(1);
        prop_assert!((model.variance_after_doses(doses) - unit * doses as f64).abs() < 1e-12);
        let sigma = model.sigma_after_doses(doses).value();
        prop_assert!((sigma * sigma - model.variance_after_doses(doses)).abs() < 1e-12);
    }

    /// Combining standard deviations is commutative and matches the direct
    /// root-sum-of-squares.
    #[test]
    fn std_dev_combination(sigmas in proptest::collection::vec(0.0f64..0.3, 0..6)) {
        let as_volts: Vec<Volts> = sigmas.iter().copied().map(Volts::new).collect();
        let combined = combine_std_devs(&as_volts);
        let expected = sigmas.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((combined.value() - expected).abs() < 1e-12);
        let mut reversed = as_volts.clone();
        reversed.reverse();
        prop_assert!((combine_std_devs(&reversed).value() - combined.value()).abs() < 1e-12);
    }

    /// The in-window probability never increases as more doses accumulate.
    #[test]
    fn in_window_probability_decreases_with_doses(window_mv in 10.0f64..500.0) {
        let model = VariabilityModel::paper_default();
        let window = Volts::from_millivolts(window_mv);
        let mut previous = 1.0 + 1e-12;
        for doses in 0..25 {
            let p = model.in_window_probability(doses, window).unwrap();
            prop_assert!(p <= previous + 1e-12);
            previous = p;
        }
    }
}
