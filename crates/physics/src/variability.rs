//! Threshold-voltage variability accumulation.
//!
//! Every lithography/doping operation adds an independent Gaussian
//! disturbance of standard deviation `σ_T` to the threshold voltage of the
//! regions it hits (Definition 5 of the paper). Because independent variances
//! add, a region that receives `ν` doses ends up with a standard deviation of
//! `σ_T · sqrt(ν)` — the quantity plotted in Fig. 6.

use serde::{Deserialize, Serialize};

use crate::error::{PhysicsError, Result};
use crate::gaussian::Gaussian;
use crate::units::Volts;

/// The per-operation threshold-voltage variability model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariabilityModel {
    sigma_per_dose: Volts,
}

impl VariabilityModel {
    /// Creates a variability model with the given per-dose standard
    /// deviation `σ_T`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidParameter`] when the deviation is
    /// negative or not finite.
    pub fn new(sigma_per_dose: Volts) -> Result<Self> {
        if !(sigma_per_dose.value() >= 0.0 && sigma_per_dose.is_finite()) {
            return Err(PhysicsError::InvalidParameter {
                name: "sigma_per_dose",
                value: sigma_per_dose.value(),
                constraint: "must be non-negative and finite",
            });
        }
        Ok(VariabilityModel { sigma_per_dose })
    }

    /// The paper's simulation value: `σ_T = 50 mV` (Section 6.1).
    #[must_use]
    pub fn paper_default() -> Self {
        VariabilityModel {
            sigma_per_dose: Volts::from_millivolts(50.0),
        }
    }

    /// The per-dose standard deviation `σ_T`.
    #[must_use]
    pub fn sigma_per_dose(&self) -> Volts {
        self.sigma_per_dose
    }

    /// The standard deviation of a region that has received `doses`
    /// independent doping operations: `σ_T · sqrt(ν)`.
    #[must_use]
    pub fn sigma_after_doses(&self, doses: usize) -> Volts {
        Volts::new(self.sigma_per_dose.value() * (doses as f64).sqrt())
    }

    /// The variance of a region after `doses` operations: `σ_T² · ν`
    /// (an element of the paper's matrix `Σ`).
    #[must_use]
    pub fn variance_after_doses(&self, doses: usize) -> f64 {
        self.sigma_per_dose.value().powi(2) * doses as f64
    }

    /// The threshold-voltage distribution of a region whose nominal level is
    /// `nominal` after `doses` operations.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidDistribution`] if the nominal value is
    /// not finite.
    pub fn distribution(&self, nominal: Volts, doses: usize) -> Result<Gaussian> {
        Gaussian::new(nominal.value(), self.sigma_after_doses(doses).value())
    }

    /// Probability that a region stays within `half_width` of its nominal
    /// threshold after `doses` operations — the per-region addressability
    /// probability of the yield model.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidDistribution`] when the window is
    /// negative.
    pub fn in_window_probability(&self, doses: usize, half_width: Volts) -> Result<f64> {
        if doses == 0 {
            // A region that is never doped keeps its nominal (undoped) level
            // exactly.
            return if half_width.value() >= 0.0 {
                Ok(1.0)
            } else {
                Err(PhysicsError::InvalidDistribution {
                    reason: format!("negative window half-width {}", half_width.value()),
                })
            };
        }
        self.distribution(Volts::ZERO, doses)?
            .probability_within_window(half_width.value())
    }
}

impl Default for VariabilityModel {
    fn default() -> Self {
        VariabilityModel::paper_default()
    }
}

/// Combines independent standard deviations: `sqrt(σ₁² + σ₂² + ...)`.
///
/// This is the addition rule the paper states in Definition 5.
#[must_use]
pub fn combine_std_devs(sigmas: &[Volts]) -> Volts {
    Volts::new(
        sigmas
            .iter()
            .map(|s| s.value() * s.value())
            .sum::<f64>()
            .sqrt(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_sigma() {
        assert!(VariabilityModel::new(Volts::new(-0.01)).is_err());
        assert!(VariabilityModel::new(Volts::new(f64::NAN)).is_err());
        assert!(VariabilityModel::new(Volts::ZERO).is_ok());
        assert_eq!(
            VariabilityModel::default().sigma_per_dose(),
            Volts::from_millivolts(50.0)
        );
    }

    #[test]
    fn sigma_grows_with_the_square_root_of_doses() {
        let model = VariabilityModel::paper_default();
        assert_eq!(model.sigma_after_doses(0).value(), 0.0);
        assert!((model.sigma_after_doses(1).millivolts() - 50.0).abs() < 1e-9);
        assert!((model.sigma_after_doses(4).millivolts() - 100.0).abs() < 1e-9);
        assert!((model.sigma_after_doses(9).millivolts() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn variance_is_linear_in_doses() {
        let model = VariabilityModel::paper_default();
        let unit = model.variance_after_doses(1);
        for doses in 0..10 {
            assert!((model.variance_after_doses(doses) - unit * doses as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn window_probability_decreases_with_doses() {
        let model = VariabilityModel::paper_default();
        let window = Volts::new(0.25);
        let mut previous = 1.1;
        for doses in 0..20 {
            let p = model.in_window_probability(doses, window).unwrap();
            assert!(p <= previous + 1e-12, "p must be non-increasing in doses");
            assert!((0.0..=1.0).contains(&p));
            previous = p;
        }
        // With no doses the region is deterministic.
        assert_eq!(model.in_window_probability(0, window).unwrap(), 1.0);
    }

    #[test]
    fn window_probability_matches_gaussian_window() {
        let model = VariabilityModel::paper_default();
        // One dose, window of one sigma: ~68.3 %.
        let p = model
            .in_window_probability(1, Volts::from_millivolts(50.0))
            .unwrap();
        assert!((p - 0.6827).abs() < 1e-3);
        assert!(model.in_window_probability(1, Volts::new(-0.1)).is_err());
        assert!(model.in_window_probability(0, Volts::new(-0.1)).is_err());
    }

    #[test]
    fn std_dev_combination_follows_root_sum_of_squares() {
        let combined = combine_std_devs(&[Volts::new(0.03), Volts::new(0.04)]);
        assert!((combined.value() - 0.05).abs() < 1e-12);
        assert_eq!(combine_std_devs(&[]).value(), 0.0);
    }

    #[test]
    fn distribution_reflects_nominal_and_doses() {
        let model = VariabilityModel::paper_default();
        let g = model.distribution(Volts::new(0.75), 4).unwrap();
        assert!((g.mean() - 0.75).abs() < 1e-12);
        assert!((g.std_dev() - 0.1).abs() < 1e-12);
    }
}
