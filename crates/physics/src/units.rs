//! Newtype wrappers for the physical quantities used throughout the
//! reproduction: voltages, lengths, dopant concentrations and areas.
//!
//! The wrappers are deliberately thin — `f64` with a unit tag — but prevent
//! the classic mistake of mixing nanometres with volts or cm⁻³ with m⁻³ in
//! the threshold-voltage model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw value.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Whether the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

unit_newtype!(
    /// An electric potential in volts.
    Volts,
    "V"
);

unit_newtype!(
    /// A length in nanometres.
    Nanometers,
    "nm"
);

unit_newtype!(
    /// A dopant concentration in cm⁻³ (the conventional unit of device
    /// physics; conversions to SI m⁻³ happen inside the threshold model).
    DopantConcentration,
    "cm^-3"
);

unit_newtype!(
    /// An area in square nanometres.
    AreaNm2,
    "nm^2"
);

impl Volts {
    /// Zero volts.
    pub const ZERO: Volts = Volts(0.0);

    /// Creates a voltage expressed in millivolts.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Self {
        Volts(mv / 1e3)
    }

    /// The value in millivolts.
    #[must_use]
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Nanometers {
    /// Zero length.
    pub const ZERO: Nanometers = Nanometers(0.0);

    /// Creates a length expressed in micrometres.
    #[must_use]
    pub fn from_micrometers(um: f64) -> Self {
        Nanometers(um * 1e3)
    }

    /// The value in metres.
    #[must_use]
    pub fn meters(self) -> f64 {
        self.0 * 1e-9
    }

    /// The square of this length, as an area.
    #[must_use]
    pub fn squared(self) -> AreaNm2 {
        AreaNm2::new(self.0 * self.0)
    }
}

impl Mul for Nanometers {
    type Output = AreaNm2;

    fn mul(self, rhs: Nanometers) -> AreaNm2 {
        AreaNm2::new(self.0 * rhs.0)
    }
}

impl DopantConcentration {
    /// Creates a concentration expressed in units of 10¹⁸ cm⁻³, the natural
    /// scale of the paper's examples (`D` matrices are given in
    /// 10¹⁸ cm⁻³).
    #[must_use]
    pub fn from_1e18(value: f64) -> Self {
        DopantConcentration(value * 1e18)
    }

    /// The value in units of 10¹⁸ cm⁻³.
    #[must_use]
    pub fn in_1e18(self) -> f64 {
        self.0 / 1e18
    }

    /// The value converted to SI m⁻³.
    #[must_use]
    pub fn per_cubic_meter(self) -> f64 {
        self.0 * 1e6
    }
}

impl AreaNm2 {
    /// The value in square micrometres.
    #[must_use]
    pub fn square_micrometers(self) -> f64 {
        self.0 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Volts::new(0.5);
        let b = Volts::new(0.25);
        assert_eq!((a + b).value(), 0.75);
        assert_eq!((a - b).value(), 0.25);
        assert_eq!((-a).value(), -0.5);
        assert_eq!((a * 2.0).value(), 1.0);
        assert_eq!((a / 2.0).value(), 0.25);
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn conversions() {
        assert_eq!(Volts::from_millivolts(50.0).value(), 0.05);
        assert!((Volts::new(0.05).millivolts() - 50.0).abs() < 1e-12);
        assert_eq!(Nanometers::from_micrometers(0.8).value(), 800.0);
        assert!((Nanometers::new(10.0).meters() - 1e-8).abs() < 1e-20);
        assert_eq!(DopantConcentration::from_1e18(2.0).value(), 2e18);
        assert!((DopantConcentration::from_1e18(9.0).in_1e18() - 9.0).abs() < 1e-12);
        assert!((DopantConcentration::from_1e18(1.0).per_cubic_meter() - 1e24).abs() < 1e12);
    }

    #[test]
    fn lengths_multiply_into_areas() {
        let area = Nanometers::new(32.0) * Nanometers::new(10.0);
        assert_eq!(area.value(), 320.0);
        assert_eq!(Nanometers::new(13.0).squared().value(), 169.0);
        assert!((AreaNm2::new(2_000_000.0).square_micrometers() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sums_and_display() {
        let total: Volts = vec![Volts::new(0.1), Volts::new(0.2)].into_iter().sum();
        assert!((total.value() - 0.3).abs() < 1e-12);
        assert_eq!(Volts::new(0.5).to_string(), "0.5 V");
        assert_eq!(Nanometers::new(32.0).to_string(), "32 nm");
        assert_eq!(AreaNm2::new(169.0).to_string(), "169 nm^2");
    }

    #[test]
    fn from_into_roundtrip() {
        let v: Volts = 0.7.into();
        let raw: f64 = v.into();
        assert_eq!(raw, 0.7);
        assert!(v.is_finite());
        assert_eq!(Volts::new(-0.3).abs().value(), 0.3);
    }
}
